// Dataset analysis walk-through: regenerates the statistics of the paper's
// Section 3 (Table 1 and Figure 1) from a synthetic PolitiFact corpus and
// prints them. Run with --articles=14055 for the paper-scale corpus.
//
//   ./dataset_analysis [--articles=3000] [--seed=42] [--save_prefix=path]

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/flags.h"
#include "common/logging.h"
#include "data/generator.h"
#include "data/io.h"
#include "graph/stats.h"
#include "text/features.h"

namespace {

using fkd::data::CredibilityLabel;

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 3000, "synthetic corpus size");
  flags.AddInt("seed", 42, "random seed");
  flags.AddString("save_prefix", "", "optional TSV output prefix");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  auto options = fkd::data::GeneratorOptions::Scaled(
      flags.GetInt("articles"), static_cast<uint64_t>(flags.GetInt("seed")));
  auto dataset_result = fkd::data::GeneratePolitiFact(options);
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();

  // ---- Table 1: network properties ----------------------------------------
  std::printf("== Table 1: properties of the heterogeneous network ==\n");
  std::printf("  articles              %zu\n", dataset.articles.size());
  std::printf("  creators              %zu\n", dataset.creators.size());
  std::printf("  subjects              %zu\n", dataset.subjects.size());
  std::printf("  creator-article links %zu\n", dataset.articles.size());
  std::printf("  article-subject links %zu\n\n", dataset.NumSubjectLinks());

  // ---- Fig 1(a): creator-article power law --------------------------------
  std::vector<size_t> articles_per_creator(dataset.creators.size(), 0);
  for (const auto& article : dataset.articles) {
    ++articles_per_creator[article.creator];
  }
  const auto fit = fkd::graph::FitPowerLaw(articles_per_creator);
  const auto summary = fkd::graph::SummarizeDegrees(articles_per_creator);
  std::printf("== Fig 1(a): creator publishing distribution ==\n");
  std::printf("  mean %.2f articles/creator, max %zu, power-law alpha %.2f\n",
              summary.mean, summary.max, fit.alpha);
  const auto fractions =
      fkd::graph::DegreeFractionDistribution(articles_per_creator);
  std::printf("  #articles -> fraction of creators (head of distribution):\n");
  size_t shown = 0;
  for (const auto& [degree, fraction] : fractions) {
    if (shown++ >= 8) break;
    std::printf("    %3zu -> %.4f\n", degree, fraction);
  }
  std::printf("\n");

  // ---- Fig 1(b)/(c): frequent words by credibility ------------------------
  fkd::text::ClassWordStats stats(2);
  for (const auto& article : dataset.articles) {
    stats.AddDocument(fkd::text::TokenizeDocuments({article.text})[0],
                      fkd::data::BiClassOf(article.label));
  }
  std::printf("== Fig 1(b): frequent words in TRUE articles ==\n  ");
  for (const auto& [word, count] : stats.TopWordsForClass(1, 12)) {
    std::printf("%s(%lld) ", word.c_str(), static_cast<long long>(count));
  }
  std::printf("\n== Fig 1(c): frequent words in FALSE articles ==\n  ");
  for (const auto& [word, count] : stats.TopWordsForClass(0, 12)) {
    std::printf("%s(%lld) ", word.c_str(), static_cast<long long>(count));
  }
  std::printf("\n\n");

  // ---- Fig 1(d): subject credibility distribution -------------------------
  std::printf("== Fig 1(d): top subjects, true vs false article counts ==\n");
  std::vector<std::pair<size_t, int32_t>> subject_sizes;
  std::vector<std::pair<int64_t, int64_t>> subject_counts(
      dataset.subjects.size(), {0, 0});
  for (const auto& article : dataset.articles) {
    for (int32_t s : article.subjects) {
      if (fkd::data::IsPositive(article.label)) {
        ++subject_counts[s].first;
      } else {
        ++subject_counts[s].second;
      }
    }
  }
  for (const auto& subject : dataset.subjects) {
    subject_sizes.emplace_back(
        subject_counts[subject.id].first + subject_counts[subject.id].second,
        subject.id);
  }
  std::sort(subject_sizes.rbegin(), subject_sizes.rend());
  for (size_t i = 0; i < std::min<size_t>(10, subject_sizes.size()); ++i) {
    const int32_t id = subject_sizes[i].second;
    const auto [true_count, false_count] = subject_counts[id];
    std::printf("  %-12s true %5lld (%4.1f%%)  false %5lld (%4.1f%%)\n",
                dataset.subjects[id].name.c_str(),
                static_cast<long long>(true_count),
                100.0 * true_count / std::max<int64_t>(1, true_count + false_count),
                static_cast<long long>(false_count),
                100.0 * false_count / std::max<int64_t>(1, true_count + false_count));
  }
  std::printf("\n");

  // ---- Fig 1(e)/(f): persona case studies ---------------------------------
  std::printf("== Fig 1(e)/(f): persona creators, 6-class histograms ==\n");
  for (const auto& name : fkd::data::PersonaNames()) {
    const auto it = std::find_if(
        dataset.creators.begin(), dataset.creators.end(),
        [&](const fkd::data::Creator& c) { return c.name == name; });
    if (it == dataset.creators.end()) continue;
    std::vector<int64_t> histogram(fkd::data::kNumCredibilityClasses, 0);
    int64_t total = 0;
    for (const auto& article : dataset.articles) {
      if (article.creator == it->id) {
        ++histogram[fkd::data::MultiClassOf(article.label)];
        ++total;
      }
    }
    std::printf("  %-16s (%4lld articles, derived label '%s'):\n",
                name.c_str(), static_cast<long long>(total),
                std::string(fkd::data::LabelName(it->label)).c_str());
    for (size_t c = fkd::data::kNumCredibilityClasses; c-- > 0;) {
      std::printf("    %-14s %4lld (%4.1f%%)\n",
                  std::string(fkd::data::LabelName(
                                  static_cast<CredibilityLabel>(c)))
                      .c_str(),
                  static_cast<long long>(histogram[c]),
                  100.0 * histogram[c] / std::max<int64_t>(1, total));
    }
  }

  const std::string save_prefix = flags.GetString("save_prefix");
  if (!save_prefix.empty()) {
    FKD_CHECK_OK(fkd::data::SaveDataset(dataset, save_prefix));
    std::printf("\nsaved TSV tables with prefix %s\n", save_prefix.c_str());
  }
  return 0;
}
