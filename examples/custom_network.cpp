// Builds a News-HSN by hand through the public dataset API — no generator —
// and infers credibility for the unlabelled nodes with label propagation
// and with FakeDetector. Demonstrates how a downstream user would plug
// their own crawled corpus into the library.

#include <cstdio>

#include "baselines/label_propagation.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/dataset.h"

namespace {

using fkd::data::Article;
using fkd::data::Creator;
using fkd::data::CredibilityLabel;
using fkd::data::Dataset;
using fkd::data::Subject;

Article MakeArticle(int32_t id, std::string text, CredibilityLabel label,
                    int32_t creator, std::vector<int32_t> subjects) {
  Article article;
  article.id = id;
  article.text = std::move(text);
  article.label = label;
  article.creator = creator;
  article.subjects = std::move(subjects);
  return article;
}

}  // namespace

int main() {
  // A miniature newsroom: two reliable creators, two unreliable ones, two
  // subjects, twelve statements.
  Dataset dataset;
  dataset.creators = {
      {0, "honest alice", "senator economist official", CredibilityLabel::kTrue},
      {1, "honest bob", "professor analyst journalist", CredibilityLabel::kTrue},
      {2, "dubious carol", "anonymous viral blogger", CredibilityLabel::kFalse},
      {3, "dubious dave", "chain email pundit", CredibilityLabel::kFalse},
  };
  dataset.subjects = {
      {0, "economy", "economy tax income budget", CredibilityLabel::kTrue},
      {1, "conspiracies", "secret hoax scandal", CredibilityLabel::kFalse},
  };
  dataset.articles = {
      MakeArticle(0, "income tax report shows steady growth", CredibilityLabel::kTrue, 0, {0}),
      MakeArticle(1, "budget law raises average wage", CredibilityLabel::kMostlyTrue, 0, {0}),
      MakeArticle(2, "jobs report beats economist forecast", CredibilityLabel::kTrue, 0, {0}),
      MakeArticle(3, "education spending increased this year", CredibilityLabel::kMostlyTrue, 1, {0}),
      MakeArticle(4, "senate bill funds worker training", CredibilityLabel::kHalfTrue, 1, {0}),
      MakeArticle(5, "percent growth confirmed by report", CredibilityLabel::kTrue, 1, {0}),
      MakeArticle(6, "secret scandal hidden by officials", CredibilityLabel::kFalse, 2, {1}),
      MakeArticle(7, "shocking hoax about banned refugees", CredibilityLabel::kPantsOnFire, 2, {1}),
      MakeArticle(8, "viral conspiracy about gun fraud", CredibilityLabel::kFalse, 2, {1}),
      MakeArticle(9, "illegal voter fraud conspiracy exposed", CredibilityLabel::kMostlyFalse, 3, {1}),
      MakeArticle(10, "banned socialist hoax goes viral", CredibilityLabel::kFalse, 3, {1}),
      MakeArticle(11, "economy scandal secret tax fraud", CredibilityLabel::kHalfTrue, 3, {0, 1}),
  };

  FKD_CHECK_OK(dataset.Validate());
  auto graph_result = dataset.BuildGraph();
  FKD_CHECK_OK(graph_result.status());

  // Reveal labels of 8 of the 12 articles, half the creators/subjects; the
  // classifiers must infer the rest.
  fkd::eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph_result.value();
  context.train_articles = {0, 1, 3, 6, 7, 9, 10, 11};
  context.train_creators = {0, 2};
  context.train_subjects = {0};
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;

  fkd::baselines::LabelPropagation propagation;
  FKD_CHECK_OK(propagation.Train(context));
  auto lp = propagation.Predict();
  FKD_CHECK_OK(lp.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = 80;
  config.explicit_words = 30;
  config.latent_vocabulary = 100;
  fkd::core::FakeDetector detector(config);
  FKD_CHECK_OK(detector.Train(context));
  auto fd = detector.Predict();
  FKD_CHECK_OK(fd.status());

  std::printf("%-4s %-38s %-8s %-6s %-12s\n", "id", "statement", "actual",
              "lp", "FakeDetector");
  for (const auto& article : dataset.articles) {
    std::printf("%-4d %-38s %-8s %-6s %-12s\n", article.id,
                article.text.substr(0, 38).c_str(),
                fkd::data::IsPositive(article.label) ? "true" : "false",
                lp.value().articles[article.id] == 1 ? "true" : "false",
                fd.value().articles[article.id] == 1 ? "true" : "false");
  }
  std::printf("\ncreators (actual / lp / FakeDetector):\n");
  for (const auto& creator : dataset.creators) {
    std::printf("  %-14s %-6s %-6s %-6s\n", creator.name.c_str(),
                fkd::data::IsPositive(creator.label) ? "true" : "false",
                lp.value().creators[creator.id] == 1 ? "true" : "false",
                fd.value().creators[creator.id] == 1 ? "true" : "false");
  }
  std::printf("subjects (actual / lp / FakeDetector):\n");
  for (const auto& subject : dataset.subjects) {
    std::printf("  %-14s %-6s %-6s %-6s\n", subject.name.c_str(),
                fkd::data::IsPositive(subject.label) ? "true" : "false",
                lp.value().subjects[subject.id] == 1 ? "true" : "false",
                fd.value().subjects[subject.id] == 1 ? "true" : "false");
  }
  return 0;
}
