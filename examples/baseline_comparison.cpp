// Compares FakeDetector against all five baselines of the paper on one
// synthetic corpus at a fixed sample ratio, using the same experiment
// harness the figure benches use.
//
//   ./baseline_comparison [--articles=500] [--theta=0.5] [--multi]

#include <cstdio>

#include "baselines/deepwalk.h"
#include "baselines/label_propagation.h"
#include "baselines/line.h"
#include "baselines/rnn_classifier.h"
#include "baselines/svm.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 500, "synthetic corpus size");
  flags.AddDouble("theta", 0.5, "training sample ratio");
  flags.AddBool("multi", false, "6-class instead of bi-class");
  flags.AddInt("seed", 42, "random seed");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  auto dataset_result = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          flags.GetInt("articles"), static_cast<uint64_t>(flags.GetInt("seed"))));
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();
  std::printf("dataset: %s\n\n", fkd::data::DescribeDataset(dataset).c_str());

  fkd::eval::ExperimentOptions options;
  options.k_folds = 5;
  options.folds_to_run = 1;
  options.sample_ratios = {flags.GetDouble("theta")};
  options.granularity = flags.GetBool("multi")
                            ? fkd::eval::LabelGranularity::kMulti
                            : fkd::eval::LabelGranularity::kBinary;
  options.verbose = true;

  fkd::eval::ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] {
    fkd::core::FakeDetectorConfig config;
    config.epochs = 40;
    return std::make_unique<fkd::core::FakeDetector>(config);
  });
  runner.RegisterMethod(
      [] { return std::make_unique<fkd::baselines::LabelPropagation>(); });
  runner.RegisterMethod(
      [] { return std::make_unique<fkd::baselines::DeepWalkClassifier>(); });
  runner.RegisterMethod(
      [] { return std::make_unique<fkd::baselines::LineClassifier>(); });
  runner.RegisterMethod(
      [] { return std::make_unique<fkd::baselines::SvmClassifier>(); });
  runner.RegisterMethod(
      [] { return std::make_unique<fkd::baselines::RnnClassifier>(); });

  auto results = runner.Run();
  FKD_CHECK_OK(results.status());

  fkd::eval::TextTable table(
      {"method", "entity", "accuracy", "precision", "recall", "f1"});
  for (const auto& result : results.value()) {
    const fkd::eval::MetricsRow* rows[3] = {&result.articles, &result.creators,
                                            &result.subjects};
    const char* names[3] = {"articles", "creators", "subjects"};
    for (int i = 0; i < 3; ++i) {
      table.AddRow({result.method, names[i],
                    fkd::StrFormat("%.3f", rows[i]->accuracy),
                    fkd::StrFormat("%.3f", rows[i]->precision),
                    fkd::StrFormat("%.3f", rows[i]->recall),
                    fkd::StrFormat("%.3f", rows[i]->f1)});
    }
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
