// Persistence walk-through: generate a corpus, write it to TSV, reload it,
// run two methods through the harness, write the sweep CSV, and check the
// pairwise difference with McNemar's test — the full artefact trail a
// research run leaves behind.
//
//   ./persistence_pipeline [--articles=300] [--workdir=/tmp]

#include <cstdio>
#include <filesystem>

#include "baselines/label_propagation.h"
#include "common/flags.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "eval/significance.h"

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 300, "synthetic corpus size");
  flags.AddInt("seed", 42, "random seed");
  flags.AddString("workdir", "", "artefact directory (default: temp)");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  std::filesystem::path workdir = flags.GetString("workdir").empty()
                                      ? std::filesystem::temp_directory_path()
                                      : std::filesystem::path(flags.GetString("workdir"));
  const std::string prefix = (workdir / "politifact_synth").string();

  // 1. Generate and persist the corpus.
  auto dataset_result = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          flags.GetInt("articles"), static_cast<uint64_t>(flags.GetInt("seed"))));
  FKD_CHECK_OK(dataset_result.status());
  FKD_CHECK_OK(fkd::data::SaveDataset(dataset_result.value(), prefix));
  std::printf("wrote corpus tables: %s.{articles,creators,subjects}.tsv\n",
              prefix.c_str());

  // 2. Reload from disk — from here on only the persisted data is used.
  auto reloaded = fkd::data::LoadDataset(prefix);
  FKD_CHECK_OK(reloaded.status());
  const fkd::data::Dataset& dataset = reloaded.value();
  std::printf("reloaded: %s\n\n", fkd::data::DescribeDataset(dataset).c_str());

  // 3. Harness sweep over two methods, persisted as CSV.
  fkd::eval::ExperimentOptions options;
  options.k_folds = 5;
  options.folds_to_run = 1;
  options.sample_ratios = {0.5, 1.0};
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  fkd::eval::ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] {
    fkd::core::FakeDetectorConfig config;
    config.epochs = 40;
    config.validation_fraction = 0.2f;  // Early stopping on.
    return std::make_unique<fkd::core::FakeDetector>(config);
  });
  runner.RegisterMethod(
      [] { return std::make_unique<fkd::baselines::LabelPropagation>(); });
  auto results = runner.Run();
  FKD_CHECK_OK(results.status());
  const std::string csv = (workdir / "sweep_results.csv").string();
  FKD_CHECK_OK(fkd::eval::WriteSweepCsv(results.value(), csv));
  std::printf("wrote sweep CSV: %s\n", csv.c_str());
  std::printf("%s",
              fkd::eval::FormatFigureSeries(results.value(),
                                            fkd::eval::EntityKind::kArticle,
                                            fkd::eval::LabelGranularity::kBinary)
                  .c_str());

  // 4. Paired significance on one fold.
  auto graph = dataset.BuildGraph().value();
  fkd::Rng rng(options.seed);
  auto splits =
      fkd::data::KFoldTriSplits(dataset.articles.size(),
                                dataset.creators.size(),
                                dataset.subjects.size(), 5, &rng)
          .value();
  fkd::eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph;
  context.train_articles = splits[0].articles.train;
  context.train_creators = splits[0].creators.train;
  context.train_subjects = splits[0].subjects.train;
  context.seed = options.seed;

  fkd::core::FakeDetectorConfig config;
  config.epochs = 40;
  fkd::core::FakeDetector detector(config);
  FKD_CHECK_OK(detector.Train(context));
  fkd::baselines::LabelPropagation propagation;
  FKD_CHECK_OK(propagation.Train(context));
  const auto fd = detector.Predict().value();
  const auto lp = propagation.Predict().value();

  std::vector<int32_t> actual, fd_pred, lp_pred;
  for (int32_t id : splits[0].articles.test) {
    actual.push_back(fkd::data::BiClassOf(dataset.articles[id].label));
    fd_pred.push_back(fd.articles[id]);
    lp_pred.push_back(lp.articles[id]);
  }
  const auto mcnemar = fkd::eval::McNemarTest(actual, fd_pred, lp_pred).value();
  std::printf(
      "\nMcNemar FakeDetector vs lp on the article test fold: "
      "b=%lld c=%lld chi2=%.3f p=%.3f\n",
      static_cast<long long>(mcnemar.only_a_correct),
      static_cast<long long>(mcnemar.only_b_correct), mcnemar.statistic,
      mcnemar.p_value);

  // Clean up the artefacts we created in a temp dir.
  if (flags.GetString("workdir").empty()) {
    for (const char* suffix :
         {".articles.tsv", ".creators.tsv", ".subjects.tsv"}) {
      std::filesystem::remove(prefix + suffix);
    }
    std::filesystem::remove(csv);
  }
  return 0;
}
