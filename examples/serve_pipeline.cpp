// Serving walk-through: train a detector on a synthetic corpus, freeze it
// into a snapshot directory, reload the snapshot as a fresh process restart
// would, start the micro-batching InferenceEngine, push synthetic traffic
// through it, and dump the fkd.serve.* metrics the engine recorded.
//
//   ./serve_pipeline [--articles=200] [--requests=60] [--workers=2]

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 200, "synthetic corpus size");
  flags.AddInt("requests", 60, "requests to serve");
  flags.AddInt("workers", 2, "engine worker threads");
  flags.AddString("snapshot", "", "snapshot directory (default: temp)");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // 1. Train on a synthetic PolitiFact-style corpus.
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          static_cast<size_t>(flags.GetInt("articles")), 42));
  FKD_CHECK_OK(dataset.status());
  auto graph = dataset.value().BuildGraph();
  FKD_CHECK_OK(graph.status());

  fkd::Rng rng(7);
  auto splits = fkd::data::KFoldTriSplits(dataset.value().articles.size(),
                                          dataset.value().creators.size(),
                                          dataset.value().subjects.size(), 5,
                                          &rng);
  FKD_CHECK_OK(splits.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = 15;
  config.verbose = false;
  fkd::eval::TrainContext context;
  context.dataset = &dataset.value();
  context.graph = &graph.value();
  context.train_articles = splits.value()[0].articles.train;
  context.train_creators = splits.value()[0].creators.train;
  context.train_subjects = splits.value()[0].subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;

  fkd::core::FakeDetector detector(config);
  std::printf("training on %zu articles...\n",
              dataset.value().articles.size());
  FKD_CHECK_OK(detector.Train(context));
  std::printf("trained: final loss %.4f after %zu epochs\n\n",
              detector.train_stats().epoch_losses.back(),
              detector.train_stats().epoch_losses.size());

  // 2. Freeze to disk.
  const std::string snapshot_dir =
      flags.GetString("snapshot").empty()
          ? (std::filesystem::temp_directory_path() / "fkd_serve_example")
                .string()
          : flags.GetString("snapshot");
  FKD_CHECK_OK(fkd::serve::ExportSnapshot(detector, snapshot_dir));
  std::printf("exported snapshot to %s\n", snapshot_dir.c_str());

  // 3. Reload — from here on only the snapshot directory is used, exactly
  // like an inference process restarting on another machine.
  auto loaded = fkd::serve::LoadSnapshot(snapshot_dir);
  FKD_CHECK_OK(loaded.status());
  auto snapshot = std::make_shared<const fkd::serve::Snapshot>(
      std::move(loaded).value());
  std::printf("reloaded: %zu classes, %zu frozen creators, %zu frozen subjects\n\n",
              snapshot->num_classes, snapshot->creator_states.rows(),
              snapshot->subject_states.rows());

  // 4. Serve synthetic traffic through the micro-batching engine.
  fkd::serve::EngineOptions options;
  options.num_workers = static_cast<size_t>(flags.GetInt("workers"));
  options.max_batch_size = 8;
  options.max_batch_delay_us = 1000;
  fkd::serve::InferenceEngine engine(snapshot, options);
  FKD_CHECK_OK(engine.Start());

  const size_t num_requests = static_cast<size_t>(flags.GetInt("requests"));
  std::vector<fkd::serve::ClassificationFuture> futures;
  for (size_t i = 0; i < num_requests; ++i) {
    const auto& article =
        dataset.value().articles[i % dataset.value().articles.size()];
    fkd::serve::ArticleRequest request;
    request.text = article.text;
    auto submitted = engine.Submit(std::move(request));
    FKD_CHECK_OK(submitted.status());
    futures.push_back(std::move(submitted).value());
  }
  size_t shown = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    FKD_CHECK_OK(result.status());
    if (shown < 5) {  // print the first few classifications
      const fkd::serve::Classification& c = result.value();
      std::printf("request %zu -> %-13s (p=%.3f, batch of %zu, %.0f us)\n", i,
                  c.class_name.c_str(), c.probabilities[c.class_id],
                  c.batch_size, c.total_us);
      ++shown;
    }
  }
  engine.Stop();

  const fkd::serve::EngineStats stats = engine.Stats();
  std::printf("\nserved %llu requests in %llu batches (%llu rejected)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.rejected));

  // 5. The engine's own telemetry.
  std::printf("\nfkd.serve.* metrics:\n");
  const std::string text = fkd::obs::MetricsRegistry::Default().ExportText();
  for (size_t pos = 0; pos < text.size();) {
    const size_t end = text.find('\n', pos);
    const std::string line = text.substr(pos, end - pos);
    if (line.find("fkd.serve.") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return 0;
}
