// Serving walk-through: train a detector on a synthetic corpus, freeze it
// into a snapshot directory, reload the snapshot through the versioned
// model store as a fresh process restart would, bring up the serving
// Router (replicated micro-batching engines + score cache), push synthetic
// traffic through it, then exercise the operational moves — canary a
// second version on a traffic slice, promote it, and hot-swap a third
// version live — and dump the fkd.serve.* metrics recorded along the way.
//
//   ./serve_pipeline [--articles=200] [--requests=60] [--workers=2]
//                    [--trace=trace.json]
//
// --listen switches the tail of the walk-through to the network front end:
// instead of the scripted canary/promote/swap sequence, the router goes
// behind an FKDN/1 TCP server (--port, default ephemeral) with live
// hot-swap and canary control frames wired to the model store, and serves
// until SIGINT/SIGTERM. Drive it from another terminal:
//
//   ./serve_pipeline --listen --port=7433
//   ./fkd_loadgen --port=7433 --duration-s=10 --swap --swap-every-s=3
//
// FKD_CANARY_PCT=<percent> sets the default canary traffic share.
// With --trace and a tracing build, FKD_SLOW_TRACE_US=<n> controls which
// requests leave queue/batch/compute spans (0 traces every request).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/model_store.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {
std::atomic<bool> g_shutdown{false};
void HandleSignal(int) { g_shutdown.store(true); }
}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 200, "synthetic corpus size");
  flags.AddInt("requests", 60, "requests to serve");
  flags.AddInt("workers", 2, "engine worker threads");
  flags.AddString("snapshot", "", "snapshot directory (default: temp)");
  flags.AddString("trace", "", "optional chrome://tracing JSON output path");
  flags.AddBool("listen", false,
                "serve over TCP (FKDN/1) until SIGINT instead of running "
                "the scripted canary/swap sequence");
  flags.AddInt("port", 0, "--listen port (0 = ephemeral, printed)");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  const std::string trace_path = flags.GetString("trace");
  if (!trace_path.empty()) {
    fkd::obs::Tracer::Get().Enable(true);
    if (!FKD_TRACING_ENABLED) {
      FKD_LOG(Warning) << "--trace requested but spans are compiled out; "
                          "reconfigure with -DFKD_ENABLE_TRACING=ON";
    }
  }

  // 1. Train on a synthetic PolitiFact-style corpus.
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          static_cast<size_t>(flags.GetInt("articles")), 42));
  FKD_CHECK_OK(dataset.status());
  auto graph = dataset.value().BuildGraph();
  FKD_CHECK_OK(graph.status());

  fkd::Rng rng(7);
  auto splits = fkd::data::KFoldTriSplits(dataset.value().articles.size(),
                                          dataset.value().creators.size(),
                                          dataset.value().subjects.size(), 5,
                                          &rng);
  FKD_CHECK_OK(splits.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = 15;
  config.verbose = false;
  fkd::eval::TrainContext context;
  context.dataset = &dataset.value();
  context.graph = &graph.value();
  context.train_articles = splits.value()[0].articles.train;
  context.train_creators = splits.value()[0].creators.train;
  context.train_subjects = splits.value()[0].subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;

  fkd::core::FakeDetector detector(config);
  std::printf("training on %zu articles...\n",
              dataset.value().articles.size());
  FKD_CHECK_OK(detector.Train(context));
  std::printf("trained: final loss %.4f after %zu epochs\n\n",
              detector.train_stats().epoch_losses.back(),
              detector.train_stats().epoch_losses.size());

  // 2. Freeze to disk.
  const std::string snapshot_dir =
      flags.GetString("snapshot").empty()
          ? (std::filesystem::temp_directory_path() / "fkd_serve_example")
                .string()
          : flags.GetString("snapshot");
  FKD_CHECK_OK(fkd::serve::ExportSnapshot(detector, snapshot_dir));
  std::printf("exported snapshot to %s\n", snapshot_dir.c_str());

  // 3. Reload through the versioned model store — from here on only the
  // snapshot directory is used, exactly like an inference process
  // restarting on another machine. Each Load() is an immutable version.
  fkd::serve::VersionedModelStore store;
  auto v1 = store.Load(snapshot_dir);
  FKD_CHECK_OK(v1.status());
  FKD_CHECK_OK(store.Publish(v1.value()->version));
  std::printf("loaded version %llu: %zu classes, %zu frozen creators, "
              "%zu frozen subjects\n\n",
              static_cast<unsigned long long>(v1.value()->version),
              v1.value()->snapshot->num_classes,
              v1.value()->snapshot->creator_states.rows(),
              v1.value()->snapshot->subject_states.rows());

  // 4. Serve synthetic traffic through the router: replicated
  // micro-batching engines behind consistent-hash placement and a sharded
  // LRU score cache. The corpus repeats, so the second half of the traffic
  // is mostly cache hits.
  fkd::serve::RouterOptions options;
  options.num_replicas = 2;
  options.engine.num_workers = static_cast<size_t>(flags.GetInt("workers"));
  options.engine.max_batch_size = 8;
  options.engine.max_batch_delay_us = 1000;
  fkd::serve::Router router(options);
  FKD_CHECK_OK(router.Start(v1.value()));

  const size_t num_requests = static_cast<size_t>(flags.GetInt("requests"));
  std::vector<fkd::serve::ClassificationFuture> futures;
  for (size_t i = 0; i < num_requests; ++i) {
    const auto& article =
        dataset.value().articles[i % dataset.value().articles.size()];
    fkd::serve::ArticleRequest request;
    request.text = article.text;
    auto submitted = router.Submit(std::move(request));
    FKD_CHECK_OK(submitted.status());
    futures.push_back(std::move(submitted).value());
  }
  size_t shown = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    FKD_CHECK_OK(result.status());
    if (shown < 5) {  // print the first few classifications
      const fkd::serve::Classification& c = result.value();
      std::printf("request %zu -> %-13s (p=%.3f, v%llu%s, %.0f us)\n", i,
                  c.class_name.c_str(), c.probabilities[c.class_id],
                  static_cast<unsigned long long>(c.model_version),
                  c.from_cache ? ", cached" : "", c.total_us);
      ++shown;
    }
  }
  // Same traffic again: every request is now a score-cache hit — no
  // forward pass, microsecond latency.
  for (size_t i = 0; i < num_requests; ++i) {
    const auto& article =
        dataset.value().articles[i % dataset.value().articles.size()];
    fkd::serve::ArticleRequest request;
    request.text = article.text;
    auto submitted = router.Submit(std::move(request));
    FKD_CHECK_OK(submitted.status());
    FKD_CHECK_OK(submitted.value().get().status());
  }
  {
    const fkd::serve::RouterStats stats = router.Stats();
    std::printf("\nserved %llu requests (%llu cache hits, %llu misses)\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses));
  }

  // 5 (--listen). The same router behind the network front end: an FKDN/1
  // TCP server with admission control, its swap/canary control frames
  // wired to the model store — train → snapshot → serve-over-TCP →
  // hot-swap under whatever traffic fkd_loadgen throws at it.
  if (flags.GetBool("listen")) {
    std::mutex store_mutex;
    fkd::net::ServerOptions server_options;
    server_options.port = static_cast<int>(flags.GetInt("port"));
    server_options.swap_handler =
        [&]() -> fkd::Result<uint64_t> {
      std::lock_guard<std::mutex> lock(store_mutex);
      auto next = store.Load(snapshot_dir);
      FKD_RETURN_NOT_OK(next.status());
      FKD_RETURN_NOT_OK(router.Publish(next.value()));
      FKD_RETURN_NOT_OK(store.Publish(next.value()->version));
      return next.value()->version;
    };
    server_options.canary_handler =
        [&](uint32_t permille) -> fkd::Result<uint64_t> {
      std::lock_guard<std::mutex> lock(store_mutex);
      if (permille == 0) {
        // Idempotent: "canary share 0" with no canary running is a no-op.
        const fkd::Status stopped = router.StopCanary();
        if (!stopped.ok() &&
            stopped.code() != fkd::StatusCode::kFailedPrecondition) {
          return stopped;
        }
        return static_cast<uint64_t>(0);
      }
      auto next = store.Load(snapshot_dir);
      FKD_RETURN_NOT_OK(next.status());
      FKD_RETURN_NOT_OK(
          router.StartCanary(next.value(), static_cast<int>(permille)));
      return next.value()->version;
    };
    fkd::net::Server server(&router, server_options);
    FKD_CHECK_OK(server.Start());
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::printf("\nlistening on port %d — drive it with:\n"
                "  ./fkd_loadgen --port=%d --duration-s=10"
                " --swap --swap-every-s=3\nctrl-c to stop\n",
                server.bound_port(), server.bound_port());
    std::fflush(stdout);  // scripts scrape the port from redirected output
    while (!g_shutdown.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.Shutdown();
    const fkd::net::ServerStats stats = server.Stats();
    std::printf("\nserved %llu classify frames over TCP "
                "(%llu ok, %llu error, %llu dropped, %llu shed)\n",
                static_cast<unsigned long long>(stats.classify_frames),
                static_cast<unsigned long long>(stats.responses_ok),
                static_cast<unsigned long long>(stats.responses_error),
                static_cast<unsigned long long>(stats.responses_dropped),
                static_cast<unsigned long long>(stats.shed));
    router.Stop();
    return 0;
  }

  // 5. Operational moves, all without dropping a request: canary a second
  // version on 25% of traffic, promote it, then hot-swap a third version.
  auto v2 = store.Load(snapshot_dir);
  FKD_CHECK_OK(v2.status());
  FKD_CHECK_OK(router.StartCanary(v2.value(), 250));
  std::printf("\ncanary: version %llu on 25%% of request keys\n",
              static_cast<unsigned long long>(v2.value()->version));
  for (size_t i = 0; i < 20; ++i) {
    fkd::serve::ArticleRequest request;
    request.text = dataset.value().articles[i].text + " (canary probe)";
    auto submitted = router.Submit(std::move(request));
    FKD_CHECK_OK(submitted.status());
    FKD_CHECK_OK(submitted.value().get().status());
  }
  {
    const fkd::serve::RouterStats stats = router.Stats();
    std::printf("canary served %llu of the probes; promoting\n",
                static_cast<unsigned long long>(stats.canary_requests));
  }
  FKD_CHECK_OK(router.PromoteCanary());
  FKD_CHECK_OK(store.Publish(v2.value()->version));
  FKD_CHECK_OK(store.Retire(v1.value()->version));

  auto v3 = store.Load(snapshot_dir);
  FKD_CHECK_OK(v3.status());
  FKD_CHECK_OK(router.Publish(v3.value()));
  FKD_CHECK_OK(store.Publish(v3.value()->version));
  FKD_CHECK_OK(store.Retire(v2.value()->version));
  std::printf("hot-swapped to version %llu (router active: %llu)\n",
              static_cast<unsigned long long>(v3.value()->version),
              static_cast<unsigned long long>(router.active_version()));
  router.Stop();

  // 6. The serving telemetry.
  std::printf("\nfkd.serve.* metrics:\n");
  const std::string text = fkd::obs::MetricsRegistry::Default().ExportText();
  for (size_t pos = 0; pos < text.size();) {
    const size_t end = text.find('\n', pos);
    const std::string line = text.substr(pos, end - pos);
    if (line.find("fkd.serve.") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  if (!trace_path.empty()) {
    FKD_CHECK_OK(fkd::obs::Tracer::Get().WriteChromeJson(trace_path));
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
