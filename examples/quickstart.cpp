// Quickstart: generate a small synthetic PolitiFact corpus, train
// FakeDetector on 80% of the labels, and report test metrics for news
// articles, creators and subjects.
//
//   ./quickstart [--articles=600] [--epochs=40] [--seed=42]
//               [--metrics=metrics.jsonl] [--trace=trace.json]
//
// Training progress is reported per epoch through an obs::LoggingObserver;
// --metrics dumps the process metrics registry as JSONL and --trace writes
// a chrome://tracing file of the run's spans.

#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace {

using ::fkd::core::FakeDetector;
using ::fkd::core::FakeDetectorConfig;

fkd::eval::BinaryMetrics Evaluate(const std::vector<int32_t>& test_ids,
                                  const std::vector<int32_t>& actual,
                                  const std::vector<int32_t>& predicted) {
  fkd::eval::ConfusionMatrix matrix(2);
  for (int32_t id : test_ids) matrix.Add(actual[id], predicted[id]);
  return fkd::eval::ComputeBinaryMetrics(matrix);
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 600, "synthetic corpus size");
  flags.AddInt("epochs", 40, "training epochs");
  flags.AddInt("seed", 42, "random seed");
  flags.AddString("metrics", "", "optional metrics registry JSONL output path");
  flags.AddString("trace", "", "optional chrome://tracing JSON output path");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string trace_path = flags.GetString("trace");
  if (!trace_path.empty()) {
    fkd::obs::Tracer::Get().Enable(true);
    if (!FKD_TRACING_ENABLED) {
      FKD_LOG(Warning) << "--trace requested but spans are compiled out; "
                          "reconfigure with -DFKD_ENABLE_TRACING=ON";
    }
  }

  // 1. Data: a synthetic corpus matching the PolitiFact statistics.
  auto dataset_result = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(flags.GetInt("articles"), seed));
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();
  std::printf("dataset: %s\n", fkd::data::DescribeDataset(dataset).c_str());

  auto graph_result = dataset.BuildGraph();
  FKD_CHECK_OK(graph_result.status());

  // 2. Split: one 5-fold split, first fold held out.
  fkd::Rng rng(seed);
  auto splits_result = fkd::data::KFoldTriSplits(
      dataset.articles.size(), dataset.creators.size(),
      dataset.subjects.size(), /*k=*/5, &rng);
  FKD_CHECK_OK(splits_result.status());
  const fkd::data::TriSplit& split = splits_result.value()[0];

  // 3. Train FakeDetector, with per-epoch progress through the observer
  // stack (log lines + fkd.train.* metrics).
  FakeDetectorConfig config;
  config.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  FakeDetector detector(config);

  fkd::obs::LoggingObserver logging_observer(/*log_every=*/5);
  fkd::obs::MetricsObserver metrics_observer;
  fkd::obs::TeeObserver observer(&logging_observer, &metrics_observer);

  fkd::eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph_result.value();
  context.train_articles = split.articles.train;
  context.train_creators = split.creators.train;
  context.train_subjects = split.subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = seed;
  context.observer = &observer;

  fkd::WallTimer timer;
  FKD_CHECK_OK(detector.Train(context));
  std::printf("trained %zu parameters in %.1fs (final loss %.4f)\n",
              detector.ParameterCount(), timer.ElapsedSeconds(),
              detector.train_stats().epoch_losses.back());

  // 4. Evaluate on the held-out fold.
  auto predictions_result = detector.Predict();
  FKD_CHECK_OK(predictions_result.status());
  const fkd::eval::Predictions& predictions = predictions_result.value();

  std::vector<int32_t> article_actual(dataset.articles.size());
  for (const auto& a : dataset.articles) {
    article_actual[a.id] = fkd::data::BiClassOf(a.label);
  }
  std::vector<int32_t> creator_actual(dataset.creators.size());
  for (const auto& c : dataset.creators) {
    creator_actual[c.id] = fkd::data::BiClassOf(c.label);
  }
  std::vector<int32_t> subject_actual(dataset.subjects.size());
  for (const auto& s : dataset.subjects) {
    subject_actual[s.id] = fkd::data::BiClassOf(s.label);
  }

  const auto article_metrics =
      Evaluate(split.articles.test, article_actual, predictions.articles);
  const auto creator_metrics =
      Evaluate(split.creators.test, creator_actual, predictions.creators);
  const auto subject_metrics =
      Evaluate(split.subjects.test, subject_actual, predictions.subjects);

  std::printf("\n%-9s %9s %9s %9s %9s\n", "entity", "accuracy", "precision",
              "recall", "f1");
  std::printf("%-9s %9.3f %9.3f %9.3f %9.3f\n", "articles",
              article_metrics.accuracy, article_metrics.precision,
              article_metrics.recall, article_metrics.f1);
  std::printf("%-9s %9.3f %9.3f %9.3f %9.3f\n", "creators",
              creator_metrics.accuracy, creator_metrics.precision,
              creator_metrics.recall, creator_metrics.f1);
  std::printf("%-9s %9.3f %9.3f %9.3f %9.3f\n", "subjects",
              subject_metrics.accuracy, subject_metrics.precision,
              subject_metrics.recall, subject_metrics.f1);

  // 5. Optional observability artifacts.
  const std::string metrics_path = flags.GetString("metrics");
  if (!metrics_path.empty()) {
    FKD_CHECK_OK(fkd::obs::MetricsRegistry::Default().WriteJsonl(metrics_path));
    std::printf("\nmetrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    FKD_CHECK_OK(fkd::obs::Tracer::Get().WriteChromeJson(trace_path));
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
