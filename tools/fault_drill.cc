// Fault-injection drill binary for crash_smoke.sh and manual robustness
// testing. Trains a tiny deterministic detector and exercises the durable
// artifact paths so a harness can kill it mid-write (via FKD_FAULTS
// crash rules) and then verify what landed on disk.
//
// Modes (--mode=):
//   export   train, then ExportSnapshot to --dir
//   verify   LoadSnapshot from --dir; exit 0 when it loads,
//            exit 3 when it fails CLEANLY (error status, no crash)
//   train    train with checkpoints under --dir (resumes automatically
//            from the newest valid checkpoint when one exists)
//   resume   alias of train, for readable drill scripts
//
// Exit codes: 0 success, 1 operation failed, 2 bad usage, 3 clean
// verification failure. FaultAction::kCrash exits with 134.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/status.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "serve/snapshot.h"

namespace fkd {
namespace {

// Mirrors the tiny deterministic setup in tests/crash_test.cc: small enough
// to train in well under a second, big enough to exercise every artifact.
core::FakeDetectorConfig DrillConfig(size_t epochs) {
  core::FakeDetectorConfig config;
  config.epochs = epochs;
  config.explicit_words = 20;
  config.latent_vocabulary = 60;
  config.hflu.max_sequence_length = 8;
  config.hflu.gru_hidden = 6;
  config.hflu.latent_dim = 6;
  config.hflu.embed_dim = 6;
  config.gdu_hidden = 8;
  config.validation_fraction = 0.25f;
  config.early_stopping_patience = 50;
  config.verbose = false;
  return config;
}

struct DrillData {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  eval::TrainContext context;
};

Result<DrillData> BuildData() {
  FKD_ASSIGN_OR_RETURN(
      auto dataset,
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(40, 36)));
  FKD_ASSIGN_OR_RETURN(auto graph, dataset.BuildGraph());
  Rng rng(123);
  FKD_ASSIGN_OR_RETURN(
      auto splits,
      data::KFoldTriSplits(dataset.articles.size(), dataset.creators.size(),
                           dataset.subjects.size(), 4, &rng));
  DrillData data{std::move(dataset), std::move(graph), {}};
  data.context.train_articles = splits[0].articles.train;
  data.context.train_creators = splits[0].creators.train;
  data.context.train_subjects = splits[0].subjects.train;
  data.context.granularity = eval::LabelGranularity::kBinary;
  data.context.seed = 11;
  return data;
}

int RunDrill(const std::string& mode, const std::string& dir, size_t epochs) {
  if (mode == "verify") {
    auto loaded = serve::LoadSnapshot(dir);
    if (loaded.ok()) {
      std::printf("fault_drill: snapshot at %s loads cleanly\n", dir.c_str());
      return 0;
    }
    std::printf("fault_drill: snapshot at %s rejected: %s\n", dir.c_str(),
                loaded.status().ToString().c_str());
    return 3;
  }

  auto data = BuildData();
  if (!data.ok()) {
    std::fprintf(stderr, "fault_drill: data setup failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  data.value().context.dataset = &data.value().dataset;
  data.value().context.graph = &data.value().graph;

  core::FakeDetectorConfig config = DrillConfig(epochs);
  if (mode == "train" || mode == "resume") config.checkpoint_dir = dir;
  core::FakeDetector detector(config);
  const Status trained = detector.Train(data.value().context);
  if (!trained.ok()) {
    std::fprintf(stderr, "fault_drill: training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  if (mode == "export") {
    const Status exported = serve::ExportSnapshot(detector, dir);
    if (!exported.ok()) {
      std::fprintf(stderr, "fault_drill: export failed: %s\n",
                   exported.ToString().c_str());
      return 1;
    }
    std::printf("fault_drill: exported snapshot to %s\n", dir.c_str());
    return 0;
  }
  std::printf("fault_drill: trained %zu epochs with checkpoints under %s\n",
              epochs, dir.c_str());
  return 0;
}

}  // namespace
}  // namespace fkd

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddString("mode", "export", "export | verify | train | resume");
  flags.AddString("dir", "", "snapshot or checkpoint directory");
  flags.AddInt("epochs", 4, "training epochs (train/resume modes)");
  const fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return 2;

  const std::string mode = flags.GetString("mode");
  const std::string dir = flags.GetString("dir");
  if (dir.empty() || (mode != "export" && mode != "verify" &&
                      mode != "train" && mode != "resume")) {
    std::fprintf(stderr, "%s", flags.Usage(argv[0]).c_str());
    return 2;
  }
  return fkd::RunDrill(mode, dir, static_cast<size_t>(flags.GetInt("epochs")));
}
