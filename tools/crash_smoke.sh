#!/usr/bin/env bash
# End-to-end crash drill over the durable artifact paths.
#
# Repeatedly kills the fault_drill binary mid-write — at the first write,
# deep into the payload, at an fsync, and at the publishing rename — using
# FKD_FAULTS crash rules (the process dies with _exit(134), exactly like a
# SIGKILL: no flushing, no cleanup). After every kill it asserts that no
# snapshot/checkpoint directory was published and that verification fails
# CLEANLY. Then it proves the recovery story: a clean export verifies, a
# byte-flipped file is rejected, and training resumed over a killed
# checkpoint run completes and publishes its final checkpoint.
#
#   tools/crash_smoke.sh <path-to-fault_drill> [workdir]
#
# Wired into ctest as the `crash_smoke` label: ctest -L crash_smoke

set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <path-to-fault_drill> [workdir]" >&2
  exit 2
fi
DRILL="$1"
WORK="${2:-}"
if [[ -z "${WORK}" ]]; then
  WORK="$(mktemp -d -t fkd_crash_smoke.XXXXXX)"
  trap 'rm -rf "${WORK}"' EXIT
fi

CRASH_EXIT=134  # kFaultCrashExitCode

fail() { echo "crash_smoke: FAIL: $*" >&2; exit 1; }

# Runs a command expecting a specific exit code (set -e safe).
expect_exit() {
  local want="$1"; shift
  local got=0
  "$@" || got=$?
  [[ "${got}" -eq "${want}" ]] || fail "expected exit ${want}, got ${got}: $*"
}

# No published ckpt-* directory may exist under $1; abandoned *.tmp-*
# staging litter from the killed process is expected and fine.
assert_no_published_checkpoint() {
  local root="$1"
  local d
  for d in "${root}"/ckpt-*; do
    [[ -e "${d}" ]] || continue
    case "$(basename "${d}")" in
      *.tmp-*) ;;
      *) fail "crash published checkpoint ${d}" ;;
    esac
  done
}

echo "== kill export mid-write at four distinct points =="
i=0
for spec in "io.write:crash@1" "io.write:crash@12" "io.fsync:crash@2" \
            "io.rename:crash"; do
  i=$((i + 1))
  snap="${WORK}/snap_killed_${i}"
  echo "-- FKD_FAULTS=${spec}"
  FKD_FAULTS="${spec}" expect_exit "${CRASH_EXIT}" \
    "${DRILL}" --mode=export --dir="${snap}"
  [[ ! -e "${snap}" ]] || fail "kill at ${spec} still published ${snap}"
  expect_exit 3 "${DRILL}" --mode=verify --dir="${snap}"
done

echo "== clean export verifies; a flipped byte is rejected =="
snap="${WORK}/snap_clean"
expect_exit 0 "${DRILL}" --mode=export --dir="${snap}"
expect_exit 0 "${DRILL}" --mode=verify --dir="${snap}"

weights="${snap}/weights.fkdw"
[[ -f "${weights}" ]] || fail "clean export is missing ${weights}"
size="$(stat -c%s "${weights}")"
off=$((size / 2))
byte="$(od -An -tu1 -j "${off}" -N1 "${weights}" | tr -d ' ')"
printf "$(printf '\\%03o' $(((byte ^ 32) & 255)))" |
  dd of="${weights}" bs=1 seek="${off}" conv=notrunc status=none
expect_exit 3 "${DRILL}" --mode=verify --dir="${snap}"

echo "== kill training at the first checkpoint commit; retrain recovers =="
ckpt="${WORK}/ckpt_first"
FKD_FAULTS="io.rename:crash@1" expect_exit "${CRASH_EXIT}" \
  "${DRILL}" --mode=train --dir="${ckpt}" --epochs=4
assert_no_published_checkpoint "${ckpt}"
expect_exit 0 "${DRILL}" --mode=resume --dir="${ckpt}" --epochs=4
[[ -f "${ckpt}/ckpt-4/MANIFEST" ]] || fail "resume never published ckpt-4"

echo "== kill training at a later checkpoint; resume picks up the survivor =="
ckpt="${WORK}/ckpt_later"
FKD_FAULTS="io.rename:crash@3" expect_exit "${CRASH_EXIT}" \
  "${DRILL}" --mode=train --dir="${ckpt}" --epochs=4
[[ -f "${ckpt}/ckpt-2/MANIFEST" ]] || fail "ckpt-2 should have survived"
[[ ! -e "${ckpt}/ckpt-3" ]] || fail "kill mid-commit published ckpt-3"
expect_exit 0 "${DRILL}" --mode=resume --dir="${ckpt}" --epochs=4
[[ -f "${ckpt}/ckpt-4/MANIFEST" ]] || fail "resume never published ckpt-4"

echo "crash_smoke: OK"
