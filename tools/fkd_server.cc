// FKDN/1 wire-protocol serving daemon: snapshot -> Router -> epoll server.
//
//   ./fkd_server --snapshot=/path/to/snapshot --port=7433
//   ./fkd_server --demo --port=0 --port-file=/tmp/port   # self-trained model
//
// --demo trains a tiny synthetic model in-process (no snapshot needed), so
// smoke tests and quickstarts can bring up a serving endpoint with one
// command. With a snapshot directory, kSwapRequest frames re-load it and
// hot-swap the router to the new version; kCanaryRequest frames start (or
// stop, permille 0) a canary on a fresh load of the same directory.
//
// SIGINT/SIGTERM triggers the graceful sequence: stop accepting, drain
// every in-flight request and flush its response, stop the router, flush
// the stats exporter, then verify the no-silent-drop accounting invariant
// before exiting. FKD_STATS_INTERVAL_MS / FKD_STATS_PATH enable the JSONL
// stats feed consumed by fkd_obstop.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "net/server.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "serve/model_store.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true, std::memory_order_release); }

/// Trains a small synthetic detector and freezes it into `snapshot_dir`.
fkd::Status TrainDemoSnapshot(const std::string& snapshot_dir,
                              size_t articles) {
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(articles, 42));
  FKD_RETURN_NOT_OK(dataset.status());
  auto graph = dataset.value().BuildGraph();
  FKD_RETURN_NOT_OK(graph.status());
  fkd::Rng rng(7);
  auto splits = fkd::data::KFoldTriSplits(
      dataset.value().articles.size(), dataset.value().creators.size(),
      dataset.value().subjects.size(), 5, &rng);
  FKD_RETURN_NOT_OK(splits.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = 10;
  config.verbose = false;
  fkd::eval::TrainContext context;
  context.dataset = &dataset.value();
  context.graph = &graph.value();
  context.train_articles = splits.value()[0].articles.train;
  context.train_creators = splits.value()[0].creators.train;
  context.train_subjects = splits.value()[0].subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;
  fkd::core::FakeDetector detector(config);
  FKD_RETURN_NOT_OK(detector.Train(context));
  return fkd::serve::ExportSnapshot(detector, snapshot_dir);
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddString("host", "127.0.0.1", "bind address (numeric IPv4)");
  flags.AddInt("port", 7433, "TCP port (0 = ephemeral, see --port-file)");
  flags.AddString("snapshot", "", "snapshot directory to serve");
  flags.AddBool("demo", false, "train a tiny synthetic model to serve");
  flags.AddInt("demo-articles", 120, "synthetic corpus size for --demo");
  flags.AddInt("replicas", 2, "primary engine replicas");
  flags.AddInt("workers", 2, "worker threads per engine");
  flags.AddInt("loops", 2, "epoll event-loop threads");
  flags.AddInt("completion-threads", 2, "future-to-frame pump threads");
  flags.AddInt("max-inflight", 256, "in-flight classify budget");
  flags.AddInt("shed-depth", 0,
               "engine queue depth that sheds new work (0 = auto)");
  flags.AddInt("max-connections", 1024, "concurrent connection cap");
  flags.AddInt("idle-timeout-ms", 60000,
               "close idle / slow-loris connections after this (<=0 off)");
  flags.AddString("port-file", "",
                  "write the bound port here once listening");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  std::string snapshot_dir = flags.GetString("snapshot");
  if (flags.GetBool("demo") || snapshot_dir.empty()) {
    if (snapshot_dir.empty()) {
      snapshot_dir =
          (std::filesystem::temp_directory_path() /
           ("fkd_server_demo_" + std::to_string(::getpid())))
              .string();
    }
    std::printf("training demo model (%lld articles) -> %s ...\n",
                static_cast<long long>(flags.GetInt("demo-articles")),
                snapshot_dir.c_str());
    FKD_CHECK_OK(TrainDemoSnapshot(
        snapshot_dir, static_cast<size_t>(flags.GetInt("demo-articles"))));
  }

  fkd::serve::VersionedModelStore store;
  auto initial = store.Load(snapshot_dir);
  FKD_CHECK_OK(initial.status());
  FKD_CHECK_OK(store.Publish(initial.value()->version));

  fkd::serve::RouterOptions router_options;
  router_options.num_replicas =
      static_cast<size_t>(flags.GetInt("replicas"));
  router_options.engine.num_workers =
      static_cast<size_t>(flags.GetInt("workers"));
  fkd::serve::Router router(router_options);
  FKD_CHECK_OK(router.Start(initial.value()));

  // Swap/canary handlers re-load the snapshot directory; a real deployment
  // would point them at a new artifact path, the moves are identical.
  std::mutex store_mutex;
  fkd::net::ServerOptions server_options;
  server_options.host = flags.GetString("host");
  server_options.port = static_cast<int>(flags.GetInt("port"));
  server_options.event_loops = static_cast<size_t>(flags.GetInt("loops"));
  server_options.completion_threads =
      static_cast<size_t>(flags.GetInt("completion-threads"));
  server_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight"));
  server_options.shed_queue_depth =
      static_cast<size_t>(flags.GetInt("shed-depth"));
  server_options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections"));
  server_options.idle_timeout_ms = flags.GetInt("idle-timeout-ms");
  server_options.swap_handler =
      [&]() -> fkd::Result<uint64_t> {
    std::lock_guard<std::mutex> lock(store_mutex);
    auto model = store.Load(snapshot_dir);
    FKD_RETURN_NOT_OK(model.status());
    FKD_RETURN_NOT_OK(router.Publish(model.value()));
    FKD_RETURN_NOT_OK(store.Publish(model.value()->version));
    return model.value()->version;
  };
  server_options.canary_handler =
      [&](uint32_t permille) -> fkd::Result<uint64_t> {
    std::lock_guard<std::mutex> lock(store_mutex);
    if (permille == 0) {
      // Idempotent: "canary share 0" with no canary running is a no-op.
      const fkd::Status stopped = router.StopCanary();
      if (!stopped.ok() &&
          stopped.code() != fkd::StatusCode::kFailedPrecondition) {
        return stopped;
      }
      return static_cast<uint64_t>(0);
    }
    auto model = store.Load(snapshot_dir);
    FKD_RETURN_NOT_OK(model.status());
    FKD_RETURN_NOT_OK(
        router.StartCanary(model.value(), static_cast<int>(permille)));
    return model.value()->version;
  };

  fkd::net::Server server(&router, server_options);
  FKD_CHECK_OK(server.Start());
  std::printf("serving version %llu on %s:%d\n",
              static_cast<unsigned long long>(router.active_version()),
              server_options.host.c_str(), server.bound_port());

  const std::string port_file = flags.GetString("port-file");
  if (!port_file.empty()) {
    // Write-then-rename so a watcher never reads a half-written port.
    const std::string tmp = port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    FKD_CHECK(f != nullptr) << "cannot write " << tmp;
    std::fprintf(f, "%d\n", server.bound_port());
    std::fclose(f);
    std::filesystem::rename(tmp, port_file);
  }

  fkd::obs::StatsExporter* exporter =
      fkd::obs::StatsExporter::MaybeStartFromEnvironment();

  std::signal(SIGINT, &HandleSignal);
  std::signal(SIGTERM, &HandleSignal);
  while (!g_shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful sequence: drain the server (every accepted classify resolves
  // and flushes), then the router, then the telemetry.
  std::printf("\nsignal received; draining...\n");
  server.Shutdown();
  router.Stop();
  if (exporter != nullptr) exporter->Stop();

  const fkd::net::ServerStats stats = server.Stats();
  const uint64_t accounted =
      stats.responses_ok + stats.responses_error + stats.responses_dropped;
  std::printf("served %llu classify frames: %llu ok, %llu error, %llu "
              "dropped (client gone)\n",
              static_cast<unsigned long long>(stats.classify_frames),
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.responses_error),
              static_cast<unsigned long long>(stats.responses_dropped));
  FKD_CHECK_EQ(stats.classify_frames, accounted)
      << "accepted requests were silently dropped";
  std::printf("no accepted request was silently dropped; bye\n");
  return 0;
}
