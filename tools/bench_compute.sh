#!/usr/bin/env bash
# One-shot regeneration of the committed compute-kernel artifact
# BENCH_compute.json: the full bench_compute_kernels sweep (dense MatMul,
# uniform + skewed SpMM, row softmax, GDU diffusion step, end-to-end
# ScoreArticles) at pool widths 1/2/4/8 against fixed serial baselines.
# Every row and the summary stamp the host context (hardware_concurrency,
# FKD_NUM_THREADS) via bench_hardware.h, so artifacts from different boxes
# stay interpretable; the binary's speedup gates skip with a loud banner on
# 1-core hosts.
#
#   tools/bench_compute.sh [build-dir] [out.json]
#
# Environment: REPS (default 5, best-of per config).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OUT="${2:-${REPO_ROOT}/BENCH_compute.json}"
REPS="${REPS:-5}"

BENCH_BIN="${BUILD_DIR}/bench/bench_compute_kernels"
[[ -x "${BENCH_BIN}" ]] || {
  echo "build bench_compute_kernels first (cmake --build ${BUILD_DIR})"; exit 1
}

echo "== compute-kernel sweep (reps=${REPS}) =="
"${BENCH_BIN}" --reps="${REPS}" --out="${OUT}"

echo "wrote ${OUT}"
