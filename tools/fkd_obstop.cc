// fkd_obstop — live serving dashboard over the StatsExporter's JSONL feed.
//
// Tails the file written by obs::StatsExporter (FKD_STATS_INTERVAL_MS /
// FKD_STATS_PATH), parses the newest "fkd_stats" line, and renders QPS,
// windowed latency percentiles, cache hit ratio, queue depth and breaker
// health — a `top` for the serving stack, no dependencies beyond the feed
// file itself.
//
//   fkd_obstop [--once] [--interval-ms N] [path]
//
//   path          stats file (default: $FKD_STATS_PATH or fkd_stats.jsonl)
//   --once        render a single frame and exit (scripts, tests)
//   --interval-ms refresh period in follow mode (default 1000)
//
// Follow mode clears the terminal between frames with ANSI escapes and
// exits cleanly on Ctrl-C.

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

namespace {

// ---- minimal extraction over the exporter's known output ---------------------

/// Returns the balanced `{...}` object that starts at `begin` (which must
/// point at '{'), or an empty string on malformed input. The exporter never
/// emits braces inside strings except in instrument identities, which hold
/// no quotes, so plain depth counting is sound here.
std::string BalancedObject(const std::string& text, size_t begin) {
  if (begin >= text.size() || text[begin] != '{') return "";
  int depth = 0;
  for (size_t i = begin; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) {
      return text.substr(begin, i - begin + 1);
    }
  }
  return "";
}

/// The object value of `"key":{...}` inside `text`; empty if absent.
std::string ExtractObject(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  return BalancedObject(text, at + needle.size() - 1);
}

/// The numeric value of `"key":<number>` inside `text`; `fallback` if absent.
double ExtractNumber(const std::string& text, const std::string& key,
                     double fallback = 0.0) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const size_t start = at + needle.size();
  if (start >= text.size() ||
      (!std::isdigit(static_cast<unsigned char>(text[start])) &&
       text[start] != '-')) {
    return fallback;
  }
  return std::strtod(text.c_str() + start, nullptr);
}

/// Sum of one subfield over every `fkd.serve.requests{result=...}` counter
/// listed in `results` (comma-separated), e.g. the ok+cache_hit rate = QPS.
double SumRequestField(const std::string& counters, const char* field,
                       std::initializer_list<const char*> results) {
  double total = 0.0;
  for (const char* result : results) {
    const std::string identity =
        std::string("fkd.serve.requests{result=") + result + "}";
    const std::string object = ExtractObject(counters, identity);
    if (!object.empty()) total += ExtractNumber(object, field);
  }
  return total;
}

/// Newest non-empty "fkd_stats" line of the feed, or empty.
std::string LastStatsLine(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::string line, last;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"fkd_stats\"") != std::string::npos) {
      last = line;
    }
  }
  return last;
}

// ---- rendering ---------------------------------------------------------------

void PrintHistogramRow(const char* label, const std::string& histograms,
                       const std::string& identity) {
  const std::string object = ExtractObject(histograms, identity);
  if (object.empty()) return;
  const std::string window = ExtractObject(object, "window");
  // Prefer the last-interval window; fall back to lifetime stats before the
  // second tick.
  const std::string& source = window.empty() ? object : window;
  std::printf("  %-12s p50=%-10.0f p99=%-10.0f p999=%-10.0f %s\n", label,
              ExtractNumber(source, "p50"), ExtractNumber(source, "p99"),
              ExtractNumber(source, "p999"),
              window.empty() ? "(lifetime)" : "(window)");
}

void RenderFrame(const std::string& path, const std::string& line) {
  if (line.empty()) {
    std::printf("fkd_obstop: waiting for stats at %s\n", path.c_str());
    std::printf("  (start the server with FKD_STATS_INTERVAL_MS=1000)\n");
    return;
  }
  const std::string counters = ExtractObject(line, "counters");
  const std::string gauges = ExtractObject(line, "gauges");
  const std::string histograms = ExtractObject(line, "histograms");

  const double uptime_s = ExtractNumber(line, "uptime_ms") / 1000.0;
  std::printf("fkd obstop — %s   seq=%.0f  uptime=%.1fs  tick=%.0fms\n",
              path.c_str(), ExtractNumber(line, "seq"), uptime_s,
              ExtractNumber(line, "interval_ms"));

  const double engine_qps = SumRequestField(counters, "rate", {"ok"});
  const double cache_qps = SumRequestField(counters, "rate", {"cache_hit"});
  std::printf("  %-12s total=%-10.1f engine=%-10.1f cache=%-10.1f\n", "qps",
              engine_qps + cache_qps, engine_qps, cache_qps);
  const double errors = SumRequestField(
      counters, "rate", {"rejected", "expired", "failed", "shed",
                         "unavailable"});
  std::printf(
      "  %-12s total=%-10.2f rejected=%-6.1f expired=%-6.1f failed=%-6.1f "
      "shed=%-6.1f\n",
      "errors/s", errors, SumRequestField(counters, "rate", {"rejected"}),
      SumRequestField(counters, "rate", {"expired"}),
      SumRequestField(counters, "rate", {"failed"}),
      SumRequestField(counters, "rate", {"shed"}));

  PrintHistogramRow("latency_us", histograms, "fkd.serve.latency_us{}");
  PrintHistogramRow("queue_us", histograms, "fkd.serve.queue_us{}");
  PrintHistogramRow("compute_us", histograms, "fkd.serve.compute_us{}");

  const std::string hits_object =
      ExtractObject(counters, "fkd.serve.cache_hit{}");
  const std::string misses_object =
      ExtractObject(counters, "fkd.serve.cache_miss{}");
  const double hits = ExtractNumber(hits_object, "total");
  const double misses = ExtractNumber(misses_object, "total");
  const double lookups = hits + misses;
  std::printf("  %-12s ratio=%-6.2f hits=%-10.0f misses=%-10.0f\n", "cache",
              lookups > 0 ? hits / lookups : 0.0, hits, misses);

  const std::string breaker_object =
      ExtractObject(counters, "fkd.serve.breaker_open{}");
  std::printf(
      "  %-12s depth=%-6.0f health=%-4.0f version=%-6.0f "
      "breaker_opens=%.0f\n",
      "engine",
      ExtractNumber(gauges, "fkd.serve.queue_depth{}"),
      ExtractNumber(gauges, "fkd.serve.health{}", 1.0),
      ExtractNumber(gauges, "fkd.serve.active_version{}"),
      ExtractNumber(breaker_object, "total"));

  // Network front end (present only when fkd_server is running).
  const std::string conns_object =
      ExtractObject(counters, "fkd.net.connections_total{}");
  if (!conns_object.empty()) {
    std::printf(
        "  %-12s active=%-6.0f inflight=%-6.0f accepts/s=%-8.2f "
        "frames_in/s=%-8.1f frames_out/s=%-8.1f\n",
        "net",
        ExtractNumber(gauges, "fkd.net.connections{}"),
        ExtractNumber(gauges, "fkd.net.inflight{}"),
        ExtractNumber(conns_object, "rate"),
        ExtractNumber(ExtractObject(counters, "fkd.net.frames{dir=in}"),
                      "rate"),
        ExtractNumber(ExtractObject(counters, "fkd.net.frames{dir=out}"),
                      "rate"));
    std::printf(
        "  %-12s shed/s=%-8.2f proto_errs=%-6.0f idle_closed=%-6.0f "
        "dropped=%-6.0f\n",
        "net errors",
        ExtractNumber(ExtractObject(counters, "fkd.net.shed{}"), "rate"),
        ExtractNumber(ExtractObject(counters, "fkd.net.protocol_errors{}"),
                      "total"),
        ExtractNumber(ExtractObject(counters, "fkd.net.idle_closed{}"),
                      "total"),
        ExtractNumber(
            ExtractObject(counters, "fkd.net.responses_dropped{}"),
            "total"));
    PrintHistogramRow("net_req_us", histograms, "fkd.net.request_us{}");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  int interval_ms = 1000;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms <= 0) interval_ms = 1000;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: fkd_obstop [--once] [--interval-ms N] [path]\n");
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    const char* env = std::getenv("FKD_STATS_PATH");
    path = (env != nullptr && *env != '\0') ? env : "fkd_stats.jsonl";
  }

  if (once) {
    RenderFrame(path, LastStatsLine(path));
    return 0;
  }
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (;;) {
    if (tty) std::printf("\x1b[2J\x1b[H");  // clear + home between frames
    RenderFrame(path, LastStatsLine(path));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
