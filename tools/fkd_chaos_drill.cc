// End-to-end network chaos soak: boots the full serving stack in-process
// (snapshot -> Router with quarantine -> epoll server), drives it with the
// resilient closed-loop load generator, and walks a deterministic fault
// schedule through the socket-layer and replica-level FKD_FAULTS sites:
//
//   phase 1 (10% of the soak)  network chaos: accept failures (EMFILE
//                              path), torn sends, injected RSTs, delayed
//                              readiness, dropped eventfd wakeups
//   phase 2 (30%)              replica 0 forced sick (every batch on its
//                              private serve.replica0.batch site fails)
//                              until the router quarantines it
//   phase 3 (60%)              faults cleared; probes must reinstate the
//                              replica before the soak ends
//
// Exit is non-zero unless every gate holds:
//   - zero silent drops: classify_frames == ok + error + dropped
//   - router accounting: submitted == cache_hits + primary + canary
//   - the sick replica was quarantined AND reinstated
//   - the client made progress (ok > 0) and classified every terminal
//     outcome (ok/shed/deadline/io/other all reported, nothing vanished)
//
//   ./fkd_chaos_drill            # full 60 s soak
//   ./fkd_chaos_drill --quick    # ~5 s variant, registered as a tier-1 test

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "serve/model_store.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

/// Trains a small synthetic detector and freezes it into `snapshot_dir`
/// (same recipe as fkd_server --demo).
fkd::Status TrainDemoSnapshot(const std::string& snapshot_dir,
                              size_t articles) {
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(articles, 42));
  FKD_RETURN_NOT_OK(dataset.status());
  auto graph = dataset.value().BuildGraph();
  FKD_RETURN_NOT_OK(graph.status());
  fkd::Rng rng(7);
  auto splits = fkd::data::KFoldTriSplits(
      dataset.value().articles.size(), dataset.value().creators.size(),
      dataset.value().subjects.size(), 5, &rng);
  FKD_RETURN_NOT_OK(splits.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = 10;
  config.verbose = false;
  fkd::eval::TrainContext context;
  context.dataset = &dataset.value();
  context.graph = &graph.value();
  context.train_articles = splits.value()[0].articles.train;
  context.train_creators = splits.value()[0].creators.train;
  context.train_subjects = splits.value()[0].subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;
  fkd::core::FakeDetector detector(config);
  FKD_RETURN_NOT_OK(detector.Train(context));
  return fkd::serve::ExportSnapshot(detector, snapshot_dir);
}

std::vector<fkd::net::ClassifyRequestMsg> BuildCorpus(size_t articles) {
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(articles, 1337));
  FKD_CHECK_OK(dataset.status());
  std::vector<fkd::net::ClassifyRequestMsg> corpus;
  corpus.reserve(dataset.value().articles.size());
  for (const auto& article : dataset.value().articles) {
    fkd::net::ClassifyRequestMsg msg;
    msg.text = article.text;
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

bool g_failed = false;

void Gate(bool condition, const char* what) {
  if (condition) {
    std::printf("  PASS  %s\n", what);
  } else {
    std::printf("  FAIL  %s\n", what);
    g_failed = true;
  }
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddBool("quick", false, "~5 s soak instead of the full 60 s");
  flags.AddInt("duration-s", 0, "soak seconds (0 = 60, or 5 with --quick)");
  flags.AddInt("connections", 4, "loadgen connections");
  flags.AddInt("window", 4, "closed-loop outstanding requests/connection");
  flags.AddInt("articles", 120, "synthetic corpus size for the demo model");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const bool quick = flags.GetBool("quick");
  int64_t duration_ms = flags.GetInt("duration-s") * 1000;
  if (duration_ms <= 0) duration_ms = quick ? 5000 : 60000;

  // The drill owns the injector: a stray FKD_FAULTS in the environment
  // would make the "deterministic schedule" anything but.
  fkd::FaultInjector& faults = fkd::FaultInjector::Global();
  faults.Clear();

  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() /
       ("fkd_chaos_drill_" + std::to_string(::getpid())))
          .string();
  std::printf("training demo model -> %s ...\n", snapshot_dir.c_str());
  FKD_CHECK_OK(TrainDemoSnapshot(
      snapshot_dir, static_cast<size_t>(flags.GetInt("articles"))));

  fkd::serve::VersionedModelStore store;
  auto model = store.Load(snapshot_dir);
  FKD_CHECK_OK(model.status());
  FKD_CHECK_OK(store.Publish(model.value()->version));

  fkd::serve::RouterOptions router_options;
  router_options.num_replicas = 2;
  router_options.engine.num_workers = 2;
  // Fast-reacting quarantine so the quick soak sees the full state machine:
  // sicken -> quarantine -> probe -> reinstate.
  router_options.quarantine.interval_ms = quick ? 100 : 200;
  router_options.quarantine.min_samples = 4;
  router_options.quarantine.probe_successes = 2;
  fkd::serve::Router router(router_options);
  FKD_CHECK_OK(router.Start(model.value()));

  fkd::net::ServerOptions server_options;
  server_options.host = "127.0.0.1";
  server_options.port = 0;
  server_options.event_loops = 2;
  server_options.completion_threads = 2;
  fkd::net::Server server(&router, server_options);
  FKD_CHECK_OK(server.Start());
  std::printf("chaos drill serving on 127.0.0.1:%d for %lld ms\n",
              server.bound_port(), static_cast<long long>(duration_ms));

  fkd::net::LoadGenOptions load_options;
  load_options.host = "127.0.0.1";
  load_options.port = server.bound_port();
  load_options.connections =
      static_cast<size_t>(flags.GetInt("connections"));
  load_options.window = static_cast<size_t>(flags.GetInt("window"));
  load_options.duration_ms = duration_ms;
  load_options.warmup_ms = 0;  // chaos phases are the point, measure it all
  load_options.drain_timeout_ms = quick ? 2000 : 5000;
  // Engine-bound traffic: unique texts defeat the score cache, so replica
  // 0's injected batch failures actually surface and the health monitor
  // has failure samples to score.
  load_options.unique_requests = true;
  load_options.corpus = BuildCorpus(64);

  fkd::Result<fkd::net::LoadGenReport> report =
      fkd::Status::Internal("loadgen never ran");
  std::thread load_thread(
      [&] { report = fkd::net::RunLoadGen(load_options); });

  // Deterministic chaos schedule, phase offsets as fractions of the soak.
  const auto start = std::chrono::steady_clock::now();
  auto sleep_until_fraction = [&](double fraction) {
    std::this_thread::sleep_until(
        start + std::chrono::milliseconds(
                    static_cast<int64_t>(duration_ms * fraction)));
  };

  sleep_until_fraction(0.10);
  std::printf("[chaos] arming socket-layer faults\n");
  FKD_CHECK_OK(faults.Configure(
      "net.accept:fail@1*3,net.send:torn@10*3,net.recv:fail@5*3,"
      "net.ready:fail@3*5,net.eventfd:fail@2*2"));

  sleep_until_fraction(0.30);
  std::printf("[chaos] replica 0 forced sick\n");
  FKD_CHECK_OK(faults.Configure("serve.replica0.batch:fail"));

  sleep_until_fraction(0.60);
  std::printf("[chaos] faults cleared; waiting for reinstatement\n");
  faults.Clear();

  load_thread.join();
  server.Shutdown();
  router.Stop();

  FKD_CHECK_OK(report.status());
  const fkd::net::LoadGenReport& r = report.value();
  std::printf("loadgen: %s\n", r.ToJson().c_str());

  const fkd::net::ServerStats sstats = server.Stats();
  const fkd::serve::RouterStats rstats = router.Stats();
  std::printf(
      "server: %llu classify frames, %llu ok, %llu error (%llu deadline "
      "shed), %llu dropped, %llu accept pauses\n",
      static_cast<unsigned long long>(sstats.classify_frames),
      static_cast<unsigned long long>(sstats.responses_ok),
      static_cast<unsigned long long>(sstats.responses_error),
      static_cast<unsigned long long>(sstats.deadline_shed),
      static_cast<unsigned long long>(sstats.responses_dropped),
      static_cast<unsigned long long>(sstats.accept_pauses));
  std::printf(
      "router: %llu submitted, %llu quarantines, %llu reinstatements, "
      "%llu probes, %llu rerouted\n",
      static_cast<unsigned long long>(rstats.submitted),
      static_cast<unsigned long long>(rstats.quarantines),
      static_cast<unsigned long long>(rstats.reinstatements),
      static_cast<unsigned long long>(rstats.probes),
      static_cast<unsigned long long>(rstats.rerouted));

  std::printf("gates:\n");
  Gate(sstats.classify_frames == sstats.responses_ok +
                                     sstats.responses_error +
                                     sstats.responses_dropped,
       "zero silent drops: classify_frames == ok + error + dropped");
  Gate(rstats.submitted ==
           rstats.cache_hits + rstats.primary_requests +
               rstats.canary_requests,
       "router accounting: submitted == cache_hits + primary + canary");
  Gate(rstats.quarantines >= 1, "sick replica was quarantined");
  Gate(rstats.reinstatements >= 1, "quarantined replica was reinstated");
  Gate(rstats.quarantined_now == 0, "no replica still quarantined at rest");
  Gate(r.ok > 0, "client made progress under chaos");
  Gate(r.io_errors + r.errors + r.shed + r.deadline_exceeded + r.ok > 0 &&
           r.connect_failures == 0,
       "every client-visible outcome classified, no connect failures");

  std::error_code ec;
  std::filesystem::remove_all(snapshot_dir, ec);

  if (g_failed) {
    std::printf("CHAOS DRILL FAILED\n");
    return 1;
  }
  std::printf("chaos drill passed\n");
  return 0;
}
