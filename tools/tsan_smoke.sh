#!/usr/bin/env bash
# ThreadSanitizer smoke job for the serving engine.
#
# Configures a dedicated build tree with -fsanitize=thread, builds the
# concurrency-sensitive test binaries, and runs every Serve*, Router*,
# Store*, Cache*, Fault*, Crash*, ThreadPool* and Compute* suite (plus the
# vocabulary concurrency test) under TSan via ctest. The Compute* suites
# exercise the shared intra-op pool from kernel fan-out, multi-width
# resizes, and the train-while-serve case where trainer and serving workers
# submit chunks concurrently; Router* covers the hot-swap stress (Submit
# racing Publish across 10 live swaps) and Cache* the sharded LRU under
# concurrent readers/writers. The observability suites (Histogram*,
# FlightRecorder*, StatsExporter*, concurrent registry updates) prove the
# lock-free instrument paths are race-free: many writer threads against a
# concurrent snapshot/export reader. The Net*/LoadGen* suites run the epoll
# front end (event loops + completion pump + client threads) and the
# multi-connection load generator under TSan; NetClient*/NetChaos* add the
# resilient client's I/O thread (submitters racing retries/hedges/timeouts)
# and the fault-injected socket paths, and Quarantine* races the health
# monitor's quarantine/reinstate transitions against live Submits. The
# Quant*/Tier* suites cover the quantized codecs and the compressed cold
# tier (including the 1-vs-4-thread determinism cases), and Budget* the
# memory-budgeted store's demote/promote transitions — including the
# hot-swap stress replayed under a tight budget. Any data race aborts the
# run with a non-zero exit code.
#
#   tools/tsan_smoke.sh [build-dir]   (default: build-tsan next to the repo root)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
  -DFKD_BUILD_BENCHMARKS=OFF \
  -DFKD_BUILD_EXAMPLES=OFF

cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target serve_test text_test fault_test crash_test compute_test \
           cache_test router_test obs_test net_test common_test quant_test

# halt_on_error: fail the job on the first race instead of logging past it.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R '^(Serve|Router|Store|Cache|ConsistentHash|Fault|Crash|ThreadPool|Compute|Histogram|FlightRecorder|StatsExporter|Net|LoadGen|Quarantine|Quant|Tier|Budget|RetryPolicy|HedgeTracker|Clock|RegistryTest\.Concurrent|VocabularyTest\.ConstLookups)'

echo "tsan smoke: OK"
