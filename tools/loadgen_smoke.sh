#!/usr/bin/env bash
# Tier-1 network round trip: fkd_server --demo + fkd_loadgen, seconds-scale.
#
# Boots the serving daemon on an ephemeral port with a self-trained demo
# model, waits for the port file, runs one short timed closed-loop round
# (plus a ping), requires zero client-visible errors, then SIGTERMs the
# server and asserts the graceful drain printed its no-silent-drop line.
#
#   tools/loadgen_smoke.sh <fkd_server> <fkd_loadgen>

set -euo pipefail

SERVER_BIN="$1"
LOADGEN_BIN="$2"

WORKDIR="$(mktemp -d)"
SERVER_LOG="${WORKDIR}/server.log"
PORT_FILE="${WORKDIR}/port"
SERVER_PID=""

cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

"${SERVER_BIN}" --demo --demo-articles=80 --port=0 \
  --snapshot="${WORKDIR}/snapshot" --port-file="${PORT_FILE}" \
  --loops=1 --replicas=1 --workers=1 --completion-threads=1 \
  >"${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

# Demo training takes a few seconds before the socket opens.
for _ in $(seq 1 120); do
  [[ -f "${PORT_FILE}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: server exited before listening"; cat "${SERVER_LOG}"; exit 1
  fi
  sleep 0.5
done
[[ -f "${PORT_FILE}" ]] || { echo "FAIL: no port file"; cat "${SERVER_LOG}"; exit 1; }
PORT="$(cat "${PORT_FILE}")"
echo "server up on port ${PORT}"

"${LOADGEN_BIN}" --port="${PORT}" --ping

"${LOADGEN_BIN}" --port="${PORT}" --connections=2 --window=2 \
  --duration-s=3 --warmup-s=1 --corpus=40 --expect-zero-errors \
  --json="${WORKDIR}/report.json"
grep -q '"achieved_qps"' "${WORKDIR}/report.json"

kill -TERM "${SERVER_PID}"
for _ in $(seq 1 60); do
  kill -0 "${SERVER_PID}" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "${SERVER_PID}" 2>/dev/null; then
  echo "FAIL: server did not drain after SIGTERM"; cat "${SERVER_LOG}"; exit 1
fi
wait "${SERVER_PID}" || { echo "FAIL: server exited non-zero"; cat "${SERVER_LOG}"; exit 1; }
SERVER_PID=""

grep -q "no accepted request was silently dropped" "${SERVER_LOG}" || {
  echo "FAIL: drain invariant line missing"; cat "${SERVER_LOG}"; exit 1
}

echo "loadgen smoke: OK"
