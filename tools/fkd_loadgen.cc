// Multi-connection load generator for fkd_server, speaking FKDN/1.
//
//   ./fkd_loadgen --port=7433 --connections=8 --duration-s=10
//   ./fkd_loadgen --port=7433 --open-qps=500 --duration-s=10
//   ./fkd_loadgen --port=7433 --sweep-connections=1,2,4,8 --json=out.json
//   ./fkd_loadgen --port=7433 --swap --swap-every-s=3   # hot-swap under load
//
// Closed loop (default): each connection keeps --window requests
// outstanding — measures sustainable throughput at that concurrency.
// --open-qps switches to an open loop sending on a fixed schedule, the
// honest way to measure latency under a target arrival rate.
//
// Sweeps run one timed round per value of the swept axis
// (--sweep-connections / --sweep-window / --sweep-canary, comma-separated)
// and emit a JSON array with hardware context (--json), the format
// committed as BENCH_server.json. --swap spawns a thread driving
// kSwapRequest control frames every --swap-every-s during the run;
// --expect-zero-errors makes the exit code assert that no request failed —
// the live hot-swap-under-load acceptance gate.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_hardware.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/generator.h"
#include "net/loadgen.h"

namespace {

std::vector<int64_t> ParseIntList(const std::string& text) {
  std::vector<int64_t> values;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (!token.empty()) values.push_back(std::atoll(token.c_str()));
    pos = comma + 1;
  }
  return values;
}

/// Builds the request corpus from the same synthetic distribution the demo
/// server trains on, so cache hit rates are realistic rather than 100%.
std::vector<fkd::net::ClassifyRequestMsg> BuildCorpus(size_t articles) {
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(articles, 1337));
  FKD_CHECK_OK(dataset.status());
  std::vector<fkd::net::ClassifyRequestMsg> corpus;
  corpus.reserve(dataset.value().articles.size());
  for (const auto& article : dataset.value().articles) {
    fkd::net::ClassifyRequestMsg msg;
    msg.text = article.text;
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddString("host", "127.0.0.1", "server address (numeric IPv4)");
  flags.AddInt("port", 7433, "server port");
  flags.AddInt("connections", 4, "client connections");
  flags.AddInt("window", 4, "closed-loop outstanding requests/connection");
  flags.AddDouble("open-qps", 0.0,
                  "open-loop aggregate request rate (0 = closed loop)");
  flags.AddInt("duration-s", 10, "measured seconds per round");
  flags.AddInt("warmup-s", 1, "warmup seconds excluded from the report");
  flags.AddInt("deadline-us", 0, "per-request engine deadline (0 = none)");
  flags.AddInt("timeout-us", 0,
               "client-side per-request budget, propagated to the server "
               "as an absolute deadline (0 = 80% of the drain timeout)");
  flags.AddInt("retries", 4, "max send attempts per request (>=1)");
  flags.AddInt("backoff-us", 1000, "base retry backoff, doubled per attempt");
  flags.AddInt("hedge-us", 0,
               "fixed hedge delay: resend still-pending requests on a "
               "second connection after this (0 = off)");
  flags.AddDouble("hedge-p", 0.0,
                  "adaptive hedge percentile, e.g. 0.99 hedges requests "
                  "slower than the observed p99 (0 = off)");
  flags.AddInt("corpus", 200, "distinct request bodies to cycle");
  flags.AddBool("unique", false,
                "salt every request so the score cache never hits "
                "(measures the engine-bound path)");
  flags.AddString("sweep-connections", "",
                  "comma-separated connection counts, one round each");
  flags.AddString("sweep-window", "",
                  "comma-separated window sizes, one round each");
  flags.AddString("sweep-canary", "",
                  "comma-separated canary permilles, one round each "
                  "(sends kCanaryRequest before the round)");
  flags.AddBool("swap", false,
                "drive hot-swaps through the run (--swap-every-s)");
  flags.AddInt("swap-every-s", 3, "seconds between swaps with --swap");
  flags.AddBool("expect-zero-errors", false,
                "exit non-zero if any request errored (swap-under-load gate)");
  flags.AddBool("ping", false, "one kPing round trip, print RTT, exit");
  flags.AddString("json", "", "write the rounds as a JSON report here");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  const std::string host = flags.GetString("host");
  const int port = static_cast<int>(flags.GetInt("port"));

  if (flags.GetBool("ping")) {
    auto rtt = fkd::net::Ping(host, port);
    FKD_CHECK_OK(rtt.status());
    std::printf("pong from %s:%d in %lld us\n", host.c_str(), port,
                static_cast<long long>(rtt.value()));
    return 0;
  }

  fkd::net::LoadGenOptions base;
  base.host = host;
  base.port = port;
  base.connections = static_cast<size_t>(flags.GetInt("connections"));
  base.window = static_cast<size_t>(flags.GetInt("window"));
  base.open_loop_qps = flags.GetDouble("open-qps");
  base.duration_ms = flags.GetInt("duration-s") * 1000;
  base.warmup_ms = flags.GetInt("warmup-s") * 1000;
  base.deadline_us = flags.GetInt("deadline-us");
  base.corpus = BuildCorpus(static_cast<size_t>(flags.GetInt("corpus")));
  base.unique_requests = flags.GetBool("unique");
  base.request_timeout_us = flags.GetInt("timeout-us");
  base.retry.max_attempts = static_cast<int>(flags.GetInt("retries"));
  base.retry.backoff_base_us = flags.GetInt("backoff-us");
  base.hedge.hedge_fixed_us = flags.GetInt("hedge-us");
  base.hedge.hedge_percentile = flags.GetDouble("hedge-p");

  // The sweep axis: exactly one of connections/window/canary, else a
  // single round with the base options.
  const std::vector<int64_t> sweep_connections =
      ParseIntList(flags.GetString("sweep-connections"));
  const std::vector<int64_t> sweep_window =
      ParseIntList(flags.GetString("sweep-window"));
  const std::vector<int64_t> sweep_canary =
      ParseIntList(flags.GetString("sweep-canary"));

  struct Round {
    std::string axis;
    int64_t value = 0;
    fkd::net::LoadGenReport report;
  };
  std::vector<Round> rounds;
  auto run_round = [&](const std::string& axis, int64_t value,
                       const fkd::net::LoadGenOptions& options) {
    std::printf("[%s=%lld] %s loop, %zu conns, window %zu%s...\n",
                axis.c_str(), static_cast<long long>(value),
                options.open_loop_qps > 0 ? "open" : "closed",
                options.connections, options.window,
                options.open_loop_qps > 0
                    ? fkd::StrFormat(", %.0f qps target",
                                     options.open_loop_qps)
                          .c_str()
                    : "");
    // Hot-swap driver: publishes a new version every swap-every-s for the
    // whole round; the acceptance gate is zero client-visible failures.
    std::atomic<bool> swapping{flags.GetBool("swap")};
    std::thread swapper;
    if (swapping.load()) {
      swapper = std::thread([&] {
        const int64_t every_ms = flags.GetInt("swap-every-s") * 1000;
        int64_t elapsed_ms = 0;
        while (swapping.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          elapsed_ms += 100;
          if (elapsed_ms < every_ms) continue;
          elapsed_ms = 0;
          auto version = fkd::net::RequestSwap(host, port);
          if (version.ok()) {
            std::printf("  hot-swapped to version %llu\n",
                        static_cast<unsigned long long>(version.value()));
          } else {
            std::fprintf(stderr, "  swap failed: %s\n",
                         version.status().ToString().c_str());
          }
        }
      });
    }
    auto report = fkd::net::RunLoadGen(options);
    swapping.store(false);
    if (swapper.joinable()) swapper.join();
    FKD_CHECK_OK(report.status());
    const fkd::net::LoadGenReport& r = report.value();
    std::printf("  %.1f qps sustained | ok %llu, shed %llu, errors %llu, "
                "deadline %llu | retries %llu, hedges %llu | "
                "p50 %.0f us, p99 %.0f us, p99.9 %.0f us\n",
                r.achieved_qps, static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.deadline_exceeded),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.hedges), r.p50_us,
                r.p99_us, r.p999_us);
    rounds.push_back({axis, value, r});
  };

  if (!sweep_connections.empty()) {
    for (int64_t value : sweep_connections) {
      fkd::net::LoadGenOptions options = base;
      options.connections = static_cast<size_t>(value);
      run_round("connections", value, options);
    }
  } else if (!sweep_window.empty()) {
    for (int64_t value : sweep_window) {
      fkd::net::LoadGenOptions options = base;
      options.window = static_cast<size_t>(value);
      run_round("window", value, options);
    }
  } else if (!sweep_canary.empty()) {
    for (int64_t value : sweep_canary) {
      auto canary = fkd::net::RequestCanary(
          host, port, static_cast<uint32_t>(value));
      if (!canary.ok()) {
        std::fprintf(stderr, "canary %lld permille failed: %s\n",
                     static_cast<long long>(value),
                     canary.status().ToString().c_str());
        return 1;
      }
      run_round("canary_permille", value, base);
    }
    // Leave the server canary-free.
    (void)fkd::net::RequestCanary(host, port, 0);
  } else {
    run_round("single", 0, base);
  }

  uint64_t total_errors = 0;
  for (const Round& round : rounds) {
    total_errors += round.report.errors + round.report.io_errors +
                    round.report.connect_failures +
                    round.report.deadline_exceeded;
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::string out = "{\n  \"bench\": \"server_loadgen\",\n  ";
    out += fkd::bench::HardwareContextJsonFields();
    out += ",\n  \"rounds\": [\n";
    for (size_t i = 0; i < rounds.size(); ++i) {
      out += fkd::StrFormat(
          "    {\"axis\": \"%s\", \"value\": %lld, \"report\": %s}%s\n",
          rounds[i].axis.c_str(), static_cast<long long>(rounds[i].value),
          rounds[i].report.ToJson().c_str(),
          i + 1 < rounds.size() ? "," : "");
    }
    out += "  ]\n}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    FKD_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("report written to %s\n", json_path.c_str());
  }

  if (flags.GetBool("expect-zero-errors") && total_errors != 0) {
    std::fprintf(stderr,
                 "FAILED: %llu client-visible errors (expected zero)\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  return 0;
}
