#!/usr/bin/env bash
# Sustained-load benchmark of the network front end -> BENCH_server.json.
#
# Boots fkd_server --demo on an ephemeral port, then drives timed
# fkd_loadgen rounds (each >= 10 s measured):
#   1. closed-loop connections sweep      — sustainable QPS vs concurrency
#   2. closed-loop window (batch) sweep   — QPS vs per-connection pipelining
#   3. canary-permille sweep              — cost of splitting traffic
#   4. open-loop round at a fixed rate    — honest latency under load
#   5. hot-swap-under-load round          — swaps every few seconds while a
#      closed loop runs; MUST finish with zero client-visible errors
# and assembles the per-round reports (each carrying hardware context)
# into one committed artifact.
#
#   tools/bench_server.sh [build-dir] [out.json]
#
# Environment: DURATION_S (default 10), OPEN_QPS (default 150).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OUT="${2:-${REPO_ROOT}/BENCH_server.json}"
DURATION_S="${DURATION_S:-10}"
OPEN_QPS="${OPEN_QPS:-150}"

SERVER_BIN="${BUILD_DIR}/tools/fkd_server"
LOADGEN_BIN="${BUILD_DIR}/tools/fkd_loadgen"
[[ -x "${SERVER_BIN}" && -x "${LOADGEN_BIN}" ]] || {
  echo "build fkd_server/fkd_loadgen first (cmake --build ${BUILD_DIR})"; exit 1
}

WORKDIR="$(mktemp -d)"
PORT_FILE="${WORKDIR}/port"
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -TERM "${SERVER_PID}" 2>/dev/null || true
    for _ in $(seq 1 40); do
      kill -0 "${SERVER_PID}" 2>/dev/null || break; sleep 0.5
    done
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

"${SERVER_BIN}" --demo --port=0 --snapshot="${WORKDIR}/snapshot" \
  --port-file="${PORT_FILE}" >"${WORKDIR}/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 240); do
  [[ -f "${PORT_FILE}" ]] && break
  kill -0 "${SERVER_PID}" 2>/dev/null || {
    echo "server died:"; cat "${WORKDIR}/server.log"; exit 1; }
  sleep 0.5
done
PORT="$(cat "${PORT_FILE}")"
echo "== server on port ${PORT}; ${DURATION_S}s per round =="

COMMON=(--port="${PORT}" --duration-s="${DURATION_S}" --warmup-s=2)

echo "== 1/5 closed-loop connections sweep =="
"${LOADGEN_BIN}" "${COMMON[@]}" --window=4 \
  --sweep-connections=1,2,4,8 --json="${WORKDIR}/connections.json"

echo "== 2/5 closed-loop window sweep (engine-bound, cache defeated) =="
"${LOADGEN_BIN}" "${COMMON[@]}" --connections=4 --unique \
  --sweep-window=1,4,16 --json="${WORKDIR}/window.json"

echo "== 3/5 canary-permille sweep =="
"${LOADGEN_BIN}" "${COMMON[@]}" --connections=4 --window=4 \
  --sweep-canary=0,100,250 --json="${WORKDIR}/canary.json"

echo "== 4/5 open-loop at ${OPEN_QPS} qps =="
"${LOADGEN_BIN}" "${COMMON[@]}" --connections=4 \
  --open-qps="${OPEN_QPS}" --json="${WORKDIR}/open.json"

echo "== 5/5 hot-swap under load (zero-error gate) =="
"${LOADGEN_BIN}" --port="${PORT}" --duration-s=$((DURATION_S + 2)) \
  --warmup-s=2 --connections=2 --window=4 --swap --swap-every-s=4 \
  --expect-zero-errors --json="${WORKDIR}/swap.json"

{
  echo '{'
  echo "  \"bench\": \"server_sustained_load\","
  echo "  \"protocol\": \"FKDN/1 over loopback TCP, demo model, ${DURATION_S}s measured per round\","
  echo '  "closed_loop_connections_sweep":'
  sed 's/^/  /' "${WORKDIR}/connections.json"
  echo '  ,"closed_loop_window_sweep":'
  sed 's/^/  /' "${WORKDIR}/window.json"
  echo '  ,"canary_permille_sweep":'
  sed 's/^/  /' "${WORKDIR}/canary.json"
  echo '  ,"open_loop":'
  sed 's/^/  /' "${WORKDIR}/open.json"
  echo '  ,"hot_swap_under_load":'
  sed 's/^/  /' "${WORKDIR}/swap.json"
  echo '}'
} > "${OUT}"

kill -TERM "${SERVER_PID}"
for _ in $(seq 1 60); do kill -0 "${SERVER_PID}" 2>/dev/null || break; sleep 0.5; done
wait "${SERVER_PID}" || { echo "server exited non-zero"; cat "${WORKDIR}/server.log"; exit 1; }
SERVER_PID=""
grep -q "no accepted request was silently dropped" "${WORKDIR}/server.log"

echo "wrote ${OUT}"
