#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer smoke job, mirroring
# tools/tsan_smoke.sh for memory errors instead of races.
#
# Configures a dedicated build tree with -fsanitize=address,undefined,
# builds the serving/concurrency test binaries, and runs the Serve*,
# Router*, Store*, Cache*, Fault*, Crash*, ThreadPool* and Compute* suites
# under ASan/UBSan via ctest, plus Quant*/Tier*/Budget* for the quantized
# codecs, the compressed cold tier, and the memory-budgeted store. Heap
# corruption, use-after-free (e.g. a retired model generation freed while
# an in-flight batch still reads it, or a demoted version's spill read past
# its mmap), out-of-bounds kernel or LZ-window indexing, or UB (signed
# overflow, bad shifts — the fp16 bit twiddling is all-shifts) aborts the
# run with a non-zero exit code.
#
#   tools/asan_smoke.sh [build-dir]   (default: build-asan next to the repo root)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  -DFKD_BUILD_BENCHMARKS=OFF \
  -DFKD_BUILD_EXAMPLES=OFF

cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target serve_test text_test fault_test crash_test compute_test \
           cache_test router_test net_test common_test quant_test

# detect_leaks=0: the shared test fixtures intentionally leak one static
# trained detector per process (train once, share across TESTs); leak
# checking would flag every such fixture instead of real bugs.
export ASAN_OPTIONS="detect_leaks=0 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1 ${UBSAN_OPTIONS:-}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R '^(Serve|Router|Store|Cache|ConsistentHash|Fault|Crash|ThreadPool|Compute|Net|LoadGen|Quarantine|Quant|Tier|Budget|RetryPolicy|HedgeTracker|Clock|VocabularyTest\.ConstLookups)'

echo "asan smoke: OK"
