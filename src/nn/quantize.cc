#include "nn/quantize.h"

#include <cmath>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace fkd {
namespace nn {

const char* TensorCodecName(TensorCodec codec) {
  switch (codec) {
    case TensorCodec::kFp32:
      return "fp32";
    case TensorCodec::kFp16:
      return "fp16";
    case TensorCodec::kInt8:
      return "int8";
  }
  return "unknown";
}

bool TensorCodecFromName(const std::string& name, TensorCodec* out) {
  if (name == "fp32") {
    *out = TensorCodec::kFp32;
  } else if (name == "fp16") {
    *out = TensorCodec::kFp16;
  } else if (name == "int8") {
    *out = TensorCodec::kInt8;
  } else {
    return false;
  }
  return true;
}

size_t TensorCodecBytesPerElement(TensorCodec codec) {
  switch (codec) {
    case TensorCodec::kFp32:
      return 4;
    case TensorCodec::kFp16:
      return 2;
    case TensorCodec::kInt8:
      return 1;
  }
  return 4;
}

// ---- fp16 --------------------------------------------------------------

uint16_t Fp16FromFloat(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exponent = (bits >> 23) & 0xffu;
  const uint32_t mantissa = bits & 0x7fffffu;

  if (exponent == 0xffu) {
    // Inf / NaN. A NaN keeps a non-zero mantissa (quiet bit forced so the
    // payload truncation cannot silently produce an infinity).
    if (mantissa == 0) return static_cast<uint16_t>(sign | 0x7c00u);
    return static_cast<uint16_t>(sign | 0x7c00u | 0x200u | (mantissa >> 13));
  }

  const int half_exponent = static_cast<int>(exponent) - 127 + 15;
  if (half_exponent >= 0x1f) {
    // Overflow: rounds to infinity.
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (half_exponent <= 0) {
    // Subnormal half (or underflow to zero). Below half the smallest
    // subnormal everything rounds to zero.
    if (half_exponent < -10) return static_cast<uint16_t>(sign);
    const uint32_t full = mantissa | 0x800000u;  // implicit leading 1
    const uint32_t shift = static_cast<uint32_t>(14 - half_exponent);
    uint32_t half_mantissa = full >> shift;
    const uint32_t remainder = full & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1u);
    // Round to nearest, ties to even.
    if (remainder > halfway ||
        (remainder == halfway && (half_mantissa & 1u))) {
      ++half_mantissa;  // may carry into the exponent — still correct
    }
    return static_cast<uint16_t>(sign | half_mantissa);
  }

  uint32_t half = sign | (static_cast<uint32_t>(half_exponent) << 10) |
                  (mantissa >> 13);
  const uint32_t remainder = mantissa & 0x1fffu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1u))) {
    // Mantissa carry may roll into the exponent; 65520 rounds to +inf this
    // way, which is the IEEE-correct result.
    ++half;
  }
  return static_cast<uint16_t>(half);
}

float Fp16ToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1fu;
  uint32_t mantissa = half & 0x3ffu;
  uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalise into a float with an explicit exponent.
      uint32_t shift = 0;
      while (!(mantissa & 0x400u)) {
        mantissa <<= 1;
        ++shift;
      }
      mantissa &= 0x3ffu;
      const uint32_t float_exponent = 127 - 15 - shift + 1;
      bits = sign | (float_exponent << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1fu) {
    bits = sign | 0x7f800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// ---- int8 --------------------------------------------------------------

Int8Params ChooseInt8Params(const float* values, size_t count) {
  Int8Params params;
  if (count == 0) return params;
  float min = values[0];
  float max = values[0];
  for (size_t i = 1; i < count; ++i) {
    if (values[i] < min) min = values[i];
    if (values[i] > max) max = values[i];
  }
  params.offset = static_cast<double>(min);
  // Double arithmetic: a FLT_MAX-wide range would overflow a float here.
  params.scale =
      (static_cast<double>(max) - static_cast<double>(min)) / 255.0;
  return params;
}

void QuantizeInt8(const float* values, size_t count, const Int8Params& params,
                  int8_t* out) {
  if (params.scale == 0.0) {
    // Constant tensor: every element is grid point -128 == offset.
    for (size_t i = 0; i < count; ++i) out[i] = -128;
    return;
  }
  const double inv_scale = 1.0 / params.scale;
  for (size_t i = 0; i < count; ++i) {
    const double steps =
        (static_cast<double>(values[i]) - params.offset) * inv_scale;
    long q = std::lround(steps) - 128;
    if (q < -128) q = -128;
    if (q > 127) q = 127;
    out[i] = static_cast<int8_t>(q);
  }
}

void DequantizeInt8(const int8_t* quantized, size_t count,
                    const Int8Params& params, float* out) {
  // THE dequant path: every int8 load in the library funnels through this
  // loop. Elements are independent (no accumulation order to vary), the
  // arithmetic is double then one narrowing per element, so the output is
  // a pure function of (stored bytes, params) — bitwise reproducible
  // across runs, platforms with IEEE doubles, and any thread count.
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<float>(
        params.scale * (static_cast<double>(quantized[i]) + 128.0) +
        params.offset);
  }
}

// ---- tensor-level helpers ----------------------------------------------

Tensor RoundTripThroughCodec(const Tensor& tensor, TensorCodec codec) {
  Tensor out = tensor;
  switch (codec) {
    case TensorCodec::kFp32:
      break;
    case TensorCodec::kFp16: {
      float* data = out.data();
      for (size_t i = 0; i < out.size(); ++i) {
        data[i] = Fp16ToFloat(Fp16FromFloat(data[i]));
      }
      break;
    }
    case TensorCodec::kInt8: {
      const Int8Params params = ChooseInt8Params(tensor.data(), tensor.size());
      std::vector<int8_t> quantized(tensor.size());
      QuantizeInt8(tensor.data(), tensor.size(), params, quantized.data());
      DequantizeInt8(quantized.data(), quantized.size(), params, out.data());
      break;
    }
  }
  return out;
}

}  // namespace nn
}  // namespace fkd
