#ifndef FKD_NN_QUANTIZE_H_
#define FKD_NN_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fkd {
namespace nn {

/// Weight encodings of the FKDW container. Values are persisted on disk
/// (FKDW v2 record dtype byte); append only.
enum class TensorCodec : uint8_t {
  kFp32 = 0,  ///< Verbatim float32 — the lossless default.
  kFp16 = 1,  ///< IEEE 754 binary16, round-to-nearest-even.
  kInt8 = 2,  ///< Per-tensor affine int8 (scale/zero-point).
};

/// Parses/prints the codec names used in snapshot configs and tools
/// ("fp32", "fp16", "int8").
const char* TensorCodecName(TensorCodec codec);
bool TensorCodecFromName(const std::string& name, TensorCodec* out);

// ---- fp16 --------------------------------------------------------------
//
// Scalar IEEE binary16 conversion with round-to-nearest-even, handling
// zero/denormal/infinity/NaN. Both directions are pure bit manipulation:
// no tables, no platform intrinsics, so encode and decode are bitwise
// deterministic everywhere. fp16 → fp32 is exact (every half value is
// representable as a float), which is why dequantised fp16 weights are a
// deterministic function of the stored bits alone.

uint16_t Fp16FromFloat(float value);
float Fp16ToFloat(uint16_t half);

// ---- int8 --------------------------------------------------------------
//
// Per-tensor affine quantisation. The stored parameters are the real-axis
// affine map of the int8 grid:
//
//   dequant(q) = float( scale * (q + 128) + offset )
//
// with q in [-128, 127], offset = min(tensor) and scale = range / 255
// (computed in double so FLT_MAX-wide ranges cannot overflow). This is the
// classic scale/zero-point form with the zero point expressed on the real
// axis; a constant tensor degenerates to scale == 0 and every element
// dequantises to exactly `offset`.
//
// Quantisation rounds to nearest (ties away from zero via std::lround);
// the max-abs reconstruction error is bounded by scale/2 plus one float
// rounding (≤ half an ulp of the reconstructed value). Dequantisation is
// a pure element-wise map evaluated in double then narrowed once — the
// single deterministic path every load takes, independent of thread count.

struct Int8Params {
  double scale = 0.0;   ///< Grid step on the real axis (0 = constant tensor).
  double offset = 0.0;  ///< Real value of grid point q == -128.
};

/// Chooses the affine grid covering [min, max] of `values`.
Int8Params ChooseInt8Params(const float* values, size_t count);

/// Quantises `count` floats onto the grid. Deterministic; elements are
/// independent (no accumulation), so the result is identical at any
/// thread count by construction.
void QuantizeInt8(const float* values, size_t count, const Int8Params& params,
                  int8_t* out);

/// Reverses QuantizeInt8 through the one deterministic dequant path.
void DequantizeInt8(const int8_t* quantized, size_t count,
                    const Int8Params& params, float* out);

// ---- tensor-level helpers (tests, benches) -----------------------------

/// Round-trips `tensor` through the given lossy codec (kFp32 returns a
/// copy). This is exactly what an export-then-load of the codec produces.
Tensor RoundTripThroughCodec(const Tensor& tensor, TensorCodec codec);

/// Encoded payload bytes per element of a codec (4, 2, 1).
size_t TensorCodecBytesPerElement(TensorCodec codec);

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_QUANTIZE_H_
