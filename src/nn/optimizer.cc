#include "nn/optimizer.h"

#include <cmath>

#include "tensor/ops.h"

namespace fkd {
namespace nn {

void Optimizer::ZeroGrad() {
  for (auto& p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> parameters, float learning_rate,
         float momentum, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(parameters_.size());
    for (const auto& p : parameters_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    autograd::Variable& p = parameters_[i];
    const Tensor& g = p.grad();
    if (g.size() == 0) continue;  // Parameter unused in this graph.
    Tensor& value = p.mutable_value();
    if (momentum_ > 0.0f) {
      Tensor& v = velocity_[i];
      for (size_t j = 0; j < value.size(); ++j) {
        const float grad_j = g[j] + weight_decay_ * value[j];
        v[j] = momentum_ * v[j] + grad_j;
        value[j] -= learning_rate_ * v[j];
      }
    } else {
      for (size_t j = 0; j < value.size(); ++j) {
        const float grad_j = g[j] + weight_decay_ * value[j];
        value[j] -= learning_rate_ * grad_j;
      }
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> parameters, float learning_rate,
           float beta1, float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const auto& p : parameters_) {
    first_moment_.emplace_back(p.value().shape());
    second_moment_.emplace_back(p.value().shape());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    autograd::Variable& p = parameters_[i];
    const Tensor& g = p.grad();
    if (g.size() == 0) continue;
    Tensor& value = p.mutable_value();
    Tensor& m = first_moment_[i];
    Tensor& v = second_moment_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      const float grad_j = g[j] + weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad_j;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad_j * grad_j;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

AdaGrad::AdaGrad(std::vector<autograd::Variable> parameters,
                 float learning_rate, float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      epsilon_(epsilon) {
  accumulated_.reserve(parameters_.size());
  for (const auto& p : parameters_) accumulated_.emplace_back(p.value().shape());
}

void AdaGrad::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    autograd::Variable& p = parameters_[i];
    const Tensor& g = p.grad();
    if (g.size() == 0) continue;
    Tensor& value = p.mutable_value();
    Tensor& acc = accumulated_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      acc[j] += g[j] * g[j];
      value[j] -= learning_rate_ * g[j] / (std::sqrt(acc[j]) + epsilon_);
    }
  }
}

float ClipGradNorm(const std::vector<autograd::Variable>& parameters,
                   float max_norm) {
  FKD_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const auto& p : parameters) {
    const Tensor& g = p.grad();
    for (size_t j = 0; j < g.size(); ++j) {
      total_sq += static_cast<double>(g[j]) * g[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (const auto& p : parameters) {
      Tensor* g = p.node()->mutable_grad();
      ScaleInPlace(scale, g);
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace fkd
