#include "nn/optimizer.h"

#include <cmath>

#include "common/string_util.h"
#include "tensor/ops.h"

namespace fkd {
namespace nn {

namespace {

// Copies `state.slots` into `slots` after verifying count and shapes;
// shared by every concrete optimiser's SetState.
Status RestoreSlots(const OptimizerState& state, const char* optimizer_name,
                    std::vector<Tensor>* slots) {
  if (state.slots.size() != slots->size()) {
    return Status::InvalidArgument(
        StrFormat("%s state has %zu slots, optimizer expects %zu",
                  optimizer_name, state.slots.size(), slots->size()));
  }
  for (size_t i = 0; i < slots->size(); ++i) {
    if (state.slots[i].shape() != (*slots)[i].shape()) {
      return Status::InvalidArgument(
          StrFormat("%s state slot %zu has the wrong shape", optimizer_name, i));
    }
  }
  for (size_t i = 0; i < slots->size(); ++i) (*slots)[i] = state.slots[i];
  return Status::OK();
}

}  // namespace

void Optimizer::ZeroGrad() {
  for (auto& p : parameters_) p.ZeroGrad();
}

Status Optimizer::SetState(const OptimizerState& state) {
  if (state.step_count != 0 || !state.slots.empty()) {
    return Status::InvalidArgument(
        "stateless optimizer cannot restore a non-empty state");
  }
  return Status::OK();
}

Sgd::Sgd(std::vector<autograd::Variable> parameters, float learning_rate,
         float momentum, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(parameters_.size());
    for (const auto& p : parameters_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    autograd::Variable& p = parameters_[i];
    const Tensor& g = p.grad();
    if (g.size() == 0) continue;  // Parameter unused in this graph.
    Tensor& value = p.mutable_value();
    if (momentum_ > 0.0f) {
      Tensor& v = velocity_[i];
      for (size_t j = 0; j < value.size(); ++j) {
        const float grad_j = g[j] + weight_decay_ * value[j];
        v[j] = momentum_ * v[j] + grad_j;
        value[j] -= learning_rate_ * v[j];
      }
    } else {
      for (size_t j = 0; j < value.size(); ++j) {
        const float grad_j = g[j] + weight_decay_ * value[j];
        value[j] -= learning_rate_ * grad_j;
      }
    }
  }
}

OptimizerState Sgd::GetState() const {
  OptimizerState state;
  state.slots = velocity_;
  return state;
}

Status Sgd::SetState(const OptimizerState& state) {
  if (state.step_count != 0) {
    return Status::InvalidArgument("Sgd state does not carry a step count");
  }
  return RestoreSlots(state, "Sgd", &velocity_);
}

Adam::Adam(std::vector<autograd::Variable> parameters, float learning_rate,
           float beta1, float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const auto& p : parameters_) {
    first_moment_.emplace_back(p.value().shape());
    second_moment_.emplace_back(p.value().shape());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    autograd::Variable& p = parameters_[i];
    const Tensor& g = p.grad();
    if (g.size() == 0) continue;
    Tensor& value = p.mutable_value();
    Tensor& m = first_moment_[i];
    Tensor& v = second_moment_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      const float grad_j = g[j] + weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad_j;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad_j * grad_j;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

OptimizerState Adam::GetState() const {
  OptimizerState state;
  state.step_count = step_count_;
  state.slots.reserve(first_moment_.size() + second_moment_.size());
  for (const Tensor& m : first_moment_) state.slots.push_back(m);
  for (const Tensor& v : second_moment_) state.slots.push_back(v);
  return state;
}

Status Adam::SetState(const OptimizerState& state) {
  if (state.slots.size() != first_moment_.size() + second_moment_.size()) {
    return Status::InvalidArgument(
        StrFormat("Adam state has %zu slots, optimizer expects %zu",
                  state.slots.size(),
                  first_moment_.size() + second_moment_.size()));
  }
  OptimizerState first;
  OptimizerState second;
  first.slots.assign(state.slots.begin(),
                     state.slots.begin() +
                         static_cast<ptrdiff_t>(first_moment_.size()));
  second.slots.assign(state.slots.begin() +
                          static_cast<ptrdiff_t>(first_moment_.size()),
                      state.slots.end());
  FKD_RETURN_NOT_OK(RestoreSlots(first, "Adam", &first_moment_));
  FKD_RETURN_NOT_OK(RestoreSlots(second, "Adam", &second_moment_));
  step_count_ = state.step_count;
  return Status::OK();
}

AdaGrad::AdaGrad(std::vector<autograd::Variable> parameters,
                 float learning_rate, float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      epsilon_(epsilon) {
  accumulated_.reserve(parameters_.size());
  for (const auto& p : parameters_) accumulated_.emplace_back(p.value().shape());
}

void AdaGrad::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    autograd::Variable& p = parameters_[i];
    const Tensor& g = p.grad();
    if (g.size() == 0) continue;
    Tensor& value = p.mutable_value();
    Tensor& acc = accumulated_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      acc[j] += g[j] * g[j];
      value[j] -= learning_rate_ * g[j] / (std::sqrt(acc[j]) + epsilon_);
    }
  }
}

OptimizerState AdaGrad::GetState() const {
  OptimizerState state;
  state.slots = accumulated_;
  return state;
}

Status AdaGrad::SetState(const OptimizerState& state) {
  if (state.step_count != 0) {
    return Status::InvalidArgument("AdaGrad state does not carry a step count");
  }
  return RestoreSlots(state, "AdaGrad", &accumulated_);
}

float ClipGradNorm(const std::vector<autograd::Variable>& parameters,
                   float max_norm) {
  FKD_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const auto& p : parameters) {
    const Tensor& g = p.grad();
    for (size_t j = 0; j < g.size(); ++j) {
      total_sq += static_cast<double>(g[j]) * g[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (const auto& p : parameters) {
      Tensor* g = p.node()->mutable_grad();
      ScaleInPlace(scale, g);
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace fkd
