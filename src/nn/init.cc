#include "nn/init.h"

#include <cmath>

namespace fkd {
namespace nn {

Tensor XavierUniform(size_t fan_in, size_t fan_out, Rng* rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(fan_in, fan_out, rng, -bound, bound);
}

Tensor HeNormal(size_t fan_in, size_t fan_out, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Randn(fan_in, fan_out, rng, 0.0f, stddev);
}

Tensor UniformInit(size_t rows, size_t cols, float scale, Rng* rng) {
  return Tensor::Rand(rows, cols, rng, -scale, scale);
}

}  // namespace nn
}  // namespace fkd
