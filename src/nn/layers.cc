#include "nn/layers.h"

#include <algorithm>

#include "nn/init.h"

namespace fkd {
namespace nn {

namespace ag = ::fkd::autograd;

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng, bool with_bias)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(XavierUniform(in_dim, out_dim, rng), /*requires_grad=*/true,
              "linear/weight") {
  if (with_bias) {
    bias_ = ag::Variable(Tensor(1, out_dim), /*requires_grad=*/true,
                         "linear/bias");
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  ag::Variable out = ag::MatMul(x, weight_);
  if (bias_.defined()) out = ag::AddRowBroadcast(out, bias_);
  return out;
}

void Linear::CollectParameters(const std::string& prefix,
                               std::vector<NamedParameter>* out) const {
  out->push_back({JoinName(prefix, "weight"), weight_});
  if (bias_.defined()) out->push_back({JoinName(prefix, "bias"), bias_});
}

Embedding::Embedding(size_t vocab_size, size_t dim, Rng* rng)
    : vocab_size_(vocab_size),
      dim_(dim),
      table_(UniformInit(vocab_size, dim, 0.1f, rng), /*requires_grad=*/true,
             "embedding/table") {}

ag::Variable Embedding::Forward(const std::vector<int32_t>& ids) const {
  return ag::GatherRows(table_, ids);
}

void Embedding::CollectParameters(const std::string& prefix,
                                  std::vector<NamedParameter>* out) const {
  out->push_back({JoinName(prefix, "table"), table_});
}

const char* RnnCellKindName(RnnCellKind kind) {
  switch (kind) {
    case RnnCellKind::kBasic:
      return "basic";
    case RnnCellKind::kGru:
      return "gru";
    case RnnCellKind::kLstm:
      return "lstm";
  }
  return "?";
}

BasicRnnCell::BasicRnnCell(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      input_map_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      hidden_map_(hidden_dim, hidden_dim, rng, /*with_bias=*/false) {}

ag::Variable BasicRnnCell::Step(const ag::Variable& x,
                                const ag::Variable& state) const {
  return ag::Tanh(ag::Add(input_map_.Forward(x), hidden_map_.Forward(state)));
}

void BasicRnnCell::CollectParameters(const std::string& prefix,
                                     std::vector<NamedParameter>* out) const {
  input_map_.CollectParameters(JoinName(prefix, "input"), out);
  hidden_map_.CollectParameters(JoinName(prefix, "hidden"), out);
}

GruCell::GruCell(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      update_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      update_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false),
      reset_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      reset_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false),
      cand_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      cand_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false) {}

ag::Variable GruCell::Step(const ag::Variable& x,
                           const ag::Variable& h) const {
  ag::Variable z = ag::Sigmoid(ag::Add(update_x_.Forward(x), update_h_.Forward(h)));
  ag::Variable r = ag::Sigmoid(ag::Add(reset_x_.Forward(x), reset_h_.Forward(h)));
  ag::Variable candidate =
      ag::Tanh(ag::Add(cand_x_.Forward(x), cand_h_.Forward(ag::Mul(r, h))));
  // h' = (1 - z) (*) h + z (*) c
  return ag::Add(ag::Mul(ag::OneMinus(z), h), ag::Mul(z, candidate));
}

void GruCell::CollectParameters(const std::string& prefix,
                                std::vector<NamedParameter>* out) const {
  update_x_.CollectParameters(JoinName(prefix, "update_x"), out);
  update_h_.CollectParameters(JoinName(prefix, "update_h"), out);
  reset_x_.CollectParameters(JoinName(prefix, "reset_x"), out);
  reset_h_.CollectParameters(JoinName(prefix, "reset_h"), out);
  cand_x_.CollectParameters(JoinName(prefix, "cand_x"), out);
  cand_h_.CollectParameters(JoinName(prefix, "cand_h"), out);
}

LstmCell::LstmCell(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      in_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      in_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false),
      forget_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      forget_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false),
      out_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      out_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false),
      cand_x_(input_dim, hidden_dim, rng, /*with_bias=*/true),
      cand_h_(hidden_dim, hidden_dim, rng, /*with_bias=*/false) {
  // Standard trick: initialise the forget-gate bias to +1 so early training
  // retains cell state.
  std::vector<NamedParameter> params;
  forget_x_.CollectParameters("f", &params);
  params[1].variable.mutable_value().Fill(1.0f);
}

ag::Variable LstmCell::Step(const ag::Variable& x,
                            const ag::Variable& state) const {
  const ag::Variable h = ag::SliceCols(state, 0, hidden_dim_);
  const ag::Variable c = ag::SliceCols(state, hidden_dim_, hidden_dim_);
  const ag::Variable i =
      ag::Sigmoid(ag::Add(in_x_.Forward(x), in_h_.Forward(h)));
  const ag::Variable f =
      ag::Sigmoid(ag::Add(forget_x_.Forward(x), forget_h_.Forward(h)));
  const ag::Variable o =
      ag::Sigmoid(ag::Add(out_x_.Forward(x), out_h_.Forward(h)));
  const ag::Variable g =
      ag::Tanh(ag::Add(cand_x_.Forward(x), cand_h_.Forward(h)));
  const ag::Variable c_next = ag::Add(ag::Mul(f, c), ag::Mul(i, g));
  const ag::Variable h_next = ag::Mul(o, ag::Tanh(c_next));
  return ag::ConcatCols({h_next, c_next});
}

ag::Variable LstmCell::Output(const ag::Variable& state) const {
  return ag::SliceCols(state, 0, hidden_dim_);
}

void LstmCell::CollectParameters(const std::string& prefix,
                                 std::vector<NamedParameter>* out) const {
  in_x_.CollectParameters(JoinName(prefix, "in_x"), out);
  in_h_.CollectParameters(JoinName(prefix, "in_h"), out);
  forget_x_.CollectParameters(JoinName(prefix, "forget_x"), out);
  forget_h_.CollectParameters(JoinName(prefix, "forget_h"), out);
  out_x_.CollectParameters(JoinName(prefix, "out_x"), out);
  out_h_.CollectParameters(JoinName(prefix, "out_h"), out);
  cand_x_.CollectParameters(JoinName(prefix, "cand_x"), out);
  cand_h_.CollectParameters(JoinName(prefix, "cand_h"), out);
}

std::unique_ptr<RecurrentCell> MakeRecurrentCell(RnnCellKind kind,
                                                 size_t input_dim,
                                                 size_t hidden_dim, Rng* rng) {
  switch (kind) {
    case RnnCellKind::kBasic:
      return std::make_unique<BasicRnnCell>(input_dim, hidden_dim, rng);
    case RnnCellKind::kGru:
      return std::make_unique<GruCell>(input_dim, hidden_dim, rng);
    case RnnCellKind::kLstm:
      return std::make_unique<LstmCell>(input_dim, hidden_dim, rng);
  }
  FKD_CHECK(false) << "unknown cell kind";
  return nullptr;
}

RecurrentEncoder::RecurrentEncoder(size_t vocab_size, size_t embed_dim,
                                   size_t hidden_dim, Rng* rng,
                                   SequencePooling pooling,
                                   RnnCellKind cell_kind)
    : embedding_(vocab_size, embed_dim, rng),
      cell_kind_(cell_kind),
      cell_(MakeRecurrentCell(cell_kind, embed_dim, hidden_dim, rng)),
      pooling_(pooling) {}

ag::Variable RecurrentEncoder::Forward(
    const std::vector<std::vector<int32_t>>& sequences,
    size_t max_steps) const {
  const size_t n = sequences.size();
  FKD_CHECK_GT(n, 0u);
  size_t steps = max_steps;
  if (steps == 0) {
    for (const auto& seq : sequences) steps = std::max(steps, seq.size());
  }
  FKD_CHECK_GT(steps, 0u) << "all sequences empty";

  ag::Variable state = cell_->InitialState(n);
  ag::Variable pooled;  // For kSumStates.
  for (size_t t = 0; t < steps; ++t) {
    // Build step-t token batch; padding gets id 0 but a zero mask so the
    // looked-up embedding never influences the state.
    std::vector<int32_t> step_ids(n, 0);
    std::vector<float> mask(n, 0.0f);
    std::vector<float> inverse_mask(n, 1.0f);
    bool any_live = false;
    for (size_t i = 0; i < n; ++i) {
      if (t < sequences[i].size() && sequences[i][t] >= 0) {
        step_ids[i] = sequences[i][t];
        mask[i] = 1.0f;
        inverse_mask[i] = 0.0f;
        any_live = true;
      }
    }
    if (!any_live) break;  // All remaining steps are padding.

    ag::Variable x = ag::ScaleRows(embedding_.Forward(step_ids), mask);
    ag::Variable state_new = cell_->Step(x, state);
    // Padded rows keep their previous state (both h and any cell state).
    state = ag::Add(ag::ScaleRows(state_new, mask),
                    ag::ScaleRows(state, inverse_mask));
    if (pooling_ == SequencePooling::kSumStates) {
      ag::Variable contribution = ag::ScaleRows(cell_->Output(state), mask);
      pooled = pooled.defined() ? ag::Add(pooled, contribution) : contribution;
    }
  }
  if (pooling_ == SequencePooling::kSumStates) {
    return pooled.defined() ? pooled : cell_->Output(state);
  }
  return cell_->Output(state);
}

void RecurrentEncoder::CollectParameters(
    const std::string& prefix, std::vector<NamedParameter>* out) const {
  embedding_.CollectParameters(JoinName(prefix, "embedding"), out);
  cell_->CollectParameters(
      JoinName(prefix, RnnCellKindName(cell_kind_)), out);
}

}  // namespace nn
}  // namespace fkd
