#include "nn/serialize.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>

#include "common/file_io.h"
#include "common/mmap_file.h"
#include "common/string_util.h"

namespace fkd {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x464B4457;  // "FKDW"
constexpr uint32_t kVersion = 1;           // fp32-only records
constexpr uint32_t kVersionEncoded = 2;    // records carry a dtype byte
constexpr uint64_t kMaxElements = 1ull << 36;

std::string ShapeString(const std::vector<size_t>& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += " x ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked cursor over an in-memory FKDW image.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : cursor_(static_cast<const uint8_t*>(data)), remaining_(size) {}

  bool Read(void* out, size_t n) {
    if (n > remaining_) return false;
    std::memcpy(out, cursor_, n);
    cursor_ += n;
    remaining_ -= n;
    return true;
  }

  template <typename T>
  bool ReadPod(T* value) {
    return Read(value, sizeof(T));
  }

  /// Borrows `n` bytes from the image without copying (valid while the
  /// image is). Null when out of bounds.
  const uint8_t* Borrow(size_t n) {
    if (n > remaining_) return nullptr;
    const uint8_t* at = cursor_;
    cursor_ += n;
    remaining_ -= n;
    return at;
  }

  size_t remaining() const { return remaining_; }

 private:
  const uint8_t* cursor_;
  size_t remaining_;
};

/// Header chunk followed by one chunk per tensor — the byte layout of the
/// file; writers append chunk by chunk (fault-injectable record
/// boundaries), the image builder concatenates them.
std::vector<std::string> BuildChunks(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    TensorCodec codec) {
  std::vector<std::string> chunks;
  chunks.reserve(tensors.size() + 1);
  std::string header;
  AppendPod(&header, kMagic);
  AppendPod(&header,
            codec == TensorCodec::kFp32 ? kVersion : kVersionEncoded);
  AppendPod(&header, static_cast<uint32_t>(tensors.size()));
  chunks.push_back(std::move(header));
  for (const auto& [name, tensor] : tensors) {
    FKD_CHECK(tensor != nullptr);
    std::string record;
    AppendPod(&record, static_cast<uint32_t>(name.size()));
    record.append(name);
    if (codec != TensorCodec::kFp32) {
      AppendPod(&record, static_cast<uint8_t>(codec));
    }
    AppendPod(&record, static_cast<uint32_t>(tensor->rank()));
    for (size_t dim : tensor->shape()) {
      AppendPod(&record, static_cast<uint64_t>(dim));
    }
    const size_t count = tensor->size();
    const float* values = tensor->data();
    switch (codec) {
      case TensorCodec::kFp32:
        record.append(reinterpret_cast<const char*>(values),
                      count * sizeof(float));
        break;
      case TensorCodec::kFp16:
        for (size_t i = 0; i < count; ++i) {
          AppendPod(&record, Fp16FromFloat(values[i]));
        }
        break;
      case TensorCodec::kInt8: {
        const Int8Params params = ChooseInt8Params(values, count);
        AppendPod(&record, params.scale);
        AppendPod(&record, params.offset);
        std::vector<int8_t> quantized(count);
        QuantizeInt8(values, count, params, quantized.data());
        record.append(reinterpret_cast<const char*>(quantized.data()), count);
        break;
      }
    }
    chunks.push_back(std::move(record));
  }
  return chunks;
}

}  // namespace

Status SaveTensors(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    const std::string& path) {
  return SaveTensorsEncoded(tensors, path, TensorCodec::kFp32);
}

Status SaveTensorsEncoded(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    const std::string& path, TensorCodec codec) {
  // One fault-injectable, fsynced write per record through the durable file
  // shim: the header first, then each tensor, so crash/ENOSPC tests can
  // target any point of the weight file. kFp32 emits the v1 layout
  // byte-identically to every earlier release.
  FKD_ASSIGN_OR_RETURN(FileWriter out, FileWriter::Open(path));
  for (const std::string& chunk : BuildChunks(tensors, codec)) {
    FKD_RETURN_NOT_OK(out.Append(chunk));
  }
  return out.Close();
}

std::string EncodeTensorsImage(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    TensorCodec codec) {
  std::string image;
  for (const std::string& chunk : BuildChunks(tensors, codec)) {
    image.append(chunk);
  }
  return image;
}

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveParametersEncoded(module, path, TensorCodec::kFp32);
}

Status SaveParametersEncoded(const Module& module, const std::string& path,
                             TensorCodec codec) {
  std::vector<NamedParameter> params;
  module.CollectParameters("", &params);
  std::vector<std::pair<std::string, const Tensor*>> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.emplace_back(p.name, &p.variable.value());
  return SaveTensorsEncoded(tensors, path, codec);
}

Result<std::vector<std::pair<std::string, Tensor>>> DecodeTensors(
    const void* data, size_t size, const std::string& origin) {
  ByteReader in(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!in.ReadPod(&magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + origin);
  }
  if (!in.ReadPod(&version) ||
      (version != kVersion && version != kVersionEncoded)) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }
  if (!in.ReadPod(&count)) return Status::Corruption("truncated header");

  std::vector<std::pair<std::string, Tensor>> records;
  std::map<std::string, size_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!in.ReadPod(&name_len) || name_len > (1u << 20)) {
      return Status::Corruption("bad parameter name length");
    }
    std::string name(name_len, '\0');
    if (!in.Read(name.data(), name_len)) {
      return Status::Corruption("truncated parameter name");
    }
    TensorCodec codec = TensorCodec::kFp32;
    if (version == kVersionEncoded) {
      uint8_t dtype = 0;
      if (!in.ReadPod(&dtype) ||
          dtype > static_cast<uint8_t>(TensorCodec::kInt8)) {
        return Status::Corruption("bad dtype for " + name);
      }
      codec = static_cast<TensorCodec>(dtype);
    }
    uint32_t rank = 0;
    if (!in.ReadPod(&rank) || rank > 8) {
      return Status::Corruption("bad parameter rank for " + name);
    }
    std::vector<size_t> shape(rank);
    uint64_t total = rank == 0 ? 0 : 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!in.ReadPod(&dim) || dim > (1ull << 32)) {
        return Status::Corruption("bad dimension for " + name);
      }
      if (dim != 0 && total > kMaxElements / dim) {
        return Status::Corruption("oversized tensor " + name);
      }
      shape[d] = static_cast<size_t>(dim);
      total *= dim;
    }
    const size_t elements = static_cast<size_t>(total);
    Tensor t(shape);
    switch (codec) {
      case TensorCodec::kFp32: {
        if (!in.Read(t.data(), elements * sizeof(float))) {
          return Status::Corruption("truncated data for " + name);
        }
        break;
      }
      case TensorCodec::kFp16: {
        const uint8_t* halves = in.Borrow(elements * sizeof(uint16_t));
        if (halves == nullptr) {
          return Status::Corruption("truncated fp16 data for " + name);
        }
        float* out = t.data();
        for (size_t e = 0; e < elements; ++e) {
          uint16_t h;
          std::memcpy(&h, halves + e * sizeof(uint16_t), sizeof(h));
          out[e] = Fp16ToFloat(h);
        }
        break;
      }
      case TensorCodec::kInt8: {
        Int8Params params;
        if (!in.ReadPod(&params.scale) || !in.ReadPod(&params.offset)) {
          return Status::Corruption("truncated int8 params for " + name);
        }
        if (!(params.scale >= 0.0) || !std::isfinite(params.scale) ||
            !std::isfinite(params.offset)) {
          return Status::Corruption("invalid int8 params for " + name);
        }
        const uint8_t* bytes = in.Borrow(elements);
        if (bytes == nullptr) {
          return Status::Corruption("truncated int8 data for " + name);
        }
        DequantizeInt8(reinterpret_cast<const int8_t*>(bytes), elements,
                       params, t.data());
        break;
      }
    }
    if (!seen.emplace(name, i).second) {
      return Status::Corruption("duplicate parameter " + name);
    }
    records.emplace_back(std::move(name), std::move(t));
  }
  // Anything after the declared records is not ours: flag the trailing
  // garbage instead of silently ignoring a half-overwritten file.
  if (in.remaining() != 0) {
    return Status::Corruption("trailing bytes after last record in " + origin);
  }
  return records;
}

Result<std::vector<std::pair<std::string, Tensor>>> LoadTensors(
    const std::string& path) {
  // Weight files are parsed out of an mmap'd view rather than a heap
  // buffer: cold-tier promotions read straight from the page cache and
  // never double-buffer the file.
  FKD_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  return DecodeTensors(file.data(), file.size(), path);
}

namespace {

Status ApplyRecords(Module* module,
                    std::vector<std::pair<std::string, Tensor>> records,
                    const std::string& path) {
  std::map<std::string, Tensor> loaded;
  for (auto& [name, tensor] : records) {
    loaded.emplace(std::move(name), std::move(tensor));
  }

  std::vector<NamedParameter> params;
  module->CollectParameters("", &params);
  if (params.size() != loaded.size()) {
    // Name the first parameter present on only one side so the caller can
    // see *which* architecture drifted, not just that the counts differ.
    std::string detail;
    for (const auto& p : params) {
      if (loaded.count(p.name) == 0) {
        detail = "; module parameter '" + p.name + "' is not in the file";
        break;
      }
    }
    if (detail.empty()) {
      std::map<std::string, Tensor> extra = loaded;
      for (const auto& p : params) extra.erase(p.name);
      if (!extra.empty()) {
        detail = "; file parameter '" + extra.begin()->first +
                 "' is not in the module";
      }
    }
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch loading %s: module has %zu, "
                  "file has %zu%s",
                  path.c_str(), params.size(), loaded.size(), detail.c_str()));
  }
  for (auto& p : params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::InvalidArgument(
          StrFormat("%s is missing parameter '%s' expected by the module",
                    path.c_str(), p.name.c_str()));
    }
    if (it->second.shape() != p.variable.value().shape()) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for parameter '%s': module expects %s, %s has %s",
          p.name.c_str(), ShapeString(p.variable.value().shape()).c_str(),
          path.c_str(), ShapeString(it->second.shape()).c_str()));
    }
    p.variable.mutable_value() = it->second;
  }
  return Status::OK();
}

}  // namespace

Status LoadParameters(Module* module, const std::string& path) {
  FKD_CHECK(module != nullptr);
  FKD_ASSIGN_OR_RETURN(auto records, LoadTensors(path));
  return ApplyRecords(module, std::move(records), path);
}

Status LoadParametersFromImage(Module* module, const void* data, size_t size,
                               const std::string& origin) {
  FKD_CHECK(module != nullptr);
  FKD_ASSIGN_OR_RETURN(auto records, DecodeTensors(data, size, origin));
  return ApplyRecords(module, std::move(records), origin);
}

}  // namespace nn
}  // namespace fkd
