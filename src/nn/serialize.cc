#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace fkd {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x464B4457;  // "FKDW"
constexpr uint32_t kVersion = 1;

std::string ShapeString(const std::vector<size_t>& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += " x ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::vector<NamedParameter> params;
  module.CollectParameters("", &params);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(params.size()));
  for (const auto& p : params) {
    WritePod(out, static_cast<uint32_t>(p.name.size()));
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const Tensor& t = p.variable.value();
    WritePod(out, static_cast<uint32_t>(t.rank()));
    for (size_t dim : t.shape()) WritePod(out, static_cast<uint64_t>(dim));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  FKD_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }
  if (!ReadPod(in, &count)) return Status::Corruption("truncated header");

  std::map<std::string, Tensor> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > (1u << 20)) {
      return Status::Corruption("bad parameter name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in || !ReadPod(in, &rank) || rank > 8) {
      return Status::Corruption("bad parameter rank for " + name);
    }
    std::vector<size_t> shape(rank);
    size_t total = rank == 0 ? 0 : 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim) || dim > (1ull << 32)) {
        return Status::Corruption("bad dimension for " + name);
      }
      shape[d] = static_cast<size_t>(dim);
      total *= shape[d];
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(total * sizeof(float)));
    if (!in) return Status::Corruption("truncated data for " + name);
    if (loaded.count(name) != 0) {
      return Status::Corruption("duplicate parameter " + name);
    }
    loaded.emplace(std::move(name), std::move(t));
  }

  std::vector<NamedParameter> params;
  module->CollectParameters("", &params);
  if (params.size() != loaded.size()) {
    // Name the first parameter present on only one side so the caller can
    // see *which* architecture drifted, not just that the counts differ.
    std::string detail;
    for (const auto& p : params) {
      if (loaded.count(p.name) == 0) {
        detail = "; module parameter '" + p.name + "' is not in the file";
        break;
      }
    }
    if (detail.empty()) {
      std::map<std::string, Tensor> extra = loaded;
      for (const auto& p : params) extra.erase(p.name);
      if (!extra.empty()) {
        detail = "; file parameter '" + extra.begin()->first +
                 "' is not in the module";
      }
    }
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch loading %s: module has %zu, "
                  "file has %zu%s",
                  path.c_str(), params.size(), loaded.size(), detail.c_str()));
  }
  for (auto& p : params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::InvalidArgument(
          StrFormat("%s is missing parameter '%s' expected by the module",
                    path.c_str(), p.name.c_str()));
    }
    if (it->second.shape() != p.variable.value().shape()) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for parameter '%s': module expects %s, %s has %s",
          p.name.c_str(), ShapeString(p.variable.value().shape()).c_str(),
          path.c_str(), ShapeString(it->second.shape()).c_str()));
    }
    p.variable.mutable_value() = it->second;
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace fkd
