#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

#include "common/file_io.h"
#include "common/string_util.h"

namespace fkd {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x464B4457;  // "FKDW"
constexpr uint32_t kVersion = 1;

std::string ShapeString(const std::vector<size_t>& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += " x ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveTensors(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    const std::string& path) {
  // One fault-injectable, fsynced write per record through the durable file
  // shim: the header first, then each tensor, so crash/ENOSPC tests can
  // target any point of the weight file.
  FKD_ASSIGN_OR_RETURN(FileWriter out, FileWriter::Open(path));
  std::string header;
  AppendPod(&header, kMagic);
  AppendPod(&header, kVersion);
  AppendPod(&header, static_cast<uint32_t>(tensors.size()));
  FKD_RETURN_NOT_OK(out.Append(header));
  for (const auto& [name, tensor] : tensors) {
    FKD_CHECK(tensor != nullptr);
    std::string record;
    AppendPod(&record, static_cast<uint32_t>(name.size()));
    record.append(name);
    AppendPod(&record, static_cast<uint32_t>(tensor->rank()));
    for (size_t dim : tensor->shape()) {
      AppendPod(&record, static_cast<uint64_t>(dim));
    }
    record.append(reinterpret_cast<const char*>(tensor->data()),
                  tensor->size() * sizeof(float));
    FKD_RETURN_NOT_OK(out.Append(record));
  }
  return out.Close();
}

Status SaveParameters(const Module& module, const std::string& path) {
  std::vector<NamedParameter> params;
  module.CollectParameters("", &params);
  std::vector<std::pair<std::string, const Tensor*>> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.emplace_back(p.name, &p.variable.value());
  return SaveTensors(tensors, path);
}

Result<std::vector<std::pair<std::string, Tensor>>> LoadTensors(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption(StrFormat("unsupported version %u", version));
  }
  if (!ReadPod(in, &count)) return Status::Corruption("truncated header");

  std::vector<std::pair<std::string, Tensor>> records;
  std::map<std::string, size_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > (1u << 20)) {
      return Status::Corruption("bad parameter name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in || !ReadPod(in, &rank) || rank > 8) {
      return Status::Corruption("bad parameter rank for " + name);
    }
    std::vector<size_t> shape(rank);
    size_t total = rank == 0 ? 0 : 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim) || dim > (1ull << 32)) {
        return Status::Corruption("bad dimension for " + name);
      }
      shape[d] = static_cast<size_t>(dim);
      total *= shape[d];
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(total * sizeof(float)));
    if (!in) return Status::Corruption("truncated data for " + name);
    if (!seen.emplace(name, i).second) {
      return Status::Corruption("duplicate parameter " + name);
    }
    records.emplace_back(std::move(name), std::move(t));
  }
  // Anything after the declared records is not ours: flag the trailing
  // garbage instead of silently ignoring a half-overwritten file.
  in.peek();
  if (!in.eof()) {
    return Status::Corruption("trailing bytes after last record in " + path);
  }
  return records;
}

Status LoadParameters(Module* module, const std::string& path) {
  FKD_CHECK(module != nullptr);
  FKD_ASSIGN_OR_RETURN(auto records, LoadTensors(path));
  std::map<std::string, Tensor> loaded;
  for (auto& [name, tensor] : records) {
    loaded.emplace(std::move(name), std::move(tensor));
  }

  std::vector<NamedParameter> params;
  module->CollectParameters("", &params);
  if (params.size() != loaded.size()) {
    // Name the first parameter present on only one side so the caller can
    // see *which* architecture drifted, not just that the counts differ.
    std::string detail;
    for (const auto& p : params) {
      if (loaded.count(p.name) == 0) {
        detail = "; module parameter '" + p.name + "' is not in the file";
        break;
      }
    }
    if (detail.empty()) {
      std::map<std::string, Tensor> extra = loaded;
      for (const auto& p : params) extra.erase(p.name);
      if (!extra.empty()) {
        detail = "; file parameter '" + extra.begin()->first +
                 "' is not in the module";
      }
    }
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch loading %s: module has %zu, "
                  "file has %zu%s",
                  path.c_str(), params.size(), loaded.size(), detail.c_str()));
  }
  for (auto& p : params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::InvalidArgument(
          StrFormat("%s is missing parameter '%s' expected by the module",
                    path.c_str(), p.name.c_str()));
    }
    if (it->second.shape() != p.variable.value().shape()) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for parameter '%s': module expects %s, %s has %s",
          p.name.c_str(), ShapeString(p.variable.value().shape()).c_str(),
          path.c_str(), ShapeString(it->second.shape()).c_str()));
    }
    p.variable.mutable_value() = it->second;
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace fkd
