#ifndef FKD_NN_SCHEDULE_H_
#define FKD_NN_SCHEDULE_H_

#include <cstddef>

#include "common/logging.h"

namespace fkd {
namespace nn {

/// Learning-rate schedules. Stateless: callers ask for the rate at a step
/// and pass it to Optimizer::set_learning_rate (Sgd/Adam expose it).
///
///   LinearDecaySchedule schedule(0.005f, 0.0005f, config.epochs);
///   for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
///     optimizer.set_learning_rate(schedule.LearningRateAt(epoch));
///     ...
///   }
class LearningRateSchedule {
 public:
  virtual ~LearningRateSchedule() = default;
  virtual float LearningRateAt(size_t step) const = 0;
};

/// Always the same rate (the paper's fixed-LR protocol).
class ConstantSchedule : public LearningRateSchedule {
 public:
  explicit ConstantSchedule(float rate) : rate_(rate) {
    FKD_CHECK_GT(rate, 0.0f);
  }
  float LearningRateAt(size_t) const override { return rate_; }

 private:
  float rate_;
};

/// Linear interpolation from `initial` to `final` over `total_steps`
/// (clamped to `final` afterwards) — word2vec/LINE's decay.
class LinearDecaySchedule : public LearningRateSchedule {
 public:
  LinearDecaySchedule(float initial, float final_rate, size_t total_steps)
      : initial_(initial), final_(final_rate), total_steps_(total_steps) {
    FKD_CHECK_GT(initial, 0.0f);
    FKD_CHECK_GT(final_rate, 0.0f);
    FKD_CHECK_LE(final_rate, initial);
    FKD_CHECK_GT(total_steps, 0u);
  }
  float LearningRateAt(size_t step) const override {
    if (step >= total_steps_) return final_;
    const float progress =
        static_cast<float>(step) / static_cast<float>(total_steps_);
    return initial_ + (final_ - initial_) * progress;
  }

 private:
  float initial_;
  float final_;
  size_t total_steps_;
};

/// Multiplies the rate by `factor` every `period` steps (staircase decay).
class StepDecaySchedule : public LearningRateSchedule {
 public:
  StepDecaySchedule(float initial, float factor, size_t period)
      : initial_(initial), factor_(factor), period_(period) {
    FKD_CHECK_GT(initial, 0.0f);
    FKD_CHECK_GT(factor, 0.0f);
    FKD_CHECK_LE(factor, 1.0f);
    FKD_CHECK_GT(period, 0u);
  }
  float LearningRateAt(size_t step) const override {
    float rate = initial_;
    for (size_t k = 0; k < step / period_; ++k) rate *= factor_;
    return rate;
  }

 private:
  float initial_;
  float factor_;
  size_t period_;
};

/// Linear warmup to `peak` over `warmup_steps`, then linear decay to 0+
/// at `total_steps` (transformer-style trapezoid, floor at `peak` / 100).
class WarmupLinearSchedule : public LearningRateSchedule {
 public:
  WarmupLinearSchedule(float peak, size_t warmup_steps, size_t total_steps)
      : peak_(peak), warmup_steps_(warmup_steps), total_steps_(total_steps) {
    FKD_CHECK_GT(peak, 0.0f);
    FKD_CHECK_GT(warmup_steps, 0u);
    FKD_CHECK_GT(total_steps, warmup_steps);
  }
  float LearningRateAt(size_t step) const override {
    const float floor = peak_ / 100.0f;
    if (step < warmup_steps_) {
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_steps_);
    }
    if (step >= total_steps_) return floor;
    const float progress = static_cast<float>(step - warmup_steps_) /
                           static_cast<float>(total_steps_ - warmup_steps_);
    const float rate = peak_ * (1.0f - progress);
    return rate < floor ? floor : rate;
  }

 private:
  float peak_;
  size_t warmup_steps_;
  size_t total_steps_;
};

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_SCHEDULE_H_
