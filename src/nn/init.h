#ifndef FKD_NN_INIT_H_
#define FKD_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fkd {
namespace nn {

/// Xavier/Glorot uniform initialisation for a [fan_in x fan_out] weight:
/// U(-a, a) with a = sqrt(6 / (fan_in + fan_out)). The default for
/// sigmoid/tanh-gated layers (GRU, GDU).
Tensor XavierUniform(size_t fan_in, size_t fan_out, Rng* rng);

/// He/Kaiming normal initialisation: N(0, sqrt(2 / fan_in)). The default
/// for ReLU layers.
Tensor HeNormal(size_t fan_in, size_t fan_out, Rng* rng);

/// Small uniform noise U(-scale, scale); used for embedding tables.
Tensor UniformInit(size_t rows, size_t cols, float scale, Rng* rng);

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_INIT_H_
