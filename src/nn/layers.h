#ifndef FKD_NN_LAYERS_H_
#define FKD_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace fkd {
namespace nn {

/// Affine map y = x W + b for [n x in] inputs. W is [in x out];
/// the bias (optional) is [1 x out], broadcast over rows.
class Linear : public Module {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng* rng, bool with_bias = true);

  /// x: [n x in] -> [n x out].
  autograd::Variable Forward(const autograd::Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const autograd::Variable& weight() const { return weight_; }
  /// Undefined (default-constructed) when built without bias.
  const autograd::Variable& bias() const { return bias_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  autograd::Variable weight_;
  autograd::Variable bias_;  // Undefined when constructed without bias.
};

/// Trainable token-embedding table [vocab x dim]; lookup by integer id.
class Embedding : public Module {
 public:
  Embedding(size_t vocab_size, size_t dim, Rng* rng);

  /// ids: n token ids in [0, vocab) -> [n x dim].
  autograd::Variable Forward(const std::vector<int32_t>& ids) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  size_t vocab_size() const { return vocab_size_; }
  size_t dim() const { return dim_; }
  const autograd::Variable& table() const { return table_; }

 private:
  size_t vocab_size_;
  size_t dim_;
  autograd::Variable table_;
};

/// Recurrent cell families available to sequence encoders.
enum class RnnCellKind {
  kBasic,  ///< Elman RNN: h' = tanh(x W + h U + b) — the "basic neuron
           ///< cells" of the paper's RNN baseline [42].
  kGru,    ///< Gated recurrent unit (the paper's HFLU hidden layer).
  kLstm,   ///< Long short-term memory (extension / ablation).
};

const char* RnnCellKindName(RnnCellKind kind);

/// One recurrent step over a packed per-sequence state matrix.
///
/// The packed state is [n x state_dim()]; for cells with auxiliary state
/// (LSTM's cell vector) state_dim() > hidden_dim() and Output() extracts
/// the exposed hidden part [n x hidden_dim()].
class RecurrentCell : public Module {
 public:
  /// x [n x input_dim], state [n x state_dim] -> new state.
  virtual autograd::Variable Step(const autograd::Variable& x,
                                  const autograd::Variable& state) const = 0;

  /// Fresh all-zero packed state for n sequences (not trainable).
  autograd::Variable InitialState(size_t n) const {
    return autograd::Variable(Tensor(n, state_dim()), /*requires_grad=*/false,
                              "rnn/state0");
  }

  /// Exposed hidden part of a packed state (identity by default).
  virtual autograd::Variable Output(const autograd::Variable& state) const {
    return state;
  }

  virtual size_t input_dim() const = 0;
  virtual size_t hidden_dim() const = 0;
  virtual size_t state_dim() const { return hidden_dim(); }
};

/// Elman RNN cell: h' = tanh(x W + h U + b).
class BasicRnnCell : public RecurrentCell {
 public:
  BasicRnnCell(size_t input_dim, size_t hidden_dim, Rng* rng);

  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& state) const override;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  size_t input_dim() const override { return input_dim_; }
  size_t hidden_dim() const override { return hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  Linear input_map_;
  Linear hidden_map_;
};

/// Gated recurrent unit cell (Cho et al. 2014), the hidden-layer unit of
/// the paper's latent feature extractor (HFLU, Fig 3a):
///
///   z_t = sigmoid(x W_z + h U_z + b_z)        (update gate)
///   r_t = sigmoid(x W_r + h U_r + b_r)        (reset gate)
///   c_t = tanh  (x W_c + (r_t (*) h) U_c + b_c)
///   h_t = (1 - z_t) (*) h + z_t (*) c_t
class GruCell : public RecurrentCell {
 public:
  GruCell(size_t input_dim, size_t hidden_dim, Rng* rng);

  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& state) const override;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  size_t input_dim() const override { return input_dim_; }
  size_t hidden_dim() const override { return hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  Linear update_x_, update_h_;
  Linear reset_x_, reset_h_;
  Linear cand_x_, cand_h_;
};

/// LSTM cell (Hochreiter & Schmidhuber 1997) with packed state [h, c]:
///
///   i = sigmoid(x W_i + h U_i + b_i)
///   f = sigmoid(x W_f + h U_f + b_f)       (bias initialised to +1)
///   o = sigmoid(x W_o + h U_o + b_o)
///   g = tanh  (x W_g + h U_g + b_g)
///   c' = f (*) c + i (*) g;    h' = o (*) tanh(c')
class LstmCell : public RecurrentCell {
 public:
  LstmCell(size_t input_dim, size_t hidden_dim, Rng* rng);

  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& state) const override;

  autograd::Variable Output(const autograd::Variable& state) const override;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  size_t input_dim() const override { return input_dim_; }
  size_t hidden_dim() const override { return hidden_dim_; }
  size_t state_dim() const override { return 2 * hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  Linear in_x_, in_h_;
  Linear forget_x_, forget_h_;
  Linear out_x_, out_h_;
  Linear cand_x_, cand_h_;
};

/// Factory over the cell kinds.
std::unique_ptr<RecurrentCell> MakeRecurrentCell(RnnCellKind kind,
                                                 size_t input_dim,
                                                 size_t hidden_dim, Rng* rng);

/// How `RecurrentEncoder` pools per-step hidden states into one vector.
enum class SequencePooling {
  kLastState,  ///< Final hidden state h_q (classic RNN classifier).
  kSumStates,  ///< sum_t h_t — the paper's HFLU fusion-layer input.
};

/// Recurrent text encoder: embeds a padded batch of token sequences and
/// runs the chosen cell over time with padding masks, producing one
/// [n x hidden] matrix.
///
/// Padding convention: id < 0 marks padding; padded steps leave the state
/// unchanged and contribute nothing to kSumStates pooling.
class RecurrentEncoder : public Module {
 public:
  RecurrentEncoder(size_t vocab_size, size_t embed_dim, size_t hidden_dim,
                   Rng* rng,
                   SequencePooling pooling = SequencePooling::kLastState,
                   RnnCellKind cell_kind = RnnCellKind::kGru);

  /// sequences: n rows, each a (possibly ragged) token-id sequence;
  /// internally processed up to `max_steps` (0 = longest row).
  autograd::Variable Forward(const std::vector<std::vector<int32_t>>& sequences,
                             size_t max_steps = 0) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out) const override;

  size_t hidden_dim() const { return cell_->hidden_dim(); }
  RnnCellKind cell_kind() const { return cell_kind_; }

 private:
  Embedding embedding_;
  RnnCellKind cell_kind_;
  std::unique_ptr<RecurrentCell> cell_;
  SequencePooling pooling_;
};

/// Historical name; the default cell is a GRU.
using GruEncoder = RecurrentEncoder;

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_LAYERS_H_
