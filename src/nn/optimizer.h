#ifndef FKD_NN_OPTIMIZER_H_
#define FKD_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/autograd.h"

namespace fkd {
namespace nn {

/// Serializable optimiser internals for checkpoint/resume. `slots` holds
/// the per-parameter accumulators in an optimiser-defined order (Adam: all
/// first moments, then all second moments; Sgd: velocities when momentum
/// is on; AdaGrad: squared-gradient accumulators). Restoring the state
/// into an identically constructed optimiser over the same parameter list
/// makes subsequent Step() calls bit-for-bit identical to a run that never
/// stopped.
struct OptimizerState {
  int64_t step_count = 0;
  std::vector<Tensor> slots;
};

/// Base class for first-order optimisers over a fixed parameter list.
///
/// Training loop contract:
///   optimizer.ZeroGrad();
///   auto loss = model.Loss(batch);
///   autograd::Backward(loss);
///   optimizer.Step();
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Copies out the optimiser's internal accumulators for checkpointing.
  /// The base optimiser is stateless; subclasses append their slots.
  virtual OptimizerState GetState() const { return OptimizerState{}; }

  /// Restores accumulators captured by GetState() on an identically
  /// configured optimiser. InvalidArgument if the slot count or any slot
  /// shape does not match this optimiser's parameters.
  virtual Status SetState(const OptimizerState& state);

  /// Clears accumulated gradients on every parameter.
  void ZeroGrad();

  const std::vector<autograd::Variable>& parameters() const {
    return parameters_;
  }

 protected:
  std::vector<autograd::Variable> parameters_;
};

/// Stochastic gradient descent with optional classical momentum and
/// decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> parameters, float learning_rate,
      float momentum = 0.0f, float weight_decay = 0.0f);

  void Step() override;

  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> parameters, float learning_rate = 1e-3f,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;

  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

/// AdaGrad (Duchi et al. 2011); the optimiser DeepWalk/LINE-era embedding
/// models typically used.
class AdaGrad : public Optimizer {
 public:
  AdaGrad(std::vector<autograd::Variable> parameters, float learning_rate,
          float epsilon = 1e-8f);

  void Step() override;

  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

 private:
  float learning_rate_;
  float epsilon_;
  std::vector<Tensor> accumulated_;
};

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm. Call between Backward() and Step().
float ClipGradNorm(const std::vector<autograd::Variable>& parameters,
                   float max_norm);

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_OPTIMIZER_H_
