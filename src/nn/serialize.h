#ifndef FKD_NN_SERIALIZE_H_
#define FKD_NN_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nn/module.h"
#include "nn/quantize.h"

namespace fkd {
namespace nn {

/// Writes all parameters of `module` to `path` in the FKDW binary format
/// (magic, version, then name/shape/float32-data records).
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters into `module` (matched by
/// name; shapes must agree exactly). Missing or extra names are errors so
/// that silent architecture drift is caught.
Status LoadParameters(Module* module, const std::string& path);

/// Writes an ordered list of named tensors in the same FKDW format —
/// the raw-tensor flavour checkpoints use for optimizer slots and kept
/// best-epoch weights, where there is no Module to collect from. Pointers
/// must be non-null; names should be unique (LoadTensors rejects dupes).
Status SaveTensors(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    const std::string& path);

/// SaveTensors with an explicit weight encoding. kFp32 delegates to the
/// v1 writer (byte-identical to SaveTensors, preserving the checkpoint
/// bitwise contract); kFp16/kInt8 write FKDW v2 records carrying a dtype
/// byte and the encoded payload (int8 records embed their double
/// scale/offset). Encoding is element-independent and therefore identical
/// at any thread count.
Status SaveTensorsEncoded(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    const std::string& path, TensorCodec codec);

/// SaveParameters with an explicit weight encoding (see SaveTensorsEncoded).
Status SaveParametersEncoded(const Module& module, const std::string& path,
                             TensorCodec codec);

/// Reads back every record of an FKDW file in file order, shapes taken
/// from the file itself. Accepts v1 (fp32) and v2 (dtype-tagged) files;
/// quantized records are dequantised through the single deterministic
/// fp16/int8 decode path, so the returned tensors are always fp32 and a
/// pure function of the file bytes. The file is memory-mapped, not
/// buffered — demoted-tier loads parse straight from the page cache.
/// Corruption on any malformed or truncated record.
Result<std::vector<std::pair<std::string, Tensor>>> LoadTensors(
    const std::string& path);

/// LoadTensors from an in-memory FKDW image (a mapped file, a decompressed
/// cold-tier block). `origin` labels error messages.
Result<std::vector<std::pair<std::string, Tensor>>> DecodeTensors(
    const void* data, size_t size, const std::string& origin);

/// Builds in memory exactly the bytes SaveTensorsEncoded would write —
/// the input the compressed cold tier wraps into an FKDZ container.
std::string EncodeTensorsImage(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    TensorCodec codec);

/// LoadParameters from an in-memory FKDW image (same matching rules).
Status LoadParametersFromImage(Module* module, const void* data, size_t size,
                               const std::string& origin);

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_SERIALIZE_H_
