#ifndef FKD_NN_SERIALIZE_H_
#define FKD_NN_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace fkd {
namespace nn {

/// Writes all parameters of `module` to `path` in the FKDW binary format
/// (magic, version, then name/shape/float32-data records).
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters into `module` (matched by
/// name; shapes must agree exactly). Missing or extra names are errors so
/// that silent architecture drift is caught.
Status LoadParameters(Module* module, const std::string& path);

/// Writes an ordered list of named tensors in the same FKDW format —
/// the raw-tensor flavour checkpoints use for optimizer slots and kept
/// best-epoch weights, where there is no Module to collect from. Pointers
/// must be non-null; names should be unique (LoadTensors rejects dupes).
Status SaveTensors(
    const std::vector<std::pair<std::string, const Tensor*>>& tensors,
    const std::string& path);

/// Reads back every record of an FKDW file in file order, shapes taken
/// from the file itself. Corruption on any malformed or truncated record.
Result<std::vector<std::pair<std::string, Tensor>>> LoadTensors(
    const std::string& path);

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_SERIALIZE_H_
