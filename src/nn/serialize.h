#ifndef FKD_NN_SERIALIZE_H_
#define FKD_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace fkd {
namespace nn {

/// Writes all parameters of `module` to `path` in the FKDW binary format
/// (magic, version, then name/shape/float32-data records).
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters into `module` (matched by
/// name; shapes must agree exactly). Missing or extra names are errors so
/// that silent architecture drift is caught.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_SERIALIZE_H_
