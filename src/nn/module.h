#ifndef FKD_NN_MODULE_H_
#define FKD_NN_MODULE_H_

#include <string>
#include <vector>

#include "tensor/autograd.h"

namespace fkd {
namespace nn {

/// A trainable parameter with a hierarchical name (for serialization and
/// diagnostics), e.g. "fakedetector/article_gdu/w_forget".
struct NamedParameter {
  std::string name;
  autograd::Variable variable;
};

/// Base interface for anything that owns trainable parameters. Layers and
/// whole models implement this so optimisers and (de)serialization can walk
/// the parameter tree uniformly.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends all parameters with names prefixed by `prefix` + "/".
  virtual void CollectParameters(const std::string& prefix,
                                 std::vector<NamedParameter>* out) const = 0;

  /// Flat parameter list (unnamed convenience).
  std::vector<autograd::Variable> Parameters() const {
    std::vector<NamedParameter> named;
    CollectParameters("", &named);
    std::vector<autograd::Variable> params;
    params.reserve(named.size());
    for (auto& p : named) params.push_back(p.variable);
    return params;
  }

  /// Total number of scalar parameters.
  size_t ParameterCount() const {
    size_t total = 0;
    for (const auto& p : Parameters()) total += p.value().size();
    return total;
  }
};

/// Joins a parameter path component onto a prefix.
inline std::string JoinName(const std::string& prefix, const std::string& leaf) {
  return prefix.empty() ? leaf : prefix + "/" + leaf;
}

}  // namespace nn
}  // namespace fkd

#endif  // FKD_NN_MODULE_H_
