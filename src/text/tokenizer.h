#ifndef FKD_TEXT_TOKENIZER_H_
#define FKD_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace fkd {
namespace text {

/// Options for `Tokenize`.
struct TokenizerOptions {
  /// Lowercase all tokens (the paper's analysis is case-insensitive).
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop English stop words ("the", "of", ... — Fig 1b/1c remove them).
  bool remove_stopwords = false;
};

/// Splits `text` into word tokens on any non-alphanumeric character
/// (apostrophes inside words are kept: "don't" -> "don't").
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// True for words on the built-in English stop-word list (lowercase input).
bool IsStopWord(std::string_view word);

}  // namespace text
}  // namespace fkd

#endif  // FKD_TEXT_TOKENIZER_H_
