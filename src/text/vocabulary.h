#ifndef FKD_TEXT_VOCABULARY_H_
#define FKD_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fkd {
namespace text {

/// Bidirectional token <-> contiguous-id map with frequency counts.
///
/// Ids are dense in [0, size()); `kUnknownId` (-1) marks out-of-vocabulary
/// tokens. Frequencies accumulate through `Add`, enabling min-frequency
/// pruning when building the modelling vocabulary from a corpus.
///
/// Thread safety follows const-correctness: a `const Vocabulary&` is safe
/// to use concurrently from any number of threads (every const member is a
/// pure lookup with no caches or other mutable state — this is what lets
/// serving workers featurize against one frozen vocabulary in parallel).
/// The mutating members (`Add`, `AddAll`) must not overlap any other call
/// on the same instance; build the vocabulary first, then share it const.
class Vocabulary {
 public:
  static constexpr int32_t kUnknownId = -1;

  /// Adds one occurrence of `token`, creating an id on first sight.
  /// Returns the token's id.
  int32_t Add(const std::string& token);

  /// Adds every token of a document.
  void AddAll(const std::vector<std::string>& tokens);

  /// Id of `token`, or kUnknownId.
  int32_t IdOf(const std::string& token) const;

  /// Token for a valid id.
  const std::string& TokenOf(int32_t id) const;

  /// Total occurrences recorded for `token` (0 when absent).
  int64_t FrequencyOf(const std::string& token) const;

  size_t size() const { return tokens_.size(); }

  /// All tokens, indexed by id.
  const std::vector<std::string>& tokens() const { return tokens_; }

  /// New vocabulary keeping only tokens with frequency >= min_frequency
  /// (ids are re-assigned densely in original id order).
  Vocabulary Pruned(int64_t min_frequency) const;

  /// The `max_size` most frequent tokens (ties broken by first-seen order).
  Vocabulary TopK(size_t max_size) const;

  /// Converts tokens to ids, dropping OOV tokens.
  std::vector<int32_t> Encode(const std::vector<std::string>& tokens) const;

  /// Converts tokens to ids, truncating to `max_length` and padding with
  /// -1 up to `max_length` (the paper pads articles to length q). OOV
  /// tokens are dropped before padding.
  std::vector<int32_t> EncodePadded(const std::vector<std::string>& tokens,
                                    size_t max_length) const;

  /// Text serialization: one "token<TAB>frequency" line per id. Save is
  /// SerializeToString landed durably; the string form feeds the
  /// compressed cold tier.
  std::string SerializeToString() const;
  Status Save(const std::string& path) const;
  static Result<Vocabulary> Load(const std::string& path);

  /// Parses the Save format from an in-memory buffer (a decompressed
  /// cold-tier block, an mmap'd view). `origin` labels error messages.
  /// Load is this applied to the file's bytes.
  static Result<Vocabulary> Parse(std::string_view content,
                                  const std::string& origin);

 private:
  std::unordered_map<std::string, int32_t> token_to_id_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> frequencies_;
};

}  // namespace text
}  // namespace fkd

#endif  // FKD_TEXT_VOCABULARY_H_
