#include "text/vocabulary.h"

#include <algorithm>
#include <fstream>
#include <numeric>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace text {

int32_t Vocabulary::Add(const std::string& token) {
  auto [it, inserted] =
      token_to_id_.try_emplace(token, static_cast<int32_t>(tokens_.size()));
  if (inserted) {
    tokens_.push_back(token);
    frequencies_.push_back(0);
  }
  ++frequencies_[it->second];
  return it->second;
}

void Vocabulary::AddAll(const std::vector<std::string>& tokens) {
  for (const auto& token : tokens) Add(token);
}

int32_t Vocabulary::IdOf(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnknownId : it->second;
}

const std::string& Vocabulary::TokenOf(int32_t id) const {
  FKD_CHECK_GE(id, 0);
  FKD_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[id];
}

int64_t Vocabulary::FrequencyOf(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? 0 : frequencies_[it->second];
}

Vocabulary Vocabulary::Pruned(int64_t min_frequency) const {
  Vocabulary out;
  for (size_t id = 0; id < tokens_.size(); ++id) {
    if (frequencies_[id] >= min_frequency) {
      const int32_t new_id = out.Add(tokens_[id]);
      out.frequencies_[new_id] = frequencies_[id];
    }
  }
  return out;
}

Vocabulary Vocabulary::TopK(size_t max_size) const {
  std::vector<size_t> order(tokens_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return frequencies_[a] > frequencies_[b];
  });
  Vocabulary out;
  for (size_t i = 0; i < std::min(max_size, order.size()); ++i) {
    const size_t id = order[i];
    const int32_t new_id = out.Add(tokens_[id]);
    out.frequencies_[new_id] = frequencies_[id];
  }
  return out;
}

std::vector<int32_t> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int32_t> ids;
  ids.reserve(tokens.size());
  for (const auto& token : tokens) {
    const int32_t id = IdOf(token);
    if (id != kUnknownId) ids.push_back(id);
  }
  return ids;
}

std::vector<int32_t> Vocabulary::EncodePadded(
    const std::vector<std::string>& tokens, size_t max_length) const {
  std::vector<int32_t> ids = Encode(tokens);
  if (ids.size() > max_length) ids.resize(max_length);
  ids.resize(max_length, kUnknownId);  // -1 padding.
  return ids;
}

std::string Vocabulary::SerializeToString() const {
  std::string body;
  for (size_t id = 0; id < tokens_.size(); ++id) {
    body += tokens_[id];
    body += '\t';
    body += std::to_string(frequencies_[id]);
    body += '\n';
  }
  return body;
}

Status Vocabulary::Save(const std::string& path) const {
  // Built in memory, then one durable write through the fault-injectable
  // shim: a vocabulary is one logical artifact, so it lands wholly or not
  // at all (modulo the torn-write fault tests rely on).
  return WriteStringToFile(path, SerializeToString());
}

Result<Vocabulary> Vocabulary::Load(const std::string& path) {
  FKD_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  return Parse(content, path);
}

Result<Vocabulary> Vocabulary::Parse(std::string_view content,
                                     const std::string& origin) {
  Vocabulary vocab;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= content.size()) {
    if (start == content.size()) break;
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    const std::string line(content.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 2 || fields[0].empty()) {
      return Status::Corruption(
          StrFormat("%s:%zu: expected 'token<TAB>frequency'", origin.c_str(),
                    line_number));
    }
    uint64_t frequency = 0;
    if (!ParseUint64(fields[1], &frequency)) {
      return Status::Corruption(
          StrFormat("%s:%zu: bad frequency '%s'", origin.c_str(), line_number,
                    fields[1].c_str()));
    }
    if (vocab.IdOf(fields[0]) != kUnknownId) {
      return Status::Corruption(
          StrFormat("%s:%zu: duplicate token '%s'", origin.c_str(), line_number,
                    fields[0].c_str()));
    }
    const int32_t id = vocab.Add(fields[0]);
    vocab.frequencies_[id] = static_cast<int64_t>(frequency);
  }
  return vocab;
}

}  // namespace text
}  // namespace fkd
