#ifndef FKD_TEXT_FEATURES_H_
#define FKD_TEXT_FEATURES_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "text/vocabulary.h"

namespace fkd {
namespace text {

/// Explicit bag-of-words feature extraction over a fixed word set (the
/// paper's W_n / W_u / W_s: "entry x(k) denotes the number of appearance
/// times of word w_k", §4.1.1).
class BowFeaturizer {
 public:
  /// `word_set` defines the feature dimensions (one per token, in id
  /// order).
  explicit BowFeaturizer(Vocabulary word_set)
      : word_set_(std::move(word_set)) {}

  size_t dim() const { return word_set_.size(); }
  const Vocabulary& word_set() const { return word_set_; }

  /// Count vector for one tokenised document: out[k] = #occurrences of
  /// word k.
  std::vector<float> Featurize(const std::vector<std::string>& tokens) const;

  /// [n x dim] count matrix for a batch of documents.
  Tensor FeaturizeBatch(
      const std::vector<std::vector<std::string>>& documents) const;

 private:
  Vocabulary word_set_;
};

/// Per-class word-occurrence statistics used both for the paper's frequent-
/// word analysis (Fig 1b/1c) and for chi-square feature selection.
class ClassWordStats {
 public:
  /// `num_classes` label values in [0, num_classes).
  explicit ClassWordStats(size_t num_classes);

  /// Records a tokenised document of class `label`. Each word is counted at
  /// most once per document (document frequency), the convention chi-square
  /// selection expects.
  void AddDocument(const std::vector<std::string>& tokens, int32_t label);

  size_t num_classes() const { return num_classes_; }
  size_t num_documents() const { return total_documents_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Documents of class `label` containing `word`.
  int64_t DocumentCount(const std::string& word, int32_t label) const;

  /// Documents of class `label`.
  int64_t ClassDocumentCount(int32_t label) const;

  /// Chi-square statistic of `word` vs. the class variable (summed over
  /// classes; standard one-vs-rest 2x2 formulation).
  double ChiSquare(const std::string& word) const;

  /// The `k` highest-chi-square words with document frequency >=
  /// `min_document_frequency`, as a Vocabulary (feature word set).
  Vocabulary SelectTopChiSquare(size_t k,
                                int64_t min_document_frequency = 2) const;

  /// Mutual information I(word presence; class) in nats, from the
  /// document-level contingency table.
  double MutualInformation(const std::string& word) const;

  /// The `k` highest-mutual-information words with document frequency >=
  /// `min_document_frequency` (alternative selector to chi-square).
  Vocabulary SelectTopMutualInformation(
      size_t k, int64_t min_document_frequency = 2) const;

  /// The `k` most frequent words of class `label` (Fig 1b/1c word lists).
  std::vector<std::pair<std::string, int64_t>> TopWordsForClass(
      int32_t label, size_t k) const;

 private:
  size_t num_classes_;
  size_t total_documents_ = 0;
  Vocabulary vocabulary_;
  /// counts_[word_id * num_classes_ + label] = document frequency.
  std::vector<int64_t> counts_;
  std::vector<int64_t> class_documents_;
};

/// TF-IDF variant of the explicit features: term frequency scaled by
/// smoothed inverse document frequency, fitted on a corpus. An extension
/// over the paper's raw counts for the feature-pipeline ablation.
class TfIdfFeaturizer {
 public:
  /// `word_set` defines the dimensions; `corpus` supplies the document
  /// frequencies (idf = ln((1 + N) / (1 + df)) + 1, sklearn's smoothing).
  TfIdfFeaturizer(Vocabulary word_set,
                  const std::vector<std::vector<std::string>>& corpus);

  size_t dim() const { return word_set_.size(); }
  const Vocabulary& word_set() const { return word_set_; }

  /// Smoothed idf of feature `k`.
  double IdfOf(int32_t word_id) const;

  std::vector<float> Featurize(const std::vector<std::string>& tokens) const;
  Tensor FeaturizeBatch(
      const std::vector<std::vector<std::string>>& documents) const;

 private:
  Vocabulary word_set_;
  std::vector<float> idf_;
};

/// Tokenises one text column with the modelling conventions shared by
/// FakeDetector and the text baselines (lowercase, stop words removed).
std::vector<std::vector<std::string>> TokenizeDocuments(
    const std::vector<std::string>& texts, bool remove_stopwords = true);

/// Chi-square-selects a word set of size `k` using only the labelled
/// training documents (`targets` is indexed by document id).
Vocabulary SelectChiSquareWordSet(
    const std::vector<std::vector<std::string>>& documents,
    const std::vector<int32_t>& train_ids, const std::vector<int32_t>& targets,
    size_t num_classes, size_t k);

/// The `k` most frequent tokens over all documents (unsupervised).
Vocabulary BuildFrequencyVocabulary(
    const std::vector<std::vector<std::string>>& documents, size_t k);

}  // namespace text
}  // namespace fkd

#endif  // FKD_TEXT_FEATURES_H_
