#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace fkd {
namespace text {

namespace {

const std::unordered_set<std::string>& StopWordSet() {
  // Standard English stop-word list (SMART subset), never destroyed
  // (function-local static reference idiom).
  static const auto& kStopWords = *new std::unordered_set<std::string>{
      "a",      "about",  "above", "after",  "again",   "against", "all",
      "am",     "an",     "and",   "any",    "are",     "aren't",  "as",
      "at",     "be",     "because", "been", "before",  "being",   "below",
      "between", "both",  "but",   "by",     "can",     "can't",   "cannot",
      "could",  "couldn't", "did", "didn't", "do",      "does",    "doesn't",
      "doing",  "don't",  "down",  "during", "each",    "few",     "for",
      "from",   "further", "had",  "hadn't", "has",     "hasn't",  "have",
      "haven't", "having", "he",   "he'd",   "he'll",   "he's",    "her",
      "here",   "here's", "hers",  "herself", "him",    "himself", "his",
      "how",    "how's",  "i",     "i'd",    "i'll",    "i'm",     "i've",
      "if",     "in",     "into",  "is",     "isn't",   "it",      "it's",
      "its",    "itself", "let's", "me",     "more",    "most",    "mustn't",
      "my",     "myself", "no",    "nor",    "not",     "of",      "off",
      "on",     "once",   "only",  "or",     "other",   "ought",   "our",
      "ours",   "ourselves", "out", "over",  "own",     "same",    "shan't",
      "she",    "she'd",  "she'll", "she's", "should",  "shouldn't", "so",
      "some",   "such",   "than",  "that",   "that's",  "the",     "their",
      "theirs", "them",   "themselves", "then", "there", "there's", "these",
      "they",   "they'd", "they'll", "they're", "they've", "this",  "those",
      "through", "to",    "too",   "under",  "until",   "up",      "very",
      "was",    "wasn't", "we",    "we'd",   "we'll",   "we're",   "we've",
      "were",   "weren't", "what", "what's", "when",    "when's",  "where",
      "where's", "which", "while", "who",    "who's",   "whom",    "why",
      "why's",  "with",   "won't", "would",  "wouldn't", "you",    "you'd",
      "you'll", "you're", "you've", "your",  "yours",   "yourself",
      "yourselves"};
  return kStopWords;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '\'';
}

}  // namespace

bool IsStopWord(std::string_view word) {
  return StopWordSet().count(std::string(word)) != 0;
}

std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && !IsWordChar(input[i])) ++i;
    size_t start = i;
    while (i < input.size() && IsWordChar(input[i])) ++i;
    if (i == start) continue;
    std::string token(input.substr(start, i - start));
    // Strip leading/trailing apostrophes ("'tis'" -> "tis").
    size_t begin = 0;
    size_t end = token.size();
    while (begin < end && token[begin] == '\'') ++begin;
    while (end > begin && token[end - 1] == '\'') --end;
    token = token.substr(begin, end - begin);
    if (token.size() < options.min_token_length) continue;
    if (options.lowercase) {
      for (char& c : token) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (options.remove_stopwords && IsStopWord(token)) continue;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace text
}  // namespace fkd
