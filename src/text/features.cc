#include "text/features.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace fkd {
namespace text {

std::vector<float> BowFeaturizer::Featurize(
    const std::vector<std::string>& tokens) const {
  std::vector<float> features(word_set_.size(), 0.0f);
  for (const auto& token : tokens) {
    const int32_t id = word_set_.IdOf(token);
    if (id != Vocabulary::kUnknownId) features[id] += 1.0f;
  }
  return features;
}

Tensor BowFeaturizer::FeaturizeBatch(
    const std::vector<std::vector<std::string>>& documents) const {
  Tensor out(documents.size(), word_set_.size());
  for (size_t r = 0; r < documents.size(); ++r) {
    const std::vector<float> row = Featurize(documents[r]);
    std::copy(row.begin(), row.end(), out.Row(r));
  }
  return out;
}

ClassWordStats::ClassWordStats(size_t num_classes)
    : num_classes_(num_classes), class_documents_(num_classes, 0) {
  FKD_CHECK_GT(num_classes, 0u);
}

void ClassWordStats::AddDocument(const std::vector<std::string>& tokens,
                                 int32_t label) {
  FKD_CHECK_GE(label, 0);
  FKD_CHECK_LT(static_cast<size_t>(label), num_classes_);
  ++total_documents_;
  ++class_documents_[label];
  std::unordered_set<std::string> unique(tokens.begin(), tokens.end());
  for (const auto& word : unique) {
    const int32_t id = vocabulary_.Add(word);
    const size_t needed = (static_cast<size_t>(id) + 1) * num_classes_;
    if (counts_.size() < needed) counts_.resize(needed, 0);
    ++counts_[static_cast<size_t>(id) * num_classes_ +
              static_cast<size_t>(label)];
  }
}

int64_t ClassWordStats::DocumentCount(const std::string& word,
                                      int32_t label) const {
  FKD_CHECK_GE(label, 0);
  FKD_CHECK_LT(static_cast<size_t>(label), num_classes_);
  const int32_t id = vocabulary_.IdOf(word);
  if (id == Vocabulary::kUnknownId) return 0;
  return counts_[static_cast<size_t>(id) * num_classes_ +
                 static_cast<size_t>(label)];
}

int64_t ClassWordStats::ClassDocumentCount(int32_t label) const {
  FKD_CHECK_GE(label, 0);
  FKD_CHECK_LT(static_cast<size_t>(label), num_classes_);
  return class_documents_[label];
}

double ClassWordStats::ChiSquare(const std::string& word) const {
  const int32_t id = vocabulary_.IdOf(word);
  if (id == Vocabulary::kUnknownId || total_documents_ == 0) return 0.0;
  const double n = static_cast<double>(total_documents_);
  int64_t word_documents = 0;
  for (size_t c = 0; c < num_classes_; ++c) {
    word_documents += counts_[static_cast<size_t>(id) * num_classes_ + c];
  }
  double chi = 0.0;
  // One-vs-rest 2x2 contingency per class, summed.
  for (size_t c = 0; c < num_classes_; ++c) {
    const double a = static_cast<double>(
        counts_[static_cast<size_t>(id) * num_classes_ + c]);  // word & class
    const double b = static_cast<double>(word_documents) - a;  // word & !class
    const double cc = static_cast<double>(class_documents_[c]) - a;
    const double d = n - a - b - cc;
    const double denominator =
        (a + cc) * (b + d) * (a + b) * (cc + d);
    if (denominator <= 0.0) continue;
    const double numerator = n * (a * d - cc * b) * (a * d - cc * b);
    chi += numerator / denominator;
  }
  return chi;
}

Vocabulary ClassWordStats::SelectTopChiSquare(
    size_t k, int64_t min_document_frequency) const {
  struct Scored {
    int32_t id;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(vocabulary_.size());
  for (size_t id = 0; id < vocabulary_.size(); ++id) {
    int64_t document_frequency = 0;
    for (size_t c = 0; c < num_classes_; ++c) {
      document_frequency += counts_[id * num_classes_ + c];
    }
    if (document_frequency < min_document_frequency) continue;
    scored.push_back({static_cast<int32_t>(id),
                      ChiSquare(vocabulary_.TokenOf(static_cast<int32_t>(id)))});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  Vocabulary selected;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    selected.Add(vocabulary_.TokenOf(scored[i].id));
  }
  return selected;
}

double ClassWordStats::MutualInformation(const std::string& word) const {
  const int32_t id = vocabulary_.IdOf(word);
  if (id == Vocabulary::kUnknownId || total_documents_ == 0) return 0.0;
  const double n = static_cast<double>(total_documents_);
  int64_t word_documents = 0;
  for (size_t c = 0; c < num_classes_; ++c) {
    word_documents += counts_[static_cast<size_t>(id) * num_classes_ + c];
  }
  const double p_word = static_cast<double>(word_documents) / n;
  double mi = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) {
    const double p_class = static_cast<double>(class_documents_[c]) / n;
    if (p_class <= 0.0) continue;
    const double joint_present =
        static_cast<double>(counts_[static_cast<size_t>(id) * num_classes_ + c]) / n;
    const double joint_absent = p_class - joint_present;
    if (joint_present > 0.0 && p_word > 0.0) {
      mi += joint_present * std::log(joint_present / (p_word * p_class));
    }
    if (joint_absent > 0.0 && p_word < 1.0) {
      mi += joint_absent * std::log(joint_absent / ((1.0 - p_word) * p_class));
    }
  }
  return mi;
}

Vocabulary ClassWordStats::SelectTopMutualInformation(
    size_t k, int64_t min_document_frequency) const {
  struct Scored {
    int32_t id;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(vocabulary_.size());
  for (size_t id = 0; id < vocabulary_.size(); ++id) {
    int64_t document_frequency = 0;
    for (size_t c = 0; c < num_classes_; ++c) {
      document_frequency += counts_[id * num_classes_ + c];
    }
    if (document_frequency < min_document_frequency) continue;
    scored.push_back(
        {static_cast<int32_t>(id),
         MutualInformation(vocabulary_.TokenOf(static_cast<int32_t>(id)))});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  Vocabulary selected;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    selected.Add(vocabulary_.TokenOf(scored[i].id));
  }
  return selected;
}

std::vector<std::pair<std::string, int64_t>> ClassWordStats::TopWordsForClass(
    int32_t label, size_t k) const {
  FKD_CHECK_GE(label, 0);
  FKD_CHECK_LT(static_cast<size_t>(label), num_classes_);
  std::vector<std::pair<std::string, int64_t>> words;
  words.reserve(vocabulary_.size());
  for (size_t id = 0; id < vocabulary_.size(); ++id) {
    const int64_t count =
        counts_[id * num_classes_ + static_cast<size_t>(label)];
    if (count > 0) {
      words.emplace_back(vocabulary_.TokenOf(static_cast<int32_t>(id)), count);
    }
  }
  std::stable_sort(words.begin(), words.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (words.size() > k) words.resize(k);
  return words;
}

TfIdfFeaturizer::TfIdfFeaturizer(
    Vocabulary word_set, const std::vector<std::vector<std::string>>& corpus)
    : word_set_(std::move(word_set)), idf_(word_set_.size(), 0.0f) {
  std::vector<int64_t> document_frequency(word_set_.size(), 0);
  for (const auto& tokens : corpus) {
    std::unordered_set<int32_t> seen;
    for (const auto& token : tokens) {
      const int32_t id = word_set_.IdOf(token);
      if (id != Vocabulary::kUnknownId) seen.insert(id);
    }
    for (int32_t id : seen) ++document_frequency[id];
  }
  const double n = static_cast<double>(corpus.size());
  for (size_t k = 0; k < idf_.size(); ++k) {
    idf_[k] = static_cast<float>(
        std::log((1.0 + n) / (1.0 + static_cast<double>(document_frequency[k]))) +
        1.0);
  }
}

double TfIdfFeaturizer::IdfOf(int32_t word_id) const {
  FKD_CHECK_GE(word_id, 0);
  FKD_CHECK_LT(static_cast<size_t>(word_id), idf_.size());
  return idf_[word_id];
}

std::vector<float> TfIdfFeaturizer::Featurize(
    const std::vector<std::string>& tokens) const {
  std::vector<float> features(word_set_.size(), 0.0f);
  for (const auto& token : tokens) {
    const int32_t id = word_set_.IdOf(token);
    if (id != Vocabulary::kUnknownId) features[id] += 1.0f;
  }
  for (size_t k = 0; k < features.size(); ++k) features[k] *= idf_[k];
  return features;
}

Tensor TfIdfFeaturizer::FeaturizeBatch(
    const std::vector<std::vector<std::string>>& documents) const {
  Tensor out(documents.size(), word_set_.size());
  for (size_t r = 0; r < documents.size(); ++r) {
    const std::vector<float> row = Featurize(documents[r]);
    std::copy(row.begin(), row.end(), out.Row(r));
  }
  return out;
}

std::vector<std::vector<std::string>> TokenizeDocuments(
    const std::vector<std::string>& texts, bool remove_stopwords) {
  TokenizerOptions options;
  options.remove_stopwords = remove_stopwords;
  std::vector<std::vector<std::string>> documents;
  documents.reserve(texts.size());
  for (const auto& t : texts) documents.push_back(Tokenize(t, options));
  return documents;
}

Vocabulary SelectChiSquareWordSet(
    const std::vector<std::vector<std::string>>& documents,
    const std::vector<int32_t>& train_ids, const std::vector<int32_t>& targets,
    size_t num_classes, size_t k) {
  ClassWordStats stats(num_classes);
  for (int32_t id : train_ids) {
    FKD_CHECK_GE(id, 0);
    FKD_CHECK_LT(static_cast<size_t>(id), documents.size());
    stats.AddDocument(documents[id], targets[id]);
  }
  return stats.SelectTopChiSquare(k);
}

Vocabulary BuildFrequencyVocabulary(
    const std::vector<std::vector<std::string>>& documents, size_t k) {
  Vocabulary vocabulary;
  for (const auto& tokens : documents) vocabulary.AddAll(tokens);
  return vocabulary.TopK(k);
}

}  // namespace text
}  // namespace fkd
