#ifndef FKD_BASELINES_DEEPWALK_H_
#define FKD_BASELINES_DEEPWALK_H_

#include "baselines/skipgram.h"
#include "baselines/svm.h"
#include "eval/classifier.h"
#include "graph/random_walk.h"

namespace fkd {
namespace baselines {

/// DeepWalk (Perozzi et al., KDD 2014) over the homogeneous view of the
/// News-HSN: truncated random walks + skip-gram embeddings, then an SVM on
/// the embeddings (§5.1.2). Structure-only — node texts are never read.
class DeepWalkClassifier : public eval::CredibilityClassifier {
 public:
  struct Options {
    graph::RandomWalkOptions walks;
    SkipGramOptions skipgram;
    SvmOptions svm;
  };

  DeepWalkClassifier();
  explicit DeepWalkClassifier(Options options);

  std::string Name() const override { return "deepwalk"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  /// The learned node embeddings (valid after Train()).
  const Tensor& embeddings() const { return embeddings_; }

 private:
  Options options_;
  Tensor embeddings_;
  eval::Predictions predictions_;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_DEEPWALK_H_
