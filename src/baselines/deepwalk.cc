#include "baselines/deepwalk.h"

#include "baselines/embedding_util.h"

namespace fkd {
namespace baselines {

DeepWalkClassifier::DeepWalkClassifier() : DeepWalkClassifier(Options{}) {}

DeepWalkClassifier::DeepWalkClassifier(Options options)
    : options_(std::move(options)) {}

Status DeepWalkClassifier::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing graph");
  }
  Rng rng(context.seed ^ 0xDEE9'0A1CULL);

  const auto walks =
      graph::GenerateRandomWalks(*context.graph, options_.walks, &rng);
  SkipGramOptions skipgram = options_.skipgram;
  skipgram.seed = context.seed + 1;
  skipgram.observer = context.observer;
  skipgram.observer_tag = Name() + "/skipgram";
  embeddings_ =
      TrainSkipGram(walks, context.graph->TotalNodes(), skipgram, &rng);
  NormalizeRows(&embeddings_);

  SvmOptions svm = options_.svm;
  svm.seed = context.seed + 2;
  FKD_RETURN_NOT_OK(
      ClassifyByEmbeddings(embeddings_, context, svm, &predictions_));
  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> DeepWalkClassifier::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
