#include "baselines/line.h"

#include <algorithm>
#include <cmath>

#include "baselines/embedding_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/alias_table.h"
#include "obs/trace.h"

namespace fkd {
namespace baselines {

namespace {

inline double StableSigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// One SGD phase of LINE. For first-order proximity the "context" table is
/// the vertex table itself (symmetric objective); for second-order it is a
/// separate context table. When `mean_loss` is non-null the mean NCE loss
/// over all samples is accumulated into it (costs a log() per sample, so
/// only requested when an observer is attached).
void RunPhase(const std::vector<std::pair<int32_t, int32_t>>& edges,
              const graph::AliasTable& edge_sampler,
              const graph::AliasTable& noise, Tensor* vertex, Tensor* context,
              const LineOptions& options, Rng* rng, double* mean_loss) {
  FKD_TRACE_SCOPE("line/phase");
  const size_t dim = vertex->cols();
  const size_t total_samples = options.samples_per_edge * edges.size();
  std::vector<float> gradient(dim);
  double loss_sum = 0.0;
  size_t loss_samples = 0;

  for (size_t sample = 0; sample < total_samples; ++sample) {
    const double progress =
        static_cast<double>(sample) / static_cast<double>(total_samples);
    const double lr =
        std::max(options.min_learning_rate,
                 options.learning_rate * (1.0 - progress));

    const auto& [source, target] = edges[edge_sampler.Sample(rng)];
    float* v_source = vertex->Row(source);
    std::fill(gradient.begin(), gradient.end(), 0.0f);

    for (size_t k = 0; k <= options.negatives; ++k) {
      int32_t other;
      double label;
      if (k == 0) {
        other = target;
        label = 1.0;
      } else {
        other = static_cast<int32_t>(noise.Sample(rng));
        if (other == target || other == source) continue;
        label = 0.0;
      }
      float* v_other = context->Row(other);
      double dot = 0.0;
      for (size_t j = 0; j < dim; ++j) dot += v_source[j] * v_other[j];
      const double prediction = StableSigmoid(dot);
      const double g = (label - prediction) * lr;
      for (size_t j = 0; j < dim; ++j) {
        gradient[j] += static_cast<float>(g) * v_other[j];
        v_other[j] += static_cast<float>(g) * v_source[j];
      }
      if (mean_loss != nullptr) {
        const double p = label > 0.5 ? prediction : 1.0 - prediction;
        loss_sum += -std::log(std::max(p, 1e-12));
        ++loss_samples;
      }
    }
    for (size_t j = 0; j < dim; ++j) v_source[j] += gradient[j];
  }
  if (mean_loss != nullptr && loss_samples > 0) {
    *mean_loss = loss_sum / static_cast<double>(loss_samples);
  }
}

}  // namespace

Tensor TrainLine(const graph::HeterogeneousGraph& graph,
                 const LineOptions& options, Rng* rng) {
  FKD_CHECK(rng != nullptr);
  FKD_CHECK(graph.finalized());
  FKD_CHECK_GE(options.dim, 2u);
  const size_t n = graph.TotalNodes();
  const size_t half = options.dim / 2;

  const auto& edges = graph.GlobalEdges();
  Tensor result(n, 2 * half);
  if (edges.empty()) return result;

  // Uniform edge weights (the News-HSN is unweighted) and degree^0.75
  // noise, as in the LINE paper.
  graph::AliasTable edge_sampler(std::vector<double>(edges.size(), 1.0));
  std::vector<double> degrees(n, 0.0);
  for (const auto& [source, target] : edges) {
    (void)target;
    degrees[source] += 1.0;
  }
  for (double& d : degrees) d = std::pow(std::max(d, 1e-9), 0.75);
  graph::AliasTable noise(degrees);

  obs::TrainObserver* observer = options.observer;
  obs::NotifyTrainBegin(observer, options.observer_tag, /*planned_epochs=*/2);
  WallTimer train_timer;
  WallTimer phase_timer;
  double phase_loss = 0.0;
  auto notify_phase = [&](size_t phase) {
    obs::EpochStats stats;
    stats.epoch = phase;
    stats.loss = static_cast<float>(phase_loss);
    stats.seconds = phase_timer.ElapsedSeconds();
    stats.total_seconds = train_timer.ElapsedSeconds();
    obs::NotifyEpochEnd(observer, options.observer_tag, stats);
  };

  // First order: symmetric vertex-vertex objective.
  Tensor first = Tensor::Rand(n, half, rng, -0.5f / half, 0.5f / half);
  RunPhase(edges, edge_sampler, noise, &first, &first, options, rng,
           observer != nullptr ? &phase_loss : nullptr);
  if (observer != nullptr) notify_phase(0);

  // Second order: vertex-context objective.
  phase_timer.Restart();
  Tensor second = Tensor::Rand(n, half, rng, -0.5f / half, 0.5f / half);
  Tensor context(n, half);
  RunPhase(edges, edge_sampler, noise, &second, &context, options, rng,
           observer != nullptr ? &phase_loss : nullptr);
  if (observer != nullptr) notify_phase(1);

  NormalizeRows(&first);
  NormalizeRows(&second);
  for (size_t r = 0; r < n; ++r) {
    std::copy(first.Row(r), first.Row(r) + half, result.Row(r));
    std::copy(second.Row(r), second.Row(r) + half, result.Row(r) + half);
  }
  obs::NotifyTrainEnd(observer, options.observer_tag, /*epochs_run=*/2,
                      train_timer.ElapsedSeconds());
  return result;
}

LineClassifier::LineClassifier() : LineClassifier(Options{}) {}

LineClassifier::LineClassifier(Options options) : options_(std::move(options)) {}

Status LineClassifier::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing graph");
  }
  Rng rng(context.seed ^ 0x11E'ED6EULL);
  LineOptions line = options_.line;
  line.observer = context.observer;
  line.observer_tag = Name();
  embeddings_ = TrainLine(*context.graph, line, &rng);

  SvmOptions svm = options_.svm;
  svm.seed = context.seed + 3;
  FKD_RETURN_NOT_OK(
      ClassifyByEmbeddings(embeddings_, context, svm, &predictions_));
  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> LineClassifier::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
