#include "baselines/rnn_classifier.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "text/features.h"
#include "text/vocabulary.h"

namespace fkd {
namespace baselines {

namespace ag = ::fkd::autograd;

RnnClassifier::RnnClassifier() : RnnClassifier(Options{}) {}

RnnClassifier::RnnClassifier(Options options) : options_(std::move(options)) {}

namespace {

std::vector<int32_t> ArgmaxRows(const Tensor& logits) {
  std::vector<int32_t> out(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.Row(r);
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<int32_t>(best);
  }
  return out;
}

/// Trains one GRU-classifier for one node type and predicts all its nodes.
/// `method_tag` labels observer callbacks ("rnn/articles", ...).
Status FitNodeType(const std::vector<std::string>& texts,
                   const std::vector<int32_t>& train_ids,
                   const std::vector<int32_t>& targets, size_t num_classes,
                   const RnnClassifier::Options& options, uint64_t seed,
                   const std::string& method_tag,
                   obs::TrainObserver* observer,
                   std::vector<int32_t>* predictions) {
  FKD_TRACE_SCOPE("rnn/fit");
  const auto documents = text::TokenizeDocuments(texts);
  const text::Vocabulary vocabulary =
      text::BuildFrequencyVocabulary(documents, options.vocabulary);

  std::vector<std::vector<int32_t>> sequences;
  sequences.reserve(documents.size());
  for (const auto& tokens : documents) {
    sequences.push_back(
        vocabulary.EncodePadded(tokens, options.max_sequence_length));
  }

  std::vector<std::vector<int32_t>> train_sequences;
  std::vector<int32_t> train_targets;
  train_sequences.reserve(train_ids.size());
  for (int32_t id : train_ids) {
    train_sequences.push_back(sequences[id]);
    train_targets.push_back(targets[id]);
  }

  Rng rng(seed);
  nn::RecurrentEncoder encoder(std::max<size_t>(1, vocabulary.size()),
                               options.embed_dim, options.hidden_dim, &rng,
                               nn::SequencePooling::kLastState, options.cell);
  nn::Linear head(options.hidden_dim, num_classes, &rng);

  std::vector<ag::Variable> parameters;
  {
    std::vector<nn::NamedParameter> named;
    encoder.CollectParameters("encoder", &named);
    head.CollectParameters("head", &named);
    for (auto& p : named) parameters.push_back(p.variable);
  }
  nn::Adam optimizer(parameters, options.learning_rate);

  obs::NotifyTrainBegin(observer, method_tag, options.epochs);
  WallTimer train_timer;
  WallTimer epoch_timer;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    epoch_timer.Restart();
    optimizer.ZeroGrad();
    const ag::Variable hidden =
        encoder.Forward(train_sequences, options.max_sequence_length);
    const ag::Variable loss =
        ag::SoftmaxCrossEntropy(head.Forward(hidden), train_targets);
    ag::Backward(loss);
    const float grad_norm = nn::ClipGradNorm(parameters, options.grad_clip);
    optimizer.Step();

    obs::EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss.scalar();
    stats.grad_norm = grad_norm;
    stats.seconds = epoch_timer.ElapsedSeconds();
    stats.total_seconds = train_timer.ElapsedSeconds();
    obs::NotifyEpochEnd(observer, method_tag, stats);
  }
  obs::NotifyTrainEnd(observer, method_tag, options.epochs,
                      train_timer.ElapsedSeconds());

  const ag::Variable hidden =
      encoder.Forward(sequences, options.max_sequence_length);
  *predictions = ArgmaxRows(head.Forward(hidden).value());
  return Status::OK();
}

}  // namespace

Status RnnClassifier::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.dataset == nullptr) {
    return Status::InvalidArgument("TrainContext missing dataset");
  }
  if (context.train_articles.empty() || context.train_creators.empty() ||
      context.train_subjects.empty()) {
    return Status::InvalidArgument("empty training set for some node type");
  }
  const data::Dataset& dataset = *context.dataset;
  const size_t num_classes = eval::NumClasses(context.granularity);

  std::vector<std::string> texts;
  std::vector<int32_t> targets;

  texts.clear();
  targets.assign(dataset.articles.size(), 0);
  for (const auto& a : dataset.articles) {
    texts.push_back(a.text);
    targets[a.id] = eval::TargetOf(a.label, context.granularity);
  }
  FKD_RETURN_NOT_OK(FitNodeType(texts, context.train_articles, targets,
                                num_classes, options_, context.seed + 101,
                                "rnn/articles", context.observer,
                                &predictions_.articles));

  texts.clear();
  targets.assign(dataset.creators.size(), 0);
  for (const auto& c : dataset.creators) {
    texts.push_back(c.profile);
    targets[c.id] = eval::TargetOf(c.label, context.granularity);
  }
  FKD_RETURN_NOT_OK(FitNodeType(texts, context.train_creators, targets,
                                num_classes, options_, context.seed + 202,
                                "rnn/creators", context.observer,
                                &predictions_.creators));

  texts.clear();
  targets.assign(dataset.subjects.size(), 0);
  for (const auto& s : dataset.subjects) {
    texts.push_back(s.description);
    targets[s.id] = eval::TargetOf(s.label, context.granularity);
  }
  FKD_RETURN_NOT_OK(FitNodeType(texts, context.train_subjects, targets,
                                num_classes, options_, context.seed + 303,
                                "rnn/subjects", context.observer,
                                &predictions_.subjects));

  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> RnnClassifier::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
