#ifndef FKD_BASELINES_LABEL_PROPAGATION_H_
#define FKD_BASELINES_LABEL_PROPAGATION_H_

#include "eval/classifier.h"

namespace fkd {
namespace baselines {

/// The paper's "Propagation" / "lp" baseline [29]: numeric credibility
/// scores propagate over the heterogeneous network with per-link-type
/// weights; labelled training nodes stay clamped to their known scores and
/// the final scores are rounded back to class labels (§5.1.2: "the
/// prediction score will be rounded and cast into labels").
class LabelPropagation : public eval::CredibilityClassifier {
 public:
  struct Options {
    size_t max_iterations = 300;
    /// Scores are rounded to labels at the end, so convergence far below
    /// half a label step is unnecessary.
    double tolerance = 1e-4;
    /// Relative influence of the two link types during propagation.
    double authorship_weight = 1.0;
    double subject_weight = 1.0;
  };

  LabelPropagation();
  explicit LabelPropagation(Options options);

  std::string Name() const override { return "lp"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  /// Iterations until convergence in the last Train() (diagnostics).
  size_t iterations_run() const { return iterations_run_; }

 private:
  Options options_;
  eval::Predictions predictions_;
  size_t iterations_run_ = 0;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_LABEL_PROPAGATION_H_
