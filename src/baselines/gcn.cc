#include "baselines/gcn.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "text/features.h"

namespace fkd {
namespace baselines {

namespace ag = ::fkd::autograd;

GcnClassifier::GcnClassifier() : GcnClassifier(Options{}) {}

GcnClassifier::GcnClassifier(Options options) : options_(std::move(options)) {}

namespace {

std::vector<int32_t> ArgmaxRows(const Tensor& logits) {
  std::vector<int32_t> out(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.Row(r);
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<int32_t>(best);
  }
  return out;
}

}  // namespace

Status GcnClassifier::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.dataset == nullptr || context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing dataset or graph");
  }
  if (options_.layers == 0) {
    return Status::InvalidArgument("gcn needs at least one layer");
  }
  const data::Dataset& dataset = *context.dataset;
  const graph::HeterogeneousGraph& graph = *context.graph;
  const size_t num_classes = eval::NumClasses(context.granularity);
  const size_t total = graph.TotalNodes();

  // --- Node features: [type one-hot | shared-vocabulary BoW] ---------------
  std::vector<std::string> texts(total);
  for (const auto& a : dataset.articles) {
    texts[graph.GlobalId(graph::NodeType::kArticle, a.id)] = a.text;
  }
  for (const auto& c : dataset.creators) {
    texts[graph.GlobalId(graph::NodeType::kCreator, c.id)] = c.profile;
  }
  for (const auto& s : dataset.subjects) {
    texts[graph.GlobalId(graph::NodeType::kSubject, s.id)] = s.description;
  }
  const auto documents = text::TokenizeDocuments(texts);
  const text::Vocabulary vocabulary =
      text::BuildFrequencyVocabulary(documents, options_.vocabulary);
  text::BowFeaturizer featurizer(vocabulary);

  const size_t feature_dim = graph::kNumNodeTypes + featurizer.dim();
  Tensor features(total, feature_dim);
  for (size_t node = 0; node < total; ++node) {
    features.At(node, static_cast<size_t>(
                          graph.TypeOfGlobal(static_cast<int32_t>(node)))) =
        1.0f;
    const auto bow = featurizer.Featurize(documents[node]);
    std::copy(bow.begin(), bow.end(),
              features.Row(node) + graph::kNumNodeTypes);
  }
  const ag::Variable x(features, /*requires_grad=*/false, "gcn/features");

  // Mean-aggregation neighbourhoods of the homogeneous view.
  std::vector<std::vector<int32_t>> neighborhoods(total);
  for (size_t node = 0; node < total; ++node) {
    const auto neighbors = graph.GlobalNeighbors(static_cast<int32_t>(node));
    neighborhoods[node].assign(neighbors.begin(), neighbors.end());
  }

  // --- Model -----------------------------------------------------------------
  Rng rng(context.seed ^ 0x6C4ULL);
  std::vector<nn::Linear> layer_maps;
  size_t in_dim = feature_dim;
  for (size_t layer = 0; layer < options_.layers; ++layer) {
    // Each layer consumes [self, mean-neighbour] concatenation.
    layer_maps.emplace_back(2 * in_dim, options_.hidden_dim, &rng);
    in_dim = options_.hidden_dim;
  }
  nn::Linear head(options_.hidden_dim, num_classes, &rng);

  std::vector<ag::Variable> parameters;
  {
    std::vector<nn::NamedParameter> named;
    for (size_t layer = 0; layer < layer_maps.size(); ++layer) {
      layer_maps[layer].CollectParameters(StrFormat("gcn/layer%zu", layer),
                                          &named);
    }
    head.CollectParameters("gcn/head", &named);
    for (auto& p : named) parameters.push_back(p.variable);
  }
  nn::Adam optimizer(parameters, options_.learning_rate);

  auto forward = [&]() {
    ag::Variable h = x;
    for (const auto& layer : layer_maps) {
      const ag::Variable aggregated = ag::GroupMeanRows(h, neighborhoods);
      h = ag::Relu(layer.Forward(ag::ConcatCols({h, aggregated})));
    }
    return head.Forward(h);
  };

  // --- Joint training set across node types ----------------------------------
  std::vector<int32_t> train_rows;
  std::vector<int32_t> train_targets;
  for (int32_t id : context.train_articles) {
    train_rows.push_back(graph.GlobalId(graph::NodeType::kArticle, id));
    train_targets.push_back(context.ArticleTarget(id));
  }
  for (int32_t id : context.train_creators) {
    train_rows.push_back(graph.GlobalId(graph::NodeType::kCreator, id));
    train_targets.push_back(context.CreatorTarget(id));
  }
  for (int32_t id : context.train_subjects) {
    train_rows.push_back(graph.GlobalId(graph::NodeType::kSubject, id));
    train_targets.push_back(context.SubjectTarget(id));
  }
  if (train_rows.empty()) {
    return Status::InvalidArgument("gcn needs training labels");
  }

  obs::TrainObserver* observer = context.observer;
  obs::NotifyTrainBegin(observer, Name(), options_.epochs);
  WallTimer train_timer;
  WallTimer epoch_timer;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    FKD_TRACE_SCOPE("gcn/epoch");
    epoch_timer.Restart();
    optimizer.ZeroGrad();
    std::vector<ag::Variable> loss_terms;
    loss_terms.push_back(ag::SoftmaxCrossEntropy(
        ag::GatherRows(forward(), train_rows), train_targets));
    if (options_.l2_weight > 0.0f) {
      std::vector<ag::Variable> penalties;
      for (const auto& p : parameters) penalties.push_back(ag::SumSquares(p));
      loss_terms.push_back(ag::Scale(ag::AddN(penalties), options_.l2_weight));
    }
    const ag::Variable loss = ag::AddN(loss_terms);
    ag::Backward(loss);
    const float grad_norm = nn::ClipGradNorm(parameters, options_.grad_clip);
    optimizer.Step();
    final_loss_ = loss.scalar();

    obs::EpochStats stats;
    stats.epoch = epoch;
    stats.loss = final_loss_;
    stats.grad_norm = grad_norm;
    stats.seconds = epoch_timer.ElapsedSeconds();
    stats.total_seconds = train_timer.ElapsedSeconds();
    obs::NotifyEpochEnd(observer, Name(), stats);
  }
  obs::NotifyTrainEnd(observer, Name(), options_.epochs,
                      train_timer.ElapsedSeconds());

  const Tensor logits = forward().value();
  const auto all = ArgmaxRows(logits);
  predictions_.articles.resize(dataset.articles.size());
  predictions_.creators.resize(dataset.creators.size());
  predictions_.subjects.resize(dataset.subjects.size());
  for (const auto& a : dataset.articles) {
    predictions_.articles[a.id] =
        all[graph.GlobalId(graph::NodeType::kArticle, a.id)];
  }
  for (const auto& c : dataset.creators) {
    predictions_.creators[c.id] =
        all[graph.GlobalId(graph::NodeType::kCreator, c.id)];
  }
  for (const auto& s : dataset.subjects) {
    predictions_.subjects[s.id] =
        all[graph.GlobalId(graph::NodeType::kSubject, s.id)];
  }
  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> GcnClassifier::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
