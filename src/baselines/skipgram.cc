#include "baselines/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "graph/alias_table.h"
#include "obs/trace.h"

namespace fkd {
namespace baselines {

namespace {

inline double StableSigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

}  // namespace

Tensor TrainSkipGram(const std::vector<std::vector<int32_t>>& sentences,
                     size_t vocab_size, const SkipGramOptions& options,
                     Rng* rng) {
  FKD_CHECK(rng != nullptr);
  FKD_CHECK_GT(vocab_size, 0u);
  FKD_CHECK_GT(options.dim, 0u);
  FKD_CHECK_GT(options.window, 0u);

  const size_t dim = options.dim;
  // word2vec init: inputs U(-0.5/dim, 0.5/dim), outputs zero.
  Tensor input = Tensor::Rand(vocab_size, dim, rng, -0.5f / dim, 0.5f / dim);
  Tensor output(vocab_size, dim);

  // Unigram^0.75 noise distribution over observed tokens.
  std::vector<double> counts(vocab_size, 0.0);
  size_t total_tokens = 0;
  for (const auto& sentence : sentences) {
    for (int32_t token : sentence) {
      FKD_CHECK_GE(token, 0);
      FKD_CHECK_LT(static_cast<size_t>(token), vocab_size);
      counts[token] += 1.0;
      ++total_tokens;
    }
  }
  if (total_tokens == 0) return input;
  for (double& c : counts) c = std::pow(c, 0.75);
  graph::AliasTable noise(counts);

  const size_t total_work = options.epochs * total_tokens;
  size_t work_done = 0;
  std::vector<float> gradient(dim);

  obs::TrainObserver* observer = options.observer;
  obs::NotifyTrainBegin(observer, options.observer_tag, options.epochs);
  WallTimer train_timer;
  WallTimer epoch_timer;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    FKD_TRACE_SCOPE("skipgram/epoch");
    epoch_timer.Restart();
    double epoch_loss = 0.0;
    size_t epoch_samples = 0;
    for (const auto& sentence : sentences) {
      for (size_t position = 0; position < sentence.size(); ++position) {
        const double progress =
            static_cast<double>(work_done++) / static_cast<double>(total_work);
        const double lr = std::max(
            options.min_learning_rate,
            options.learning_rate * (1.0 - progress));

        const int32_t center = sentence[position];
        const size_t b = 1 + rng->UniformInt(options.window);
        const size_t lo = position >= b ? position - b : 0;
        const size_t hi = std::min(sentence.size() - 1, position + b);
        for (size_t context_pos = lo; context_pos <= hi; ++context_pos) {
          if (context_pos == position) continue;
          const int32_t context = sentence[context_pos];
          float* v_center = input.Row(center);
          std::fill(gradient.begin(), gradient.end(), 0.0f);

          // One positive plus `negatives` noise samples.
          for (size_t sample = 0; sample <= options.negatives; ++sample) {
            int32_t target;
            double label;
            if (sample == 0) {
              target = context;
              label = 1.0;
            } else {
              target = static_cast<int32_t>(noise.Sample(rng));
              if (target == context) continue;
              label = 0.0;
            }
            float* v_target = output.Row(target);
            double dot = 0.0;
            for (size_t j = 0; j < dim; ++j) dot += v_center[j] * v_target[j];
            const double prediction = StableSigmoid(dot);
            const double g = (label - prediction) * lr;
            for (size_t j = 0; j < dim; ++j) {
              gradient[j] += static_cast<float>(g) * v_target[j];
              v_target[j] += static_cast<float>(g) * v_center[j];
            }
            if (observer != nullptr) {
              const double p =
                  label > 0.5 ? prediction : 1.0 - prediction;
              epoch_loss += -std::log(std::max(p, 1e-12));
              ++epoch_samples;
            }
          }
          for (size_t j = 0; j < dim; ++j) v_center[j] += gradient[j];
        }
      }
    }
    if (observer != nullptr) {
      obs::EpochStats stats;
      stats.epoch = epoch;
      if (epoch_samples > 0) {
        stats.loss =
            static_cast<float>(epoch_loss / static_cast<double>(epoch_samples));
      }
      stats.seconds = epoch_timer.ElapsedSeconds();
      stats.total_seconds = train_timer.ElapsedSeconds();
      obs::NotifyEpochEnd(observer, options.observer_tag, stats);
    }
  }
  obs::NotifyTrainEnd(observer, options.observer_tag, options.epochs,
                      train_timer.ElapsedSeconds());
  return input;
}

}  // namespace baselines
}  // namespace fkd
