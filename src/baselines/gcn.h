#ifndef FKD_BASELINES_GCN_H_
#define FKD_BASELINES_GCN_H_

#include "eval/classifier.h"

namespace fkd {
namespace baselines {

/// Graph convolutional network (Kipf & Welling 2017) over the homogeneous
/// view of the News-HSN — an extension baseline from the GNN generation
/// that followed the paper. Node features are a type one-hot concatenated
/// with bag-of-words counts over a shared frequency vocabulary; each layer
/// computes ReLU([X, mean-neighbour-agg(X)] W); a shared softmax head
/// classifies all nodes, trained on the union of the three labelled sets.
///
/// Differences from FakeDetector it is designed to probe: no per-type
/// parameters, no gating, no latent sequence features.
class GcnClassifier : public eval::CredibilityClassifier {
 public:
  struct Options {
    size_t vocabulary = 300;
    size_t hidden_dim = 48;
    size_t layers = 2;
    size_t epochs = 120;
    float learning_rate = 0.01f;
    float l2_weight = 5e-4f;
    float grad_clip = 5.0f;
  };

  GcnClassifier();
  explicit GcnClassifier(Options options);

  std::string Name() const override { return "gcn"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  /// Final training loss (diagnostics; valid after Train()).
  float final_loss() const { return final_loss_; }

 private:
  Options options_;
  eval::Predictions predictions_;
  float final_loss_ = 0.0f;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_GCN_H_
