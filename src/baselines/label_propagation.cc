#include "baselines/label_propagation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fkd {
namespace baselines {

namespace {

/// Score of a training node in the propagation space: the paper's numeric
/// credibility (1..6) for multi-class, the bi-class indicator for binary.
double ScoreOf(data::CredibilityLabel label,
               eval::LabelGranularity granularity) {
  return granularity == eval::LabelGranularity::kBinary
             ? static_cast<double>(data::BiClassOf(label))
             : static_cast<double>(data::NumericScore(label));
}

/// Rounds a propagated score back to a class id.
int32_t ClassOfScore(double score, eval::LabelGranularity granularity) {
  if (granularity == eval::LabelGranularity::kBinary) {
    return score >= 0.5 ? 1 : 0;
  }
  return data::MultiClassOf(data::LabelFromScore(score));
}

}  // namespace

LabelPropagation::LabelPropagation() : LabelPropagation(Options{}) {}

LabelPropagation::LabelPropagation(Options options)
    : options_(std::move(options)) {}

Status LabelPropagation::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.dataset == nullptr || context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing dataset or graph");
  }
  const data::Dataset& dataset = *context.dataset;
  const graph::HeterogeneousGraph& graph = *context.graph;

  const size_t num_articles = dataset.articles.size();
  const size_t num_creators = dataset.creators.size();
  const size_t num_subjects = dataset.subjects.size();

  // Clamped known scores and the global mean for unlabelled initialisation.
  std::vector<double> article_clamp(num_articles, -1.0);
  std::vector<double> creator_clamp(num_creators, -1.0);
  std::vector<double> subject_clamp(num_subjects, -1.0);
  double known_total = 0.0;
  size_t known_count = 0;
  for (int32_t id : context.train_articles) {
    article_clamp[id] = ScoreOf(dataset.articles[id].label, context.granularity);
    known_total += article_clamp[id];
    ++known_count;
  }
  for (int32_t id : context.train_creators) {
    creator_clamp[id] = ScoreOf(dataset.creators[id].label, context.granularity);
    known_total += creator_clamp[id];
    ++known_count;
  }
  for (int32_t id : context.train_subjects) {
    subject_clamp[id] = ScoreOf(dataset.subjects[id].label, context.granularity);
    known_total += subject_clamp[id];
    ++known_count;
  }
  if (known_count == 0) {
    return Status::InvalidArgument("label propagation needs training labels");
  }
  const double mean_score = known_total / static_cast<double>(known_count);

  std::vector<double> articles(num_articles, mean_score);
  std::vector<double> creators(num_creators, mean_score);
  std::vector<double> subjects(num_subjects, mean_score);
  auto clamp_all = [&]() {
    for (size_t i = 0; i < num_articles; ++i) {
      if (article_clamp[i] >= 0.0) articles[i] = article_clamp[i];
    }
    for (size_t i = 0; i < num_creators; ++i) {
      if (creator_clamp[i] >= 0.0) creators[i] = creator_clamp[i];
    }
    for (size_t i = 0; i < num_subjects; ++i) {
      if (subject_clamp[i] >= 0.0) subjects[i] = subject_clamp[i];
    }
  };
  clamp_all();

  const double w_author = options_.authorship_weight;
  const double w_subject = options_.subject_weight;

  iterations_run_ = 0;
  for (size_t iteration = 0; iteration < options_.max_iterations;
       ++iteration) {
    ++iterations_run_;
    double max_delta = 0.0;

    // Articles: typed-weighted mean of creator and subject neighbours.
    // Clamped (labelled) nodes are never updated, so max_delta measures
    // only the free nodes and convergence is well defined.
    std::vector<double> next_articles = articles;
    for (size_t a = 0; a < num_articles; ++a) {
      if (article_clamp[a] >= 0.0) continue;
      const auto creators_of =
          graph.ArticleNeighbors(graph::EdgeType::kAuthorship,
                                 static_cast<int32_t>(a));
      const auto subjects_of =
          graph.ArticleNeighbors(graph::EdgeType::kSubjectIndication,
                                 static_cast<int32_t>(a));
      double total = 0.0;
      double weight = 0.0;
      if (!creators_of.empty()) {
        double sum = 0.0;
        for (int32_t u : creators_of) sum += creators[u];
        total += w_author * sum / static_cast<double>(creators_of.size());
        weight += w_author;
      }
      if (!subjects_of.empty()) {
        double sum = 0.0;
        for (int32_t s : subjects_of) sum += subjects[s];
        total += w_subject * sum / static_cast<double>(subjects_of.size());
        weight += w_subject;
      }
      if (weight > 0.0) next_articles[a] = total / weight;
    }

    // Gauss-Seidel sweep: commit the article update first so creators and
    // subjects read the *new* article scores. Pure Jacobi oscillates with
    // period two on this bipartite-like structure and never converges.
    for (size_t i = 0; i < num_articles; ++i) {
      max_delta = std::max(max_delta, std::fabs(next_articles[i] - articles[i]));
    }
    articles = std::move(next_articles);

    std::vector<double> next_creators = creators;
    for (size_t u = 0; u < num_creators; ++u) {
      if (creator_clamp[u] >= 0.0) continue;
      const auto articles_of = graph.ReverseNeighbors(
          graph::EdgeType::kAuthorship, static_cast<int32_t>(u));
      if (articles_of.empty()) continue;
      double sum = 0.0;
      for (int32_t a : articles_of) sum += articles[a];
      next_creators[u] = sum / static_cast<double>(articles_of.size());
    }
    std::vector<double> next_subjects = subjects;
    for (size_t s = 0; s < num_subjects; ++s) {
      if (subject_clamp[s] >= 0.0) continue;
      const auto articles_of = graph.ReverseNeighbors(
          graph::EdgeType::kSubjectIndication, static_cast<int32_t>(s));
      if (articles_of.empty()) continue;
      double sum = 0.0;
      for (int32_t a : articles_of) sum += articles[a];
      next_subjects[s] = sum / static_cast<double>(articles_of.size());
    }

    for (size_t i = 0; i < num_creators; ++i) {
      max_delta = std::max(max_delta, std::fabs(next_creators[i] - creators[i]));
    }
    for (size_t i = 0; i < num_subjects; ++i) {
      max_delta = std::max(max_delta, std::fabs(next_subjects[i] - subjects[i]));
    }

    creators = std::move(next_creators);
    subjects = std::move(next_subjects);

    if (max_delta < options_.tolerance) break;
  }

  predictions_.articles.resize(num_articles);
  predictions_.creators.resize(num_creators);
  predictions_.subjects.resize(num_subjects);
  for (size_t i = 0; i < num_articles; ++i) {
    predictions_.articles[i] = ClassOfScore(articles[i], context.granularity);
  }
  for (size_t i = 0; i < num_creators; ++i) {
    predictions_.creators[i] = ClassOfScore(creators[i], context.granularity);
  }
  for (size_t i = 0; i < num_subjects; ++i) {
    predictions_.subjects[i] = ClassOfScore(subjects[i], context.granularity);
  }
  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> LabelPropagation::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
