#ifndef FKD_BASELINES_EMBEDDING_UTIL_H_
#define FKD_BASELINES_EMBEDDING_UTIL_H_

#include "baselines/svm.h"
#include "eval/classifier.h"
#include "tensor/tensor.h"

namespace fkd {
namespace baselines {

/// Shared back end of the network-embedding baselines (DeepWalk, LINE):
/// given embeddings for every node of the homogeneous view (row = global
/// id), fits one one-vs-rest linear SVM per node type on the training
/// nodes' embeddings and predicts every node — the paper: "based on the
/// learned embedding results, we can further build a SVM model to
/// determine the class labels".
Status ClassifyByEmbeddings(const Tensor& embeddings,
                            const eval::TrainContext& context,
                            const SvmOptions& svm_options,
                            eval::Predictions* predictions);

/// L2-normalises every row in place (zero rows stay zero). Embedding
/// methods call this before classification so SVM margins are
/// scale-comparable.
void NormalizeRows(Tensor* embeddings);

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_EMBEDDING_UTIL_H_
