#ifndef FKD_BASELINES_NODE2VEC_H_
#define FKD_BASELINES_NODE2VEC_H_

#include "baselines/skipgram.h"
#include "baselines/svm.h"
#include "eval/classifier.h"
#include "graph/random_walk.h"

namespace fkd {
namespace baselines {

/// node2vec (Grover & Leskovec, KDD 2016): second-order biased random walks
/// + skip-gram embeddings + SVM — an extension baseline generalising
/// DeepWalk (which it reduces to at p = q = 1). Not in the paper's
/// comparison set; included to probe whether walk bias matters on the
/// News-HSN.
class Node2VecClassifier : public eval::CredibilityClassifier {
 public:
  struct Options {
    graph::Node2VecOptions walks;
    SkipGramOptions skipgram;
    SvmOptions svm;
  };

  Node2VecClassifier();
  explicit Node2VecClassifier(Options options);

  std::string Name() const override { return "node2vec"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  const Tensor& embeddings() const { return embeddings_; }

 private:
  Options options_;
  Tensor embeddings_;
  eval::Predictions predictions_;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_NODE2VEC_H_
