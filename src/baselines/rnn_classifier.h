#ifndef FKD_BASELINES_RNN_CLASSIFIER_H_
#define FKD_BASELINES_RNN_CLASSIFIER_H_

#include "eval/classifier.h"
#include "nn/layers.h"

namespace fkd {
namespace baselines {

/// The paper's "rnn" baseline [42]: a GRU sequence classifier over the raw
/// token sequence of each entity's text (latent features only — no explicit
/// word-set features, no graph). One independent model per node type.
class RnnClassifier : public eval::CredibilityClassifier {
 public:
  struct Options {
    /// Recurrent cell; [42] describes an Elman-style network but GRU is
    /// the stronger modern reading — both are available.
    nn::RnnCellKind cell = nn::RnnCellKind::kGru;
    size_t vocabulary = 1000;
    size_t embed_dim = 24;
    size_t hidden_dim = 32;
    size_t max_sequence_length = 24;
    size_t epochs = 50;
    float learning_rate = 0.01f;
    float grad_clip = 5.0f;
  };

  RnnClassifier();
  explicit RnnClassifier(Options options);

  std::string Name() const override { return "rnn"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

 private:
  Options options_;
  eval::Predictions predictions_;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_RNN_CLASSIFIER_H_
