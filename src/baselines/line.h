#ifndef FKD_BASELINES_LINE_H_
#define FKD_BASELINES_LINE_H_

#include "baselines/svm.h"
#include "common/rng.h"
#include "eval/classifier.h"
#include "graph/hetero_graph.h"
#include "tensor/tensor.h"

namespace fkd {
namespace baselines {

/// Hyper-parameters of the LINE embedding trainer.
struct LineOptions {
  /// Total embedding width; split evenly between the first-order and
  /// second-order components (Tang et al. concatenate both).
  size_t dim = 64;
  size_t negatives = 5;
  double learning_rate = 0.025;
  double min_learning_rate = 0.0001;
  /// Edge samples drawn per direction-edge of the graph.
  size_t samples_per_edge = 20;

  /// Optional telemetry: one OnEpochEnd per SGD phase (first-order then
  /// second-order) with the phase's mean NCE loss and wall time. Not owned;
  /// may be null.
  obs::TrainObserver* observer = nullptr;
  /// Method tag for observer callbacks.
  std::string observer_tag = "line";
};

/// Trains LINE embeddings (first-order + second-order proximity, alias-
/// method edge sampling, negative sampling) over the homogeneous view.
/// Returns [total_nodes x dim] with rows L2-normalised per half.
Tensor TrainLine(const graph::HeterogeneousGraph& graph,
                 const LineOptions& options, Rng* rng);

/// The paper's "line" baseline: LINE embeddings + SVM per node type.
/// Structure-only.
class LineClassifier : public eval::CredibilityClassifier {
 public:
  struct Options {
    LineOptions line;
    SvmOptions svm;
  };

  LineClassifier();
  explicit LineClassifier(Options options);

  std::string Name() const override { return "line"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  const Tensor& embeddings() const { return embeddings_; }

 private:
  Options options_;
  Tensor embeddings_;
  eval::Predictions predictions_;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_LINE_H_
