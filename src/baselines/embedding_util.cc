#include "baselines/embedding_util.h"

#include <cmath>

#include "common/logging.h"

namespace fkd {
namespace baselines {

namespace {

Status FitOneType(const Tensor& embeddings,
                  const graph::HeterogeneousGraph& graph,
                  graph::NodeType type, const std::vector<int32_t>& train_ids,
                  const std::vector<int32_t>& targets, size_t num_classes,
                  const SvmOptions& svm_options,
                  std::vector<int32_t>* predictions) {
  const size_t n = graph.NumNodes(type);
  const size_t dim = embeddings.cols();

  Tensor train_features(train_ids.size(), dim);
  std::vector<int32_t> train_targets;
  train_targets.reserve(train_ids.size());
  for (size_t i = 0; i < train_ids.size(); ++i) {
    const int32_t global = graph.GlobalId(type, train_ids[i]);
    std::copy(embeddings.Row(global), embeddings.Row(global) + dim,
              train_features.Row(i));
    train_targets.push_back(targets[train_ids[i]]);
  }

  OneVsRestSvm svm(num_classes, svm_options);
  FKD_RETURN_NOT_OK(svm.Train(train_features, train_targets));

  predictions->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int32_t global = graph.GlobalId(type, static_cast<int32_t>(i));
    (*predictions)[i] = svm.Predict(embeddings.Row(global), dim);
  }
  return Status::OK();
}

}  // namespace

void NormalizeRows(Tensor* embeddings) {
  FKD_CHECK(embeddings != nullptr);
  for (size_t r = 0; r < embeddings->rows(); ++r) {
    float* row = embeddings->Row(r);
    double norm_sq = 0.0;
    for (size_t c = 0; c < embeddings->cols(); ++c) {
      norm_sq += static_cast<double>(row[c]) * row[c];
    }
    if (norm_sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (size_t c = 0; c < embeddings->cols(); ++c) row[c] *= inv;
  }
}

Status ClassifyByEmbeddings(const Tensor& embeddings,
                            const eval::TrainContext& context,
                            const SvmOptions& svm_options,
                            eval::Predictions* predictions) {
  FKD_CHECK(predictions != nullptr);
  if (context.dataset == nullptr || context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing dataset or graph");
  }
  const data::Dataset& dataset = *context.dataset;
  const graph::HeterogeneousGraph& graph = *context.graph;
  if (embeddings.rows() != graph.TotalNodes()) {
    return Status::InvalidArgument("embeddings row count != total nodes");
  }
  const size_t num_classes = eval::NumClasses(context.granularity);

  std::vector<int32_t> targets(dataset.articles.size());
  for (const auto& a : dataset.articles) {
    targets[a.id] = eval::TargetOf(a.label, context.granularity);
  }
  FKD_RETURN_NOT_OK(FitOneType(embeddings, graph, graph::NodeType::kArticle,
                               context.train_articles, targets, num_classes,
                               svm_options, &predictions->articles));

  targets.assign(dataset.creators.size(), 0);
  for (const auto& c : dataset.creators) {
    targets[c.id] = eval::TargetOf(c.label, context.granularity);
  }
  FKD_RETURN_NOT_OK(FitOneType(embeddings, graph, graph::NodeType::kCreator,
                               context.train_creators, targets, num_classes,
                               svm_options, &predictions->creators));

  targets.assign(dataset.subjects.size(), 0);
  for (const auto& s : dataset.subjects) {
    targets[s.id] = eval::TargetOf(s.label, context.granularity);
  }
  FKD_RETURN_NOT_OK(FitOneType(embeddings, graph, graph::NodeType::kSubject,
                               context.train_subjects, targets, num_classes,
                               svm_options, &predictions->subjects));
  return Status::OK();
}

}  // namespace baselines
}  // namespace fkd
