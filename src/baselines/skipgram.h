#ifndef FKD_BASELINES_SKIPGRAM_H_
#define FKD_BASELINES_SKIPGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/observer.h"
#include "tensor/tensor.h"

namespace fkd {
namespace baselines {

/// Hyper-parameters of the skip-gram-with-negative-sampling trainer.
struct SkipGramOptions {
  size_t dim = 64;
  /// Maximum one-sided context window (sampled uniformly per centre, as
  /// word2vec does).
  size_t window = 5;
  size_t negatives = 5;
  double learning_rate = 0.025;
  /// Linear LR decay floor.
  double min_learning_rate = 0.0001;
  size_t epochs = 2;
  uint64_t seed = 1;

  /// Optional per-epoch telemetry (mean NCE loss + wall time). The loss is
  /// only accumulated when an observer is attached, keeping the hot loop
  /// free of log() calls otherwise. Not owned; may be null.
  obs::TrainObserver* observer = nullptr;
  /// Method tag for observer callbacks ("deepwalk/skipgram", ...).
  std::string observer_tag = "skipgram";
};

/// Trains skip-gram embeddings with negative sampling (Mikolov et al. 2013)
/// over token sequences — DeepWalk's learning component, with walks as the
/// corpus and node ids as the vocabulary. Negative samples follow the
/// unigram^0.75 distribution. Returns the input-embedding matrix
/// [vocab_size x dim]; tokens never observed keep their random init.
Tensor TrainSkipGram(const std::vector<std::vector<int32_t>>& sentences,
                     size_t vocab_size, const SkipGramOptions& options,
                     Rng* rng);

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_SKIPGRAM_H_
