#include "baselines/svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "text/features.h"

namespace fkd {
namespace baselines {

LinearSvm::LinearSvm(SvmOptions options) : options_(std::move(options)) {}

Status LinearSvm::Train(const Tensor& features,
                        const std::vector<int32_t>& labels) {
  const size_t n = features.rows();
  const size_t d = features.cols();
  if (labels.size() != n) {
    return Status::InvalidArgument("labels/features row mismatch");
  }
  if (n == 0) return Status::InvalidArgument("empty training set");
  for (int32_t y : labels) {
    if (y != 1 && y != -1) {
      return Status::InvalidArgument("binary SVM labels must be +1/-1");
    }
  }

  // Dual coordinate descent for the L1-loss L2-regularised SVM
  // (Hsieh et al. 2008, the LIBLINEAR solver). The bias is folded in as a
  // constant feature of value 1.
  const size_t dim = d + 1;
  weights_.assign(dim, 0.0);
  std::vector<double> alpha(n, 0.0);
  // Q_ii = x_i . x_i (including bias feature).
  std::vector<double> q_diagonal(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const float* x = features.Row(i);
    for (size_t j = 0; j < d; ++j) {
      q_diagonal[i] += static_cast<double>(x[j]) * x[j];
    }
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (size_t iteration = 0; iteration < options_.max_iterations;
       ++iteration) {
    rng.Shuffle(&order);
    double max_violation = 0.0;
    for (size_t i : order) {
      const float* x = features.Row(i);
      const double y = static_cast<double>(labels[i]);
      // G = y * (w . x) - 1
      double wx = weights_[d];  // bias feature.
      for (size_t j = 0; j < d; ++j) wx += weights_[j] * x[j];
      const double gradient = y * wx - 1.0;

      // Projected gradient for the box constraint 0 <= alpha <= C.
      double projected = gradient;
      if (alpha[i] <= 0.0) projected = std::min(gradient, 0.0);
      if (alpha[i] >= options_.c) projected = std::max(gradient, 0.0);
      max_violation = std::max(max_violation, std::fabs(projected));
      if (std::fabs(projected) < 1e-12) continue;

      const double old_alpha = alpha[i];
      alpha[i] = std::clamp(old_alpha - gradient / q_diagonal[i], 0.0,
                            options_.c);
      const double delta = (alpha[i] - old_alpha) * y;
      if (delta != 0.0) {
        for (size_t j = 0; j < d; ++j) weights_[j] += delta * x[j];
        weights_[d] += delta;
      }
    }
    if (max_violation < options_.tolerance) break;
  }
  return Status::OK();
}

double LinearSvm::Decision(const float* x, size_t d) const {
  FKD_CHECK_EQ(d + 1, weights_.size());
  double value = weights_[d];
  for (size_t j = 0; j < d; ++j) value += weights_[j] * x[j];
  return value;
}

OneVsRestSvm::OneVsRestSvm(size_t num_classes, SvmOptions options) {
  FKD_CHECK_GE(num_classes, 2u);
  machines_.reserve(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    SvmOptions machine_options = options;
    machine_options.seed = options.seed + c * 7919;
    machines_.emplace_back(machine_options);
  }
}

Status OneVsRestSvm::Train(const Tensor& features,
                           const std::vector<int32_t>& labels) {
  for (int32_t y : labels) {
    if (y < 0 || static_cast<size_t>(y) >= machines_.size()) {
      return Status::InvalidArgument("class id out of range");
    }
  }
  for (size_t c = 0; c < machines_.size(); ++c) {
    std::vector<int32_t> binary(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      binary[i] = labels[i] == static_cast<int32_t>(c) ? 1 : -1;
    }
    FKD_RETURN_NOT_OK(machines_[c].Train(features, binary));
  }
  return Status::OK();
}

int32_t OneVsRestSvm::Predict(const float* x, size_t d) const {
  int32_t best = 0;
  double best_value = machines_[0].Decision(x, d);
  for (size_t c = 1; c < machines_.size(); ++c) {
    const double value = machines_[c].Decision(x, d);
    if (value > best_value) {
      best_value = value;
      best = static_cast<int32_t>(c);
    }
  }
  return best;
}

std::vector<int32_t> OneVsRestSvm::PredictBatch(const Tensor& features) const {
  std::vector<int32_t> out(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    out[i] = Predict(features.Row(i), features.cols());
  }
  return out;
}

SvmClassifier::SvmClassifier() : SvmClassifier(Options{}) {}

SvmClassifier::SvmClassifier(Options options) : options_(std::move(options)) {}

namespace {

/// Fits one node type: word-set selection from training docs, feature
/// weighting, OVR SVM, predictions for all nodes.
Status FitNodeType(const std::vector<std::string>& texts,
                   const std::vector<int32_t>& train_ids,
                   const std::vector<int32_t>& targets, size_t num_classes,
                   const SvmClassifier::Options& classifier_options,
                   const SvmOptions& svm_options,
                   std::vector<int32_t>* predictions) {
  const size_t explicit_words = classifier_options.explicit_words;
  const auto documents = text::TokenizeDocuments(texts);
  text::Vocabulary word_set;
  if (classifier_options.selector == FeatureSelector::kChiSquare) {
    word_set = text::SelectChiSquareWordSet(documents, train_ids, targets,
                                            num_classes, explicit_words);
  } else {
    text::ClassWordStats stats(num_classes);
    for (int32_t id : train_ids) stats.AddDocument(documents[id], targets[id]);
    word_set = stats.SelectTopMutualInformation(explicit_words);
  }
  text::BowFeaturizer featurizer(word_set);
  if (featurizer.dim() == 0) {
    // Degenerate corpus (e.g. all-identical training docs): fall back to
    // majority class.
    std::vector<int64_t> votes(num_classes, 0);
    for (int32_t id : train_ids) ++votes[targets[id]];
    const int32_t majority = static_cast<int32_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    predictions->assign(texts.size(), majority);
    return Status::OK();
  }

  std::vector<std::vector<std::string>> train_docs;
  std::vector<int32_t> train_targets;
  train_docs.reserve(train_ids.size());
  for (int32_t id : train_ids) {
    train_docs.push_back(documents[id]);
    train_targets.push_back(targets[id]);
  }
  OneVsRestSvm svm(num_classes, svm_options);
  if (classifier_options.weighting == FeatureWeighting::kTfIdf) {
    text::TfIdfFeaturizer tfidf(word_set, documents);
    FKD_RETURN_NOT_OK(
        svm.Train(tfidf.FeaturizeBatch(train_docs), train_targets));
    *predictions = svm.PredictBatch(tfidf.FeaturizeBatch(documents));
  } else {
    FKD_RETURN_NOT_OK(
        svm.Train(featurizer.FeaturizeBatch(train_docs), train_targets));
    *predictions = svm.PredictBatch(featurizer.FeaturizeBatch(documents));
  }
  return Status::OK();
}

}  // namespace

Status SvmClassifier::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.dataset == nullptr) {
    return Status::InvalidArgument("TrainContext missing dataset");
  }
  if (context.train_articles.empty() || context.train_creators.empty() ||
      context.train_subjects.empty()) {
    return Status::InvalidArgument("empty training set for some node type");
  }
  const data::Dataset& dataset = *context.dataset;
  const size_t num_classes = eval::NumClasses(context.granularity);

  std::vector<std::string> texts;
  std::vector<int32_t> targets;

  texts.clear();
  targets.assign(dataset.articles.size(), 0);
  for (const auto& a : dataset.articles) {
    texts.push_back(a.text);
    targets[a.id] = eval::TargetOf(a.label, context.granularity);
  }
  SvmOptions svm_options = options_.svm;
  svm_options.seed = context.seed + 11;
  FKD_RETURN_NOT_OK(FitNodeType(texts, context.train_articles, targets,
                                num_classes, options_, svm_options,
                                &predictions_.articles));

  texts.clear();
  targets.assign(dataset.creators.size(), 0);
  for (const auto& c : dataset.creators) {
    texts.push_back(c.profile);
    targets[c.id] = eval::TargetOf(c.label, context.granularity);
  }
  svm_options.seed = context.seed + 22;
  FKD_RETURN_NOT_OK(FitNodeType(texts, context.train_creators, targets,
                                num_classes, options_, svm_options,
                                &predictions_.creators));

  texts.clear();
  targets.assign(dataset.subjects.size(), 0);
  for (const auto& s : dataset.subjects) {
    texts.push_back(s.description);
    targets[s.id] = eval::TargetOf(s.label, context.granularity);
  }
  svm_options.seed = context.seed + 33;
  FKD_RETURN_NOT_OK(FitNodeType(texts, context.train_subjects, targets,
                                num_classes, options_, svm_options,
                                &predictions_.subjects));

  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> SvmClassifier::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
