#include "baselines/node2vec.h"

#include "baselines/embedding_util.h"

namespace fkd {
namespace baselines {

Node2VecClassifier::Node2VecClassifier()
    : Node2VecClassifier(Options{}) {}

Node2VecClassifier::Node2VecClassifier(Options options)
    : options_(std::move(options)) {}

Status Node2VecClassifier::Train(const eval::TrainContext& context) {
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing graph");
  }
  Rng rng(context.seed ^ 0x0DE2'7ECULL);

  const auto walks =
      graph::GenerateNode2VecWalks(*context.graph, options_.walks, &rng);
  SkipGramOptions skipgram = options_.skipgram;
  skipgram.seed = context.seed + 4;
  skipgram.observer = context.observer;
  skipgram.observer_tag = Name() + "/skipgram";
  embeddings_ =
      TrainSkipGram(walks, context.graph->TotalNodes(), skipgram, &rng);
  NormalizeRows(&embeddings_);

  SvmOptions svm = options_.svm;
  svm.seed = context.seed + 5;
  FKD_RETURN_NOT_OK(
      ClassifyByEmbeddings(embeddings_, context, svm, &predictions_));
  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> Node2VecClassifier::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

}  // namespace baselines
}  // namespace fkd
