#ifndef FKD_BASELINES_SVM_H_
#define FKD_BASELINES_SVM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "eval/classifier.h"
#include "tensor/tensor.h"

namespace fkd {
namespace baselines {

/// Hyper-parameters of the linear SVM solver.
struct SvmOptions {
  /// Soft-margin penalty C.
  double c = 1.0;
  /// Outer passes of dual coordinate descent.
  size_t max_iterations = 60;
  /// Stop when the maximal projected gradient falls below this.
  double tolerance = 1e-3;
  uint64_t seed = 1;
};

/// Binary linear SVM trained by dual coordinate descent on the L1-loss
/// L2-regularised dual (the LIBLINEAR algorithm; the paper's Svm baseline
/// uses LIBSVM with explicit text features, for which a linear kernel is
/// the standard configuration). A bias feature is appended internally.
class LinearSvm {
 public:
  explicit LinearSvm(SvmOptions options = {});

  /// `features` is [n x d]; `labels` are +1 / -1. Requires both classes
  /// present is NOT enforced — a single-class problem yields a constant
  /// decision function.
  Status Train(const Tensor& features, const std::vector<int32_t>& labels);

  /// Signed decision value w . x + b.
  double Decision(const float* x, size_t d) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  SvmOptions options_;
  std::vector<double> weights_;  // d + 1 (bias last).
};

/// One-vs-rest multi-class wrapper; predicts the class with the largest
/// decision value.
class OneVsRestSvm {
 public:
  OneVsRestSvm(size_t num_classes, SvmOptions options = {});

  /// `labels` are class ids in [0, num_classes).
  Status Train(const Tensor& features, const std::vector<int32_t>& labels);

  int32_t Predict(const float* x, size_t d) const;
  std::vector<int32_t> PredictBatch(const Tensor& features) const;

  size_t num_classes() const { return machines_.size(); }

 private:
  std::vector<LinearSvm> machines_;
};

/// How the explicit text features are weighted and selected — the paper
/// uses raw counts + chi-square; TF-IDF and mutual information are
/// extension variants for the feature-pipeline ablation.
enum class FeatureWeighting { kCounts, kTfIdf };
enum class FeatureSelector { kChiSquare, kMutualInformation };

/// The paper's "Svm" baseline: explicit bag-of-words features
/// (chi-square-selected on training labels, §4.1.1) + one-vs-rest linear
/// SVM, fitted independently for articles, creators and subjects.
class SvmClassifier : public eval::CredibilityClassifier {
 public:
  struct Options {
    size_t explicit_words = 150;
    FeatureWeighting weighting = FeatureWeighting::kCounts;
    FeatureSelector selector = FeatureSelector::kChiSquare;
    SvmOptions svm;
  };

  SvmClassifier();
  explicit SvmClassifier(Options options);

  std::string Name() const override { return "svm"; }
  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

 private:
  Options options_;
  eval::Predictions predictions_;
  bool trained_ = false;
};

}  // namespace baselines
}  // namespace fkd

#endif  // FKD_BASELINES_SVM_H_
