#include "net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/string_util.h"
#include "net/client.h"
#include "obs/metrics.h"

namespace fkd {
namespace net {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<int> ConnectTo(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad address \"%s\" (numeric IPv4 only)", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::IoError(
        StrFormat("connect %s:%d: %s", host.c_str(), port,
                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status WriteAll(int fd, const std::string& bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + offset, bytes.size() - offset);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError(StrFormat("write: %s", std::strerror(errno)));
  }
  return Status::OK();
}

/// Blocking single-frame round trip on a fresh connection.
Result<Frame> RoundTrip(const std::string& host, int port,
                        MessageType type, const std::string& payload,
                        int64_t timeout_ms = 30000) {
  FKD_ASSIGN_OR_RETURN(const int fd, ConnectTo(host, port));
  const Status write_status =
      WriteAll(fd, EncodeFrame(type, /*request_id=*/1, payload));
  if (!write_status.ok()) {
    ::close(fd);
    return write_status;
  }
  FrameDecoder decoder;
  const int64_t deadline_us = NowUs() + timeout_ms * 1000;
  char chunk[16 * 1024];
  for (;;) {
    Frame frame;
    bool ready = false;
    const Status status = decoder.Next(&frame, &ready);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    if (ready) {
      ::close(fd);
      return frame;
    }
    const int64_t remaining_ms = (deadline_us - NowUs()) / 1000;
    if (remaining_ms <= 0) {
      ::close(fd);
      return Status::DeadlineExceeded("timed out waiting for response frame");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rv = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (rv < 0 && errno != EINTR) {
      ::close(fd);
      return Status::IoError(StrFormat("poll: %s", std::strerror(errno)));
    }
    if (rv <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("server closed the connection mid-round-trip");
    }
    decoder.Append(chunk, static_cast<size_t>(n));
  }
}

Result<uint64_t> ControlRoundTrip(const std::string& host, int port,
                                  MessageType type,
                                  const std::string& payload) {
  FKD_ASSIGN_OR_RETURN(Frame frame, RoundTrip(host, port, type, payload));
  FKD_ASSIGN_OR_RETURN(ControlResponseMsg msg,
                       DecodeControlResponse(frame.payload));
  if (!msg.ok) {
    return Status(static_cast<StatusCode>(msg.status_code), msg.message);
  }
  return msg.value;
}

/// Counters shared by every worker thread of one run.
struct SharedState {
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> from_cache{0};
  std::atomic<uint64_t> connect_failures{0};
  std::atomic<uint64_t> io_errors{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> hedges{0};
  std::atomic<uint64_t> hedge_wins{0};
  obs::Histogram latency_us;
  /// Measured window, steady-clock us: samples outside are dropped.
  int64_t window_start_us = 0;
  int64_t window_end_us = 0;
};

/// One connection's sending loop, built on the resilient NetClient: the
/// client owns per-request timeouts, retries and (optionally) hedging, so
/// a response lost on the wire times out and frees its window slot instead
/// of wedging the worker forever. Runs until past window_end + drain.
void Worker(const LoadGenOptions& options, size_t index, SharedState* shared) {
  // Pre-flight with a blocking connect so a server that is down at start
  // is reported as a connect failure, not a run full of timeouts.
  {
    Result<int> probe = ConnectTo(options.host, options.port);
    if (!probe.ok()) {
      shared->connect_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ::close(probe.value());
  }

  int64_t request_timeout_us = options.request_timeout_us;
  if (request_timeout_us <= 0) {
    // Default: comfortably inside the drain, so every straggler resolves
    // (as a timeout) before the run gives up on it.
    request_timeout_us = options.drain_timeout_ms * 1000 * 8 / 10;
    if (request_timeout_us <= 0) request_timeout_us = 1'000'000;
  }

  NetClientOptions client_options;
  client_options.host = options.host;
  client_options.port = options.port;
  client_options.default_timeout_us = request_timeout_us;
  client_options.retry = options.retry;
  // Decorrelate jitter across connections without losing determinism.
  client_options.retry.seed += index;
  client_options.hedge = options.hedge;
  NetClient client(client_options);
  if (!client.Start().ok()) {
    shared->connect_failures.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Closed-loop window accounting: callbacks (on the client's I/O thread)
  // release slots; this thread acquires them.
  std::mutex mutex;
  std::condition_variable cv;
  size_t outstanding = 0;

  uint64_t next_seq = 1;
  size_t corpus_index = index % options.corpus.size();

  const bool open_loop = options.open_loop_qps > 0.0;
  const double conn_qps =
      open_loop ? options.open_loop_qps / static_cast<double>(
                                              options.connections)
                : 0.0;
  const int64_t send_interval_us =
      open_loop ? static_cast<int64_t>(1e6 / conn_qps) : 0;
  // Stagger open-loop schedules so N connections don't fire in lockstep.
  int64_t next_send_us =
      NowUs() + (open_loop ? static_cast<int64_t>(index) * send_interval_us /
                                 static_cast<int64_t>(options.connections)
                           : 0);

  const int64_t send_end_us = shared->window_end_us;
  const int64_t drain_end_us = send_end_us + options.drain_timeout_ms * 1000;

  auto send_one = [&]() {
    ClassifyRequestMsg msg = options.corpus[corpus_index];
    corpus_index = (corpus_index + 1) % options.corpus.size();
    if (options.deadline_us > 0) msg.deadline_us = options.deadline_us;
    if (options.unique_requests) {
      const uint64_t nonce =
          (static_cast<uint64_t>(index + 1) << 48) | next_seq++;
      msg.text +=
          StrFormat(" #%llu", static_cast<unsigned long long>(nonce));
    }
    const int64_t sent_at = NowUs();
    if (sent_at >= shared->window_start_us && sent_at < send_end_us) {
      shared->sent.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++outstanding;
    }
    client.Submit(std::move(msg), [&, sent_at](
                                      Result<ClassifyResponseMsg> result) {
      const int64_t now = NowUs();
      const bool measured =
          now >= shared->window_start_us && now < shared->window_end_us;
      StatusCode code = StatusCode::kOk;
      if (result.ok() && result.value().ok) {
        if (measured) {
          shared->ok.fetch_add(1, std::memory_order_relaxed);
          if (result.value().from_cache) {
            shared->from_cache.fetch_add(1, std::memory_order_relaxed);
          }
          shared->latency_us.Observe(static_cast<double>(now - sent_at));
        }
      } else {
        code = result.ok()
                   ? static_cast<StatusCode>(result.value().status_code)
                   : result.status().code();
        if (measured) {
          switch (code) {
            case StatusCode::kUnavailable:
              shared->shed.fetch_add(1, std::memory_order_relaxed);
              break;
            case StatusCode::kDeadlineExceeded:
              shared->deadline_exceeded.fetch_add(1,
                                                  std::memory_order_relaxed);
              break;
            case StatusCode::kIoError:
              shared->io_errors.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              shared->errors.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      --outstanding;
      cv.notify_all();
    });
  };

  if (open_loop) {
    while (true) {
      const int64_t now = NowUs();
      if (now >= send_end_us) break;
      if (now >= next_send_us) {
        send_one();
        next_send_us += send_interval_us;
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<int64_t>(next_send_us - now, 100'000)));
    }
  } else {
    std::unique_lock<std::mutex> lock(mutex);
    while (NowUs() < send_end_us) {
      if (outstanding >= options.window) {
        cv.wait_for(lock, std::chrono::milliseconds(100),
                    [&] { return outstanding < options.window; });
        continue;
      }
      lock.unlock();
      send_one();
      lock.lock();
    }
  }

  // Drain: per-request timeouts guarantee progress, so everything resolves
  // by send_end + request_timeout; the drain budget just caps our patience.
  {
    std::unique_lock<std::mutex> lock(mutex);
    while (outstanding > 0 && NowUs() < drain_end_us) {
      cv.wait_for(lock, std::chrono::milliseconds(50));
    }
    if (outstanding > 0) {
      // Stragglers past the drain budget: lost to this run.
      shared->io_errors.fetch_add(outstanding, std::memory_order_relaxed);
    }
  }
  client.Stop();

  const NetClientStats stats = client.Stats();
  shared->timeouts.fetch_add(stats.timeouts, std::memory_order_relaxed);
  shared->retries.fetch_add(stats.retries, std::memory_order_relaxed);
  shared->hedges.fetch_add(stats.hedges, std::memory_order_relaxed);
  shared->hedge_wins.fetch_add(stats.hedge_wins, std::memory_order_relaxed);
}

}  // namespace

std::string LoadGenReport::ToJson() const {
  return StrFormat(
      "{\"mode\": \"%s\", \"connections\": %zu, \"window\": %zu, "
      "\"target_qps\": %.1f, \"duration_ms\": %lld, \"warmup_ms\": %lld, "
      "\"sent\": %llu, \"ok\": %llu, \"errors\": %llu, \"shed\": %llu, "
      "\"deadline_exceeded\": %llu, \"from_cache\": %llu, "
      "\"connect_failures\": %llu, \"io_errors\": %llu, "
      "\"timeouts\": %llu, \"retries\": %llu, \"hedges\": %llu, "
      "\"hedge_wins\": %llu, \"achieved_qps\": %.2f, \"p50_us\": %.1f, "
      "\"p90_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
      "\"mean_us\": %.1f, \"max_us\": %.1f}",
      mode.c_str(), connections, window, target_qps,
      static_cast<long long>(duration_ms), static_cast<long long>(warmup_ms),
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(from_cache),
      static_cast<unsigned long long>(connect_failures),
      static_cast<unsigned long long>(io_errors),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(hedge_wins), achieved_qps, p50_us,
      p90_us, p99_us, p999_us, mean_us, max_us);
}

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.corpus.empty()) {
    return Status::InvalidArgument("loadgen corpus is empty");
  }
  if (options.connections == 0) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  SharedState shared;
  shared.window_start_us = NowUs() + options.warmup_ms * 1000;
  shared.window_end_us = shared.window_start_us + options.duration_ms * 1000;

  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back(Worker, std::cref(options), i, &shared);
  }
  for (auto& worker : workers) worker.join();

  if (shared.connect_failures.load() == options.connections) {
    return Status::Unavailable(StrFormat(
        "all %zu loadgen connections failed to connect to %s:%d",
        options.connections, options.host.c_str(), options.port));
  }

  LoadGenReport report;
  report.mode = options.open_loop_qps > 0.0 ? "open" : "closed";
  report.connections = options.connections;
  report.window = options.window;
  report.target_qps = options.open_loop_qps;
  report.duration_ms = options.duration_ms;
  report.warmup_ms = options.warmup_ms;
  report.sent = shared.sent.load();
  report.ok = shared.ok.load();
  report.errors = shared.errors.load();
  report.shed = shared.shed.load();
  report.deadline_exceeded = shared.deadline_exceeded.load();
  report.from_cache = shared.from_cache.load();
  report.connect_failures = shared.connect_failures.load();
  report.io_errors = shared.io_errors.load();
  report.timeouts = shared.timeouts.load();
  report.retries = shared.retries.load();
  report.hedges = shared.hedges.load();
  report.hedge_wins = shared.hedge_wins.load();
  report.achieved_qps =
      static_cast<double>(report.ok) /
      (static_cast<double>(options.duration_ms) / 1000.0);
  if (shared.latency_us.Count() > 0) {
    report.p50_us = shared.latency_us.Percentile(0.50);
    report.p90_us = shared.latency_us.Percentile(0.90);
    report.p99_us = shared.latency_us.Percentile(0.99);
    report.p999_us = shared.latency_us.Percentile(0.999);
    report.mean_us = shared.latency_us.Mean();
    report.max_us = shared.latency_us.Max();
  }
  return report;
}

Result<int64_t> Ping(const std::string& host, int port) {
  const int64_t start_us = NowUs();
  FKD_ASSIGN_OR_RETURN(Frame frame,
                       RoundTrip(host, port, MessageType::kPing, ""));
  if (frame.type != MessageType::kPong) {
    return Status::Internal(StrFormat("expected kPong, got %s",
                                      MessageTypeName(frame.type)));
  }
  return NowUs() - start_us;
}

Result<uint64_t> RequestSwap(const std::string& host, int port) {
  return ControlRoundTrip(host, port, MessageType::kSwapRequest, "");
}

Result<uint64_t> RequestCanary(const std::string& host, int port,
                               uint32_t permille) {
  return ControlRoundTrip(host, port, MessageType::kCanaryRequest,
                          EncodeCanaryRequest(permille));
}

}  // namespace net
}  // namespace fkd
