#ifndef FKD_NET_CLIENT_H_
#define FKD_NET_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "net/retry.h"
#include "net/wire.h"

namespace fkd {
namespace net {

/// Tuning knobs of the resilient FKDN/1 client.
struct NetClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;

  /// Per-request budget when the request itself does not carry one
  /// (deadline_unix_us == 0). Every request ends one way or another within
  /// its budget: a response lost to a mid-stream disconnect times out and
  /// fails with DeadlineExceeded instead of hanging its slot forever.
  int64_t default_timeout_us = 5'000'000;

  /// Stamp the absolute deadline into outgoing requests so the server can
  /// shed expired work at admission and score against the remaining
  /// budget (deadline propagation; see ClassifyRequestMsg).
  bool propagate_deadline = true;

  /// Retry discipline for Unavailable responses and transport failures.
  RetryOptions retry;

  /// Hedged requests: a speculative second copy of a slow request on a
  /// separate connection. Disabled by default.
  HedgeOptions hedge;

  /// Clock source; tests may inject a FakeClock. Null = Clock::Real().
  Clock* clock = nullptr;
};

/// Monotone counters describing a client's lifetime so far. Every Submit
/// resolves exactly one way:
///   submitted == ok + shed + deadline_exceeded + transport_errors + other_errors
struct NetClientStats {
  uint64_t submitted = 0;          ///< Requests accepted by Submit().
  uint64_t ok = 0;                 ///< Completed with a classification.
  uint64_t shed = 0;               ///< Final answer was Unavailable (shed).
  uint64_t deadline_exceeded = 0;  ///< Server- or client-side deadline.
  uint64_t transport_errors = 0;   ///< Connection failures exhausted retries.
  uint64_t other_errors = 0;       ///< Any other terminal error.
  uint64_t retries = 0;            ///< Resubmissions (backoff or reconnect).
  uint64_t hedges = 0;             ///< Speculative second attempts launched.
  uint64_t hedge_wins = 0;         ///< Hedge answered before the primary.
  uint64_t reconnects = 0;         ///< Primary connections re-established.
  uint64_t timeouts = 0;           ///< Client-side deadline expiries.
};

/// Resilient asynchronous FKDN/1 classify client: one multiplexed
/// connection (plus a lazy second one for hedges), per-request deadlines,
/// retry with deadline-bounded exponential backoff + deterministic jitter
/// on Unavailable/transport failures, and idempotent resubmission.
///
///  - **Request identity** — every logical request keeps one request id
///    across all its attempts (retries, reconnect resends, hedges). The
///    first response with that id wins and completes the request; any
///    later duplicate finds no pending entry and is dropped. Retries can
///    therefore never double-count.
///  - **Deadlines** — each request carries an absolute budget. Locally it
///    bounds retries (a retry that would wake with no useful budget left
///    is not sent) and expires the request if no response arrives;
///    propagated (deadline_unix_us) it lets the server shed expired work
///    at admission.
///  - **Connection loss** — the I/O thread reconnects with the same
///    backoff discipline and resubmits every pending request whose policy
///    still allows an attempt; the rest fail with the transport error.
///  - **Hedging** — optionally, a request still unanswered after the
///    observed p99 (or a fixed delay) is sent again on a second
///    connection; first answer wins, the loser is ignored by id.
///
/// Threading: Submit() may be called from any thread. Callbacks are
/// invoked on the internal I/O thread and must not block; calling back
/// into Submit() from a callback is allowed.
class NetClient {
 public:
  using Callback = std::function<void(Result<ClassifyResponseMsg>)>;

  explicit NetClient(NetClientOptions options);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Spawns the I/O thread and attempts the first connect (asynchronously;
  /// a server that is down at Start just makes the first requests go
  /// through the reconnect path). One Start per client.
  Status Start();

  /// Fails all pending requests with Unavailable and joins the I/O
  /// thread. Idempotent; implied by the destructor.
  void Stop();

  /// Classifies asynchronously. The callback fires exactly once, with the
  /// decoded response (server errors arrive as a message with ok=false)
  /// or a Status for transport failures / local deadline expiry.
  /// Returns the request id (for logging/correlation).
  uint64_t Submit(ClassifyRequestMsg msg, Callback callback);

  /// Blocking wrapper around Submit.
  Result<ClassifyResponseMsg> Classify(const ClassifyRequestMsg& msg);

  NetClientStats Stats() const;
  const NetClientOptions& options() const { return options_; }

 private:
  /// One of the client's two sockets (primary / hedge).
  struct Conn {
    int fd = -1;
    bool connecting = false;  ///< non-blocking connect in flight
    FrameDecoder decoder{kDefaultMaxPayload};
    std::string outbound;
    size_t out_offset = 0;

    bool open() const { return fd >= 0; }
  };

  /// One logical request across all its attempts.
  struct Pending {
    std::string frame;  ///< encoded request frame (same id, all attempts)
    Callback callback;
    int64_t sent_us = 0;      ///< first-attempt send time (latency stat)
    int64_t deadline_us = 0;  ///< absolute (monotonic clock) budget end
    int attempt = 0;          ///< completed send attempts
    int64_t retry_at_us = 0;  ///< > 0: resend when the clock reaches this
    int64_t hedge_at_us = 0;  ///< > 0: hedge when the clock reaches this
    bool hedged = false;
  };

  /// Finished requests collected while mutex_ is held; their callbacks are
  /// invoked (and their outcome counted) after the lock is released.
  using CompletionList =
      std::vector<std::pair<Callback, Result<ClassifyResponseMsg>>>;

  void IoMain();
  /// Fires due timers (expiry, retry, hedge, reconnect); returns the poll
  /// timeout in ms until the next one.
  int64_t StepTimers(int64_t now_us, CompletionList* done);
  void StartConnect(Conn* conn);
  void FinishConnect(Conn* conn);
  void HandleReadable(Conn* conn, CompletionList* done);
  void FlushConn(Conn* conn, CompletionList* done);
  /// Tears down `conn`; if it is the primary, reroutes every in-flight
  /// request through the retry policy (resubmit or fail).
  void ConnLost(Conn* conn, const Status& reason, CompletionList* done);
  void HandleResponse(uint64_t request_id, const std::string& payload,
                      bool from_hedge, CompletionList* done);
  /// Schedules a retry for `id` or fails it when the policy says no.
  void RetryOrFail(uint64_t id, Pending* pending, const Status& reason,
                   CompletionList* done);
  void Wake();
  void CountOutcome(const Result<ClassifyResponseMsg>& result);

  NetClientOptions options_;
  Clock* clock_;
  RetryPolicy retry_;
  HedgeTracker hedge_;

  std::thread io_thread_;
  int wake_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};

  /// Guards pending_, the conns' outbound buffers and reconnect state.
  /// The I/O thread does all socket syscalls; Submit only appends to
  /// pending_/outbound and wakes it.
  mutable std::mutex mutex_;
  std::map<uint64_t, Pending> pending_;
  Conn primary_;
  Conn hedge_conn_;
  int64_t reconnect_at_us_ = 0;  ///< > 0: next connect attempt time
  int reconnect_attempt_ = 0;
  std::atomic<uint64_t> next_id_{1};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> transport_errors_{0};
  std::atomic<uint64_t> other_errors_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> timeouts_{0};
};

}  // namespace net
}  // namespace fkd

#endif  // FKD_NET_CLIENT_H_
