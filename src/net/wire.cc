#include "net/wire.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/string_util.h"

namespace fkd {
namespace net {

namespace {

// ---- little-endian primitives ----------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

/// Bounds-checked sequential reader over a decoded payload. Every getter
/// fails with Corruption instead of reading past the end, so a truncated
/// or hostile payload can never over-read.
class Reader {
 public:
  explicit Reader(const std::string& data)
      : data_(reinterpret_cast<const uint8_t*>(data.data())),
        size_(data.size()) {}

  Status GetU8(uint8_t* v) {
    FKD_RETURN_NOT_OK(Need(1));
    *v = data_[pos_++];
    return Status::OK();
  }
  Status GetU32(uint32_t* v) {
    FKD_RETURN_NOT_OK(Need(4));
    *v = ReadU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }
  Status GetU64(uint64_t* v) {
    FKD_RETURN_NOT_OK(Need(8));
    *v = ReadU64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }
  Status GetI32(int32_t* v) {
    uint32_t raw;
    FKD_RETURN_NOT_OK(GetU32(&raw));
    *v = static_cast<int32_t>(raw);
    return Status::OK();
  }
  Status GetI64(int64_t* v) {
    uint64_t raw;
    FKD_RETURN_NOT_OK(GetU64(&raw));
    *v = static_cast<int64_t>(raw);
    return Status::OK();
  }
  Status GetF32(float* v) {
    uint32_t bits;
    FKD_RETURN_NOT_OK(GetU32(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status GetF64(double* v) {
    uint64_t bits;
    FKD_RETURN_NOT_OK(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status GetString(std::string* v) {
    uint32_t len;
    FKD_RETURN_NOT_OK(GetU32(&len));
    FKD_RETURN_NOT_OK(Need(len));
    v->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }

  Status ExpectEnd() const {
    if (pos_ != size_) {
      return Status::Corruption(
          StrFormat("payload has %zu trailing bytes", size_ - pos_));
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (size_ - pos_ < n) {
      return Status::Corruption(StrFormat(
          "payload truncated: need %zu bytes at offset %zu of %zu", n, pos_,
          size_));
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "ping";
    case MessageType::kPong: return "pong";
    case MessageType::kClassifyRequest: return "classify_request";
    case MessageType::kClassifyResponse: return "classify_response";
    case MessageType::kSwapRequest: return "swap_request";
    case MessageType::kSwapResponse: return "swap_response";
    case MessageType::kCanaryRequest: return "canary_request";
    case MessageType::kCanaryResponse: return "canary_response";
    case MessageType::kError: return "error";
  }
  return "unknown";
}

std::string EncodeFrame(MessageType type, uint64_t request_id,
                        const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  PutU32(&out, kMagic);
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, 0);  // flags
  PutU64(&out, request_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, payload.empty() ? 0 : Crc32c(payload.data(), payload.size()));
  PutU32(&out, Crc32c(out.data(), out.size()));
  out.append(payload);
  return out;
}

void FrameDecoder::Append(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status FrameDecoder::Next(Frame* out, bool* ready) {
  *ready = false;
  if (poisoned_) return Status::Corruption("frame stream already poisoned");
  // Compact consumed bytes lazily, once they dominate the buffer, so a
  // burst of pipelined frames costs one memmove instead of one per frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return Status::OK();
  const uint8_t* header =
      reinterpret_cast<const uint8_t*>(buffer_.data()) + consumed_;

  // Validate the header before trusting a single field of it.
  const uint32_t header_crc = ReadU32(header + 24);
  if (Crc32c(header, 24) != header_crc) {
    poisoned_ = true;
    // Distinguish the common diagnoses for the log line.
    if (ReadU32(header) != kMagic) {
      return Status::Corruption("bad frame magic (not an FKDN stream?)");
    }
    return Status::Corruption("frame header CRC mismatch");
  }
  if (ReadU32(header) != kMagic) {
    poisoned_ = true;
    return Status::Corruption("bad frame magic despite clean header CRC");
  }
  if (header[4] != kProtocolVersion) {
    poisoned_ = true;
    return Status::InvalidArgument(
        StrFormat("unsupported protocol version %u", header[4]));
  }
  if ((static_cast<uint16_t>(header[6]) |
       static_cast<uint16_t>(header[7]) << 8) != 0) {
    poisoned_ = true;
    return Status::InvalidArgument("reserved frame flags must be 0");
  }
  const uint32_t payload_len = ReadU32(header + 16);
  if (payload_len > max_payload_) {
    poisoned_ = true;
    return Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %zu-byte limit",
                  payload_len, max_payload_));
  }
  if (available < kHeaderSize + payload_len) return Status::OK();

  const char* payload = buffer_.data() + consumed_ + kHeaderSize;
  const uint32_t payload_crc = ReadU32(header + 20);
  const uint32_t actual_crc =
      payload_len == 0 ? 0 : Crc32c(payload, payload_len);
  if (actual_crc != payload_crc) {
    poisoned_ = true;
    return Status::Corruption("frame payload CRC mismatch");
  }

  out->type = static_cast<MessageType>(header[5]);
  out->request_id = ReadU64(header + 8);
  out->payload.assign(payload, payload_len);
  consumed_ += kHeaderSize + payload_len;
  *ready = true;
  return Status::OK();
}

// ---- classify request -------------------------------------------------------

std::string EncodeClassifyRequest(const ClassifyRequestMsg& msg) {
  std::string out;
  PutString(&out, msg.text);
  PutI32(&out, msg.creator_id);
  PutU32(&out, static_cast<uint32_t>(msg.subject_ids.size()));
  for (int32_t subject : msg.subject_ids) PutI32(&out, subject);
  PutI64(&out, msg.deadline_us);
  PutI64(&out, msg.deadline_unix_us);
  return out;
}

Result<ClassifyRequestMsg> DecodeClassifyRequest(const std::string& payload) {
  ClassifyRequestMsg msg;
  Reader reader(payload);
  FKD_RETURN_NOT_OK(reader.GetString(&msg.text));
  FKD_RETURN_NOT_OK(reader.GetI32(&msg.creator_id));
  uint32_t num_subjects;
  FKD_RETURN_NOT_OK(reader.GetU32(&num_subjects));
  if (num_subjects > payload.size() / 4) {
    return Status::Corruption("subject count exceeds payload size");
  }
  msg.subject_ids.resize(num_subjects);
  for (uint32_t i = 0; i < num_subjects; ++i) {
    FKD_RETURN_NOT_OK(reader.GetI32(&msg.subject_ids[i]));
  }
  FKD_RETURN_NOT_OK(reader.GetI64(&msg.deadline_us));
  // Trailing optional (added after PR 7): absolute wall-clock deadline.
  // Its absence is a valid old-encoder payload, not a truncation.
  if (!reader.AtEnd()) {
    FKD_RETURN_NOT_OK(reader.GetI64(&msg.deadline_unix_us));
  }
  FKD_RETURN_NOT_OK(reader.ExpectEnd());
  return msg;
}

// ---- classify response ------------------------------------------------------

std::string EncodeClassifyResponse(const ClassifyResponseMsg& msg) {
  std::string out;
  PutU8(&out, msg.ok ? 1 : 0);
  if (!msg.ok) {
    PutU8(&out, msg.status_code);
    PutString(&out, msg.message);
    return out;
  }
  PutI32(&out, msg.class_id);
  PutString(&out, msg.class_name);
  PutU32(&out, static_cast<uint32_t>(msg.probabilities.size()));
  for (float p : msg.probabilities) PutF32(&out, p);
  PutU64(&out, msg.model_version);
  PutU32(&out, msg.batch_size);
  PutU8(&out, msg.from_cache ? 1 : 0);
  PutF64(&out, msg.queue_us);
  PutF64(&out, msg.batch_us);
  PutF64(&out, msg.compute_us);
  PutF64(&out, msg.cache_us);
  PutF64(&out, msg.total_us);
  return out;
}

Result<ClassifyResponseMsg> DecodeClassifyResponse(const std::string& payload) {
  ClassifyResponseMsg msg;
  Reader reader(payload);
  uint8_t ok;
  FKD_RETURN_NOT_OK(reader.GetU8(&ok));
  msg.ok = ok != 0;
  if (!msg.ok) {
    FKD_RETURN_NOT_OK(reader.GetU8(&msg.status_code));
    FKD_RETURN_NOT_OK(reader.GetString(&msg.message));
    FKD_RETURN_NOT_OK(reader.ExpectEnd());
    return msg;
  }
  FKD_RETURN_NOT_OK(reader.GetI32(&msg.class_id));
  FKD_RETURN_NOT_OK(reader.GetString(&msg.class_name));
  uint32_t num_probs;
  FKD_RETURN_NOT_OK(reader.GetU32(&num_probs));
  if (num_probs > payload.size() / 4) {
    return Status::Corruption("probability count exceeds payload size");
  }
  msg.probabilities.resize(num_probs);
  for (uint32_t i = 0; i < num_probs; ++i) {
    FKD_RETURN_NOT_OK(reader.GetF32(&msg.probabilities[i]));
  }
  FKD_RETURN_NOT_OK(reader.GetU64(&msg.model_version));
  FKD_RETURN_NOT_OK(reader.GetU32(&msg.batch_size));
  uint8_t from_cache;
  FKD_RETURN_NOT_OK(reader.GetU8(&from_cache));
  msg.from_cache = from_cache != 0;
  FKD_RETURN_NOT_OK(reader.GetF64(&msg.queue_us));
  FKD_RETURN_NOT_OK(reader.GetF64(&msg.batch_us));
  FKD_RETURN_NOT_OK(reader.GetF64(&msg.compute_us));
  FKD_RETURN_NOT_OK(reader.GetF64(&msg.cache_us));
  FKD_RETURN_NOT_OK(reader.GetF64(&msg.total_us));
  FKD_RETURN_NOT_OK(reader.ExpectEnd());
  return msg;
}

// ---- control response -------------------------------------------------------

std::string EncodeControlResponse(const ControlResponseMsg& msg) {
  std::string out;
  PutU8(&out, msg.ok ? 1 : 0);
  PutU8(&out, msg.status_code);
  PutString(&out, msg.message);
  PutU64(&out, msg.value);
  return out;
}

Result<ControlResponseMsg> DecodeControlResponse(const std::string& payload) {
  ControlResponseMsg msg;
  Reader reader(payload);
  uint8_t ok;
  FKD_RETURN_NOT_OK(reader.GetU8(&ok));
  msg.ok = ok != 0;
  FKD_RETURN_NOT_OK(reader.GetU8(&msg.status_code));
  FKD_RETURN_NOT_OK(reader.GetString(&msg.message));
  FKD_RETURN_NOT_OK(reader.GetU64(&msg.value));
  FKD_RETURN_NOT_OK(reader.ExpectEnd());
  return msg;
}

std::string EncodeCanaryRequest(uint32_t permille) {
  std::string out;
  PutU32(&out, permille);
  return out;
}

Result<uint32_t> DecodeCanaryRequest(const std::string& payload) {
  Reader reader(payload);
  uint32_t permille;
  FKD_RETURN_NOT_OK(reader.GetU32(&permille));
  FKD_RETURN_NOT_OK(reader.ExpectEnd());
  if (permille > 1000) {
    return Status::InvalidArgument("canary permille must be <= 1000");
  }
  return permille;
}

ClassifyResponseMsg ClassifyResponseFromResult(
    const Result<serve::Classification>& result) {
  ClassifyResponseMsg msg;
  if (!result.ok()) {
    msg.ok = false;
    msg.status_code = static_cast<uint8_t>(result.status().code());
    msg.message = result.status().message();
    return msg;
  }
  const serve::Classification& c = result.value();
  msg.ok = true;
  msg.class_id = c.class_id;
  msg.class_name = c.class_name;
  msg.probabilities = c.probabilities;
  msg.model_version = c.model_version;
  msg.batch_size = static_cast<uint32_t>(c.batch_size);
  msg.from_cache = c.from_cache;
  msg.queue_us = c.queue_us;
  msg.batch_us = c.batch_us;
  msg.compute_us = c.compute_us;
  msg.cache_us = c.cache_us;
  msg.total_us = c.total_us;
  return msg;
}

}  // namespace net
}  // namespace fkd
