#include "net/retry.h"

namespace fkd {
namespace net {

int64_t RetryPolicy::BackoffUs(int attempt) const {
  if (attempt <= 0) return 0;
  // Shift-with-saturation: 2^62us is ~146k years, far beyond any cap, so
  // clamp the exponent instead of overflowing.
  const int shift = std::min(attempt - 1, 40);
  const int64_t raw = options_.backoff_base_us << shift;
  const int64_t capped =
      (raw < 0 || raw > options_.backoff_max_us) ? options_.backoff_max_us : raw;
  return capped;
}

int64_t RetryPolicy::NextDelayUs(int attempt, int64_t now_us,
                                 int64_t deadline_us) {
  if (attempt >= options_.max_attempts) return -1;
  int64_t delay = BackoffUs(attempt);
  if (options_.jitter > 0.0 && delay > 0) {
    const double jitter = std::clamp(options_.jitter, 0.0, 1.0);
    // Uniform in [delay * (1 - jitter), delay]; never above the
    // deterministic envelope so the deadline check below is exact.
    const double lo = static_cast<double>(delay) * (1.0 - jitter);
    delay = static_cast<int64_t>(rng_.Uniform(lo, static_cast<double>(delay)));
  }
  if (deadline_us > 0) {
    const int64_t wake_us = now_us + delay;
    if (wake_us + kMinUsefulBudgetUs >= deadline_us) return -1;
  }
  return delay;
}

HedgeTracker::HedgeTracker(const HedgeOptions& options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  ring_.reserve(options_.window);
}

void HedgeTracker::RecordLatencyUs(int64_t latency_us) {
  if (!enabled() || options_.hedge_percentile <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.window) {
    ring_.push_back(latency_us);
  } else {
    ring_[next_] = latency_us;
  }
  next_ = (next_ + 1) % options_.window;
  ++count_;
}

int64_t HedgeTracker::HedgeDelayUs() const {
  if (options_.hedge_fixed_us > 0) return options_.hedge_fixed_us;
  if (options_.hedge_percentile <= 0.0) return -1;
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ < options_.min_samples || ring_.empty()) return -1;
  // nth_element over a copy of the (small) ring: exact percentile of the
  // recent window, no bucketing error near the tail where hedging lives.
  std::vector<int64_t> sorted = ring_;
  const double p = std::clamp(options_.hedge_percentile, 0.0, 1.0);
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

size_t HedgeTracker::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

}  // namespace net
}  // namespace fkd
