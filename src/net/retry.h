#ifndef FKD_NET_RETRY_H_
#define FKD_NET_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"

namespace fkd {
namespace net {

/// Retry discipline for the resilient NetClient. Pure state-machine math —
/// no clocks, no sleeps, no sockets — so unit tests drive it with a
/// FakeClock and assert exact microsecond schedules.
struct RetryOptions {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 4;

  /// Backoff before retry k (k >= 1) is base * 2^(k-1), capped at max,
  /// then jittered. Defaults: 1ms, 2ms, 4ms ... capped at 250ms.
  int64_t backoff_base_us = 1000;
  int64_t backoff_max_us = 250000;

  /// Jitter fraction in [0, 1]: the jittered delay is uniform in
  /// [delay * (1 - jitter), delay]. "Decorrelated-enough" without ever
  /// exceeding the deterministic envelope, so deadline-bounded truncation
  /// can reason about the worst case.
  double jitter = 0.5;

  /// Seed for the jitter stream. Same seed + same attempt sequence =>
  /// same delays, which is what makes chaos drills replayable.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

/// Computes deterministic, deadline-bounded retry delays.
///
/// Not thread-safe: each connection/client owns one instance (the jitter
/// stream is part of the per-client deterministic schedule).
class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options = {})
      : options_(options), rng_(options.seed) {}

  const RetryOptions& options() const { return options_; }

  /// Un-jittered exponential backoff before retry `attempt` (1-based:
  /// attempt 1 is the first *retry*). Returns 0 for attempt <= 0.
  int64_t BackoffUs(int attempt) const;

  /// Decides whether retry `attempt` (1-based) may run, and with what
  /// delay, given the current monotonic time and the request's absolute
  /// monotonic deadline (0 = no deadline).
  ///
  /// Returns the jittered delay in microseconds (>= 0) when the retry is
  /// allowed, or -1 when it is not: attempts exhausted, or the delay plus
  /// a minimum useful remaining budget would overrun the deadline. A retry
  /// that would wake up with (almost) no budget left is pointless work the
  /// server would immediately shed, so it is truncated here instead.
  int64_t NextDelayUs(int attempt, int64_t now_us, int64_t deadline_us);

  /// Smallest remaining budget (after the backoff sleep) that still makes
  /// a retry worth sending. Exposed for tests.
  static constexpr int64_t kMinUsefulBudgetUs = 500;

 private:
  RetryOptions options_;
  Rng rng_;
};

/// Hedging decision: when to launch a speculative second attempt for a
/// request whose first attempt is slow. Modes:
///   - disabled (hedge_fixed_us == 0 and hedge_percentile == 0)
///   - fixed: hedge after a constant delay
///   - percentile: hedge after the observed p<hedge_percentile> latency,
///     once at least `min_samples` completions have been recorded.
///
/// Thread-safe: completions arrive from the client's I/O thread while
/// senders ask for the threshold.
struct HedgeOptions {
  int64_t hedge_fixed_us = 0;     ///< Fixed hedge delay; 0 = not fixed mode.
  double hedge_percentile = 0.0;  ///< e.g. 0.99; 0 = not percentile mode.
  size_t min_samples = 32;        ///< Completions required before hedging.
  size_t window = 1024;           ///< Ring of recent latencies kept.
};

class HedgeTracker {
 public:
  explicit HedgeTracker(const HedgeOptions& options = {});

  bool enabled() const {
    return options_.hedge_fixed_us > 0 || options_.hedge_percentile > 0.0;
  }

  /// Records one completed-request latency (only successful first attempts
  /// should be fed in; hedged wins would bias the percentile down).
  void RecordLatencyUs(int64_t latency_us);

  /// Delay after which an in-flight request should hedge, or -1 when
  /// hedging is off / not yet warmed up.
  int64_t HedgeDelayUs() const;

  size_t samples() const;

 private:
  HedgeOptions options_;
  mutable std::mutex mutex_;
  std::vector<int64_t> ring_;  // capacity options_.window
  size_t next_ = 0;            // ring write cursor
  size_t count_ = 0;           // total recorded (saturating at window for size)
};

}  // namespace net
}  // namespace fkd

#endif  // FKD_NET_RETRY_H_
