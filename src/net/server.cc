#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace net {

namespace {

using obs::FlightEventType;

/// One epoll_wait batch; also the tick granularity of the idle sweep.
constexpr int kEpollTimeoutMs = 100;
constexpr size_t kMaxEpollEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;

/// Final-flush budget per connection at shutdown: responses already in the
/// outbound buffer get this long to reach the socket before the fd closes.
constexpr int kShutdownFlushMs = 500;

/// How long accepts stay paused after EMFILE/ENFILE. Long enough that a
/// transient fd spike drains, short enough that the backlog (128) keeps
/// absorbing connect bursts in the meantime.
constexpr int64_t kAcceptPauseMs = 50;

/// Chaos shim: returns the armed action for a socket-layer site, kNone
/// when the injector is idle (one relaxed load on the hot path).
FaultAction NetFault(const char* site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return FaultAction::kNone;
  return injector.Hit(site);
}

Status ErrnoStatus(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

int64_t Server::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t Server::NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t Server::WallNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Server::Server(serve::Router* router, ServerOptions options)
    : router_(router), options_(std::move(options)) {
  FKD_CHECK(router_ != nullptr);
  FKD_CHECK_GT(options_.event_loops, 0u);
  FKD_CHECK_GT(options_.completion_threads, 0u);
  FKD_CHECK_GT(options_.max_inflight, 0u);
  resolved_shed_depth_ =
      options_.shed_queue_depth > 0
          ? options_.shed_queue_depth
          : (3 * router_->options().num_replicas *
             router_->options().engine.max_queue_depth) / 4;
  if (resolved_shed_depth_ == 0) resolved_shed_depth_ = 1;

  recorder_ = &obs::FlightRecorder::Get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  connections_gauge_ = registry.GetGauge("fkd.net.connections");
  connections_total_ = registry.GetCounter("fkd.net.connections_total");
  frames_in_total_ = registry.GetCounter("fkd.net.frames", {{"dir", "in"}});
  frames_out_total_ = registry.GetCounter("fkd.net.frames", {{"dir", "out"}});
  bytes_in_total_ = registry.GetCounter("fkd.net.bytes", {{"dir", "in"}});
  bytes_out_total_ = registry.GetCounter("fkd.net.bytes", {{"dir", "out"}});
  shed_total_ = registry.GetCounter("fkd.net.shed");
  deadline_shed_total_ = registry.GetCounter("fkd.net.deadline_shed");
  accept_pauses_total_ = registry.GetCounter("fkd.net.accept_pauses");
  protocol_errors_total_ = registry.GetCounter("fkd.net.protocol_errors");
  idle_closed_total_ = registry.GetCounter("fkd.net.idle_closed");
  responses_dropped_total_ = registry.GetCounter("fkd.net.responses_dropped");
  inflight_gauge_ = registry.GetGauge("fkd.net.inflight");
  request_us_ = registry.GetHistogram("fkd.net.request_us");
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("bad bind address \"%s\" (numeric IPv4 only)",
                  options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = ErrnoStatus("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  loops_.reserve(options_.event_loops);
  for (size_t i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      return ErrnoStatus("epoll_create1/eventfd");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &event);
    if (i == 0) {
      event.data.fd = listen_fd_;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &event);
    }
    loops_.push_back(std::move(loop));
  }
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { LoopMain(i); });
  }
  pumps_.reserve(options_.completion_threads);
  for (size_t i = 0; i < options_.completion_threads; ++i) {
    pumps_.emplace_back([this] { PumpMain(); });
  }

  recorder_->Record(FlightEventType::kServerStart,
                    static_cast<uint64_t>(bound_port_), options_.event_loops);
  FKD_LOG(Info) << "net server listening on " << options_.host << ":"
                << bound_port_ << " (" << options_.event_loops
                << " event loops, " << options_.completion_threads
                << " completion threads, max_inflight "
                << options_.max_inflight << ", shed at engine queue depth "
                << resolved_shed_depth_ << ")";
  return Status::OK();
}

void Server::WakeLoop(EventLoop* loop) {
  // Chaos site net.eventfd: a dropped wakeup write. The loop must still
  // make progress via its bounded epoll_wait timeout — a lost wakeup may
  // only ever cost latency, never liveness.
  if (NetFault("net.eventfd") != FaultAction::kNone) return;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loop->wake_fd, &one, sizeof(one));
}

// ---- accept path -------------------------------------------------------------

void Server::PauseAccept(EventLoop* loop, int error) {
  // accept4() failed without consuming the backlog entry, so retrying
  // immediately (the pre-PR-8 `continue`) hot-spins: the listen fd stays
  // readable and every accept fails the same way until an fd frees up.
  // Instead, step away: unregister the listen socket for a brief pause and
  // let loop 0 re-arm it afterwards (see LoopMain).
  accept_pauses_.fetch_add(1, std::memory_order_relaxed);
  accept_pauses_total_->Increment();
  recorder_->Record(FlightEventType::kNetAcceptPause,
                    accept_pauses_.load(std::memory_order_relaxed),
                    static_cast<uint64_t>(kAcceptPauseMs));
  FKD_LOG_EVERY_N(Warning, 16)
      << "accept failed: " << std::strerror(error) << "; pausing accepts for "
      << kAcceptPauseMs << "ms (rate-limited: 1 in 16 logged)";
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  accept_paused_ = true;
  accept_resume_ms_ = NowMs() + kAcceptPauseMs;
}

void Server::HandleAccept(EventLoop* loop) {
  for (;;) {
    // Chaos site net.accept: simulated fd exhaustion. Checked before the
    // accept4 so, like real EMFILE, the backlog entry is not consumed.
    if (NetFault("net.accept") != FaultAction::kNone) {
      PauseAccept(loop, EMFILE);
      return;
    }
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        PauseAccept(loop, errno);
        return;
      }
      return;  // listen socket closed mid-drain or fatal: stop accepting
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      over_capacity_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    if (loops_[target].get() == loop) {
      RegisterConnection(loop, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(loops_[target]->mutex);
        loops_[target]->pending_accepts.push_back(fd);
      }
      WakeLoop(loops_[target].get());
    }
  }
}

void Server::AdoptPendingAccepts(EventLoop* loop) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    fds.swap(loop->pending_accepts);
  }
  for (int fd : fds) RegisterConnection(loop, fd);
}

void Server::RegisterConnection(EventLoop* loop, int fd) {
  auto conn = std::make_shared<Connection>(options_.max_payload_bytes);
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < loops_.size(); ++i) {
    if (loops_[i].get() == loop) conn->loop = i;
  }
  conn->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = fd;
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
    ::close(fd);
    return;
  }
  loop->connections.emplace(fd, conn);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  connections_total_->Increment();
  const size_t active =
      active_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
  connections_gauge_->Set(static_cast<double>(active));
  recorder_->Record(FlightEventType::kConnAccept, conn->id, conn->loop);
}

// ---- read path ---------------------------------------------------------------

void Server::HandleReadable(EventLoop* loop, const ConnectionPtr& conn) {
  // Chaos site net.ready: defer this readable event one epoll tick. The
  // socket stays armed level-triggered, so the next epoll_wait re-delivers
  // it — a deterministic stand-in for delayed readiness.
  if (NetFault("net.ready") != FaultAction::kNone) return;
  // Chaos site net.recv: the kernel reports a reset (RST) mid-stream.
  if (NetFault("net.recv") != FaultAction::kNone) {
    CloseConnection(loop, conn, "injected connection reset");
    return;
  }
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      bytes_in_total_->Increment(static_cast<double>(n));
      conn->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        if (conn->want_close) continue;  // draining a doomed connection
      }
      conn->decoder.Append(chunk, static_cast<size_t>(n));
      for (;;) {
        Frame frame;
        bool ready = false;
        const Status status = conn->decoder.Next(&frame, &ready);
        if (!status.ok()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          protocol_errors_total_->Increment();
          recorder_->Record(FlightEventType::kNetProtocolError, conn->id, 0);
          FKD_LOG_EVERY_N(Warning, 16)
              << "connection " << conn->id
              << ": protocol error: " << status.message()
              << " (rate-limited: 1 in 16 logged)";
          // Best-effort goodbye, then close once (if ever) it flushes. The
          // stream has lost framing, so no further frames are decoded.
          ControlResponseMsg goodbye;
          goodbye.ok = false;
          goodbye.status_code = static_cast<uint8_t>(status.code());
          goodbye.message = status.message();
          EnqueueOutput(conn, EncodeFrame(MessageType::kError, 0,
                                          EncodeControlResponse(goodbye)));
          {
            std::lock_guard<std::mutex> lock(conn->out_mutex);
            conn->want_close = true;
          }
          FlushOutput(loop, conn);
          return;
        }
        if (!ready) break;
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        frames_in_total_->Increment();
        HandleFrame(loop, conn, std::move(frame));
      }
      // Slow-loris clock: stamps when a partial frame starts buffering and
      // only clears when it completes, so a dribbling client cannot reset
      // it by sending one more byte.
      if (conn->decoder.buffered() == 0) {
        conn->frame_start_ms.store(0, std::memory_order_relaxed);
      } else if (conn->frame_start_ms.load(std::memory_order_relaxed) == 0) {
        conn->frame_start_ms.store(NowMs(), std::memory_order_relaxed);
      }
      continue;
    }
    if (n == 0) {  // peer closed; in-flight work resolves via the pump
      CloseConnection(loop, conn, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(loop, conn, "read error");
    return;
  }
}

// ---- frame dispatch ----------------------------------------------------------

void Server::HandleFrame(EventLoop* loop, const ConnectionPtr& conn,
                         Frame frame) {
  switch (frame.type) {
    case MessageType::kPing:
      EnqueueOutput(conn, EncodeFrame(MessageType::kPong, frame.request_id,
                                      frame.payload));
      return;
    case MessageType::kClassifyRequest:
      classify_frames_.fetch_add(1, std::memory_order_relaxed);
      HandleClassify(conn, frame);
      return;
    case MessageType::kSwapRequest:
    case MessageType::kCanaryRequest: {
      const bool is_swap = frame.type == MessageType::kSwapRequest;
      const MessageType reply_type =
          is_swap ? MessageType::kSwapResponse : MessageType::kCanaryResponse;
      const uint64_t request_id = frame.request_id;
      auto reply_error = [&](const Status& status) {
        ControlResponseMsg msg;
        msg.ok = false;
        msg.status_code = static_cast<uint8_t>(status.code());
        msg.message = status.message();
        EnqueueOutput(conn, EncodeFrame(reply_type, request_id,
                                        EncodeControlResponse(msg)));
      };
      if (draining_.load(std::memory_order_acquire)) {
        reply_error(Status::Unavailable("server draining"));
        return;
      }
      if ((is_swap && !options_.swap_handler) ||
          (!is_swap && !options_.canary_handler)) {
        reply_error(Status::Unimplemented(
            is_swap ? "no swap handler configured"
                    : "no canary handler configured"));
        return;
      }
      uint32_t permille = 0;
      if (!is_swap) {
        Result<uint32_t> decoded = DecodeCanaryRequest(frame.payload);
        if (!decoded.ok()) {
          reply_error(decoded.status());
          return;
        }
        permille = decoded.value();
      }
      // Control work blocks (a swap builds and drains engine fleets), so it
      // runs on the completion pump, counted against the drain like any
      // in-flight request.
      PumpItem item;
      item.conn = conn;
      item.request_id = request_id;
      item.enqueued_us = NowUs();
      item.control = [this, is_swap, permille, reply_type, request_id]() {
        ControlResponseMsg msg;
        Result<uint64_t> outcome =
            is_swap ? options_.swap_handler()
                    : options_.canary_handler(permille);
        if (outcome.ok()) {
          msg.ok = true;
          msg.value = outcome.value();
          if (is_swap) swaps_.fetch_add(1, std::memory_order_relaxed);
        } else {
          msg.ok = false;
          msg.status_code = static_cast<uint8_t>(outcome.status().code());
          msg.message = outcome.status().message();
        }
        return EncodeFrame(reply_type, request_id,
                           EncodeControlResponse(msg));
      };
      inflight_.fetch_add(1, std::memory_order_acq_rel);
      inflight_gauge_->Set(
          static_cast<double>(inflight_.load(std::memory_order_relaxed)));
      {
        std::lock_guard<std::mutex> lock(pump_mutex_);
        pump_queue_.push_back(std::move(item));
      }
      pump_cv_.notify_one();
      return;
    }
    default:
      // Response types (or unknown types) arriving from a client are a
      // protocol violation: kill the connection like any other.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_total_->Increment();
      recorder_->Record(FlightEventType::kNetProtocolError, conn->id,
                        static_cast<uint64_t>(frame.type));
      CloseConnection(loop, conn, "unexpected frame type");
      return;
  }
}

void Server::RespondError(const ConnectionPtr& conn, uint64_t request_id,
                          const Status& status) {
  ClassifyResponseMsg msg;
  msg.ok = false;
  msg.status_code = static_cast<uint8_t>(status.code());
  msg.message = status.message();
  responses_error_.fetch_add(1, std::memory_order_relaxed);
  EnqueueOutput(conn, EncodeFrame(MessageType::kClassifyResponse, request_id,
                                  EncodeClassifyResponse(msg)));
}

void Server::HandleClassify(const ConnectionPtr& conn, const Frame& frame) {
  Result<ClassifyRequestMsg> decoded = DecodeClassifyRequest(frame.payload);
  if (!decoded.ok()) {
    // The frame checksummed clean but its body is malformed: the stream is
    // still in sync, so answer the request instead of killing the socket.
    RespondError(conn, frame.request_id, decoded.status());
    return;
  }
  const int64_t t0_us = NowUs();

  // --- admission control, cheapest test first -------------------------------
  if (draining_.load(std::memory_order_acquire)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    recorder_->Record(FlightEventType::kNetShed, frame.request_id, 0);
    RespondError(conn, frame.request_id,
                 Status::Unavailable("server draining"));
    return;
  }
  // Deadline propagation: a request whose absolute deadline has already
  // passed is answered DeadlineExceeded right here — it never reaches
  // Router::Submit, so expired work is refused, not silently computed.
  // Survivors carry their *remaining* budget into the engine.
  int64_t remaining_budget_us = 0;  // 0 = no absolute deadline
  if (decoded.value().deadline_unix_us > 0) {
    remaining_budget_us = decoded.value().deadline_unix_us - WallNowUs();
    if (remaining_budget_us <= 0) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_total_->Increment();
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      deadline_shed_total_->Increment();
      recorder_->Record(FlightEventType::kNetDeadlineShed, frame.request_id,
                        static_cast<uint64_t>(-remaining_budget_us));
      RespondError(conn, frame.request_id,
                   Status::DeadlineExceeded(StrFormat(
                       "deadline expired %lldus before admission",
                       static_cast<long long>(-remaining_budget_us))));
      return;
    }
  }
  // Bounded in-flight budget: the one knob that caps the server's queued
  // work no matter how many connections pile on.
  const size_t inflight_now =
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (inflight_now > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    recorder_->Record(FlightEventType::kNetShed, frame.request_id,
                      inflight_now);
    RespondError(conn, frame.request_id,
                 Status::Unavailable(StrFormat(
                     "server at capacity (%zu requests in flight)",
                     inflight_now - 1)));
    return;
  }
  // Queue-depth-aware early shed: when the engines are already saturated,
  // refusing here is strictly better than queueing work the breaker or the
  // deadline will kill anyway.
  const size_t engine_depth = router_->QueueDepth();
  if (engine_depth >= resolved_shed_depth_) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    recorder_->Record(FlightEventType::kNetShed, frame.request_id,
                      engine_depth);
    RespondError(conn, frame.request_id,
                 Status::Unavailable(StrFormat(
                     "engine queues saturated (depth %zu >= %zu)",
                     engine_depth, resolved_shed_depth_)));
    return;
  }
  inflight_gauge_->Set(static_cast<double>(inflight_now));

  serve::ArticleRequest request;
  request.text = std::move(decoded.value().text);
  request.creator_id = decoded.value().creator_id;
  request.subject_ids = std::move(decoded.value().subject_ids);
  request.deadline_us = decoded.value().deadline_us;
  if (remaining_budget_us > 0) {
    // Score against what is left of the client's budget, not a fresh
    // server default; a relative budget, when also present, can only
    // tighten it further.
    request.deadline_us = request.deadline_us > 0
                              ? std::min(request.deadline_us,
                                         remaining_budget_us)
                              : remaining_budget_us;
  }
  Result<serve::ClassificationFuture> submitted =
      router_->Submit(std::move(request));
  if (!submitted.ok()) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    RespondError(conn, frame.request_id, submitted.status());
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  PumpItem item;
  item.conn = conn;
  item.request_id = frame.request_id;
  item.enqueued_us = t0_us;
  item.future = std::move(submitted).value();
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    pump_queue_.push_back(std::move(item));
  }
  pump_cv_.notify_one();
}

// ---- completion pump ---------------------------------------------------------

void Server::PumpMain() {
  for (;;) {
    PumpItem item;
    {
      std::unique_lock<std::mutex> lock(pump_mutex_);
      pump_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pump_queue_.empty();
      });
      if (pump_queue_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(pump_queue_.front());
      pump_queue_.pop_front();
    }

    std::string response;
    bool classify = false;
    bool result_ok = false;
    if (item.control) {
      response = item.control();
    } else {
      classify = true;
      // Blocks until the engine resolves the future — every accepted
      // request does (completed, expired, failed, or drained), so the pump
      // can never hang on a live router.
      Result<serve::Classification> result = item.future.get();
      result_ok = result.ok();
      response = EncodeFrame(MessageType::kClassifyResponse, item.request_id,
                             EncodeClassifyResponse(
                                 ClassifyResponseFromResult(result)));
    }

    if (EnqueueOutput(item.conn, response)) {
      // A classify response counts exactly once: ok/error when it reaches
      // the connection's output queue, dropped when the connection died
      // first. The shutdown invariant classify_frames == ok + error +
      // dropped depends on these being disjoint.
      if (classify) {
        if (result_ok) {
          responses_ok_.fetch_add(1, std::memory_order_relaxed);
        } else {
          responses_error_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } else if (classify) {
      // The connection died while its request was in flight: the slot is
      // still released, the response is accounted as dropped, never leaked.
      // (A dropped control reply is not tracked — the client is gone and
      // control frames are outside the classify accounting.)
      responses_dropped_.fetch_add(1, std::memory_order_relaxed);
      responses_dropped_total_->Increment();
    }
    request_us_->Observe(static_cast<double>(NowUs() - item.enqueued_us));
    if (classify) {
      item.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    const size_t left = inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    inflight_gauge_->Set(static_cast<double>(left));
    if (left == 0 && draining_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
  }
}

// ---- write path --------------------------------------------------------------

bool Server::EnqueueOutput(const ConnectionPtr& conn,
                           const std::string& bytes) {
  if (conn->closed.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->closed.load(std::memory_order_acquire)) return false;
    conn->outbound.append(bytes);
  }
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  frames_out_total_->Increment();
  EventLoop* loop = loops_[conn->loop].get();
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->pending_writes.push_back(conn);
  }
  WakeLoop(loop);
  return true;
}

void Server::FlushOutput(EventLoop* loop, const ConnectionPtr& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool close_after = false;
  bool blocked = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (conn->out_offset < conn->outbound.size()) {
      // Chaos site net.send: fail = the write errors outright (EPIPE);
      // torn = half the pending bytes reach the wire, then the connection
      // dies mid-frame — the peer is left holding a torn partial frame.
      const FaultAction send_fault = NetFault("net.send");
      if (send_fault != FaultAction::kNone) {
        if (send_fault == FaultAction::kTorn) {
          const size_t part = (conn->outbound.size() - conn->out_offset) / 2;
          const ssize_t torn =
              part == 0 ? 0
                        : ::write(conn->fd,
                                  conn->outbound.data() + conn->out_offset,
                                  part);
          if (torn > 0) {
            conn->out_offset += static_cast<size_t>(torn);
            bytes_out_.fetch_add(static_cast<uint64_t>(torn),
                                 std::memory_order_relaxed);
            bytes_out_total_->Increment(static_cast<double>(torn));
          }
        }
        close_after = true;
        break;
      }
      const ssize_t n =
          ::write(conn->fd, conn->outbound.data() + conn->out_offset,
                  conn->outbound.size() - conn->out_offset);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        bytes_out_.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
        bytes_out_total_->Increment(static_cast<double>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        blocked = true;
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      close_after = true;  // broken pipe etc.
      break;
    }
    if (conn->out_offset == conn->outbound.size()) {
      // Frame accounting at flush completion keeps frames_out meaning
      // "fully written", which the shutdown invariant relies on.
      conn->outbound.clear();
      conn->out_offset = 0;
      if (conn->want_close) close_after = true;
    }
  }
  if (close_after) {
    CloseConnection(loop, conn, "flush finished/failed");
    return;
  }
  epoll_event event{};
  event.data.fd = conn->fd;
  event.events = blocked ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &event);
}

void Server::HandleWritable(EventLoop* loop, const ConnectionPtr& conn) {
  FlushOutput(loop, conn);
}

void Server::CloseConnection(EventLoop* loop, const ConnectionPtr& conn,
                             const char* reason, bool from_idle_sweep) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  {
    // Serialise with a pump mid-EnqueueOutput: after this block, any
    // EnqueueOutput observes closed and reports the response as dropped.
    std::lock_guard<std::mutex> lock(conn->out_mutex);
  }
  ::close(conn->fd);
  loop->connections.erase(conn->fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (from_idle_sweep) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    idle_closed_total_->Increment();
  }
  const size_t active =
      active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1;
  connections_gauge_->Set(static_cast<double>(active));
  recorder_->Record(FlightEventType::kConnClose, conn->id,
                    from_idle_sweep ? 1 : 0);
  FKD_LOG_EVERY_N(Info, 64) << "connection " << conn->id << " closed ("
                            << reason << ") (rate-limited: 1 in 64 logged)";
}

// ---- idle / slow-loris sweep -------------------------------------------------

void Server::SweepIdle(EventLoop* loop, int64_t now_ms) {
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<ConnectionPtr> doomed;
  for (const auto& [fd, conn] : loop->connections) {
    const int64_t last =
        conn->last_activity_ms.load(std::memory_order_relaxed);
    const int64_t frame_start =
        conn->frame_start_ms.load(std::memory_order_relaxed);
    // Idle: nothing read for the whole timeout. Slow loris: bytes do
    // arrive, but a frame begun a full timeout ago still has not
    // completed — dripping one byte at a time must not hold a slot open.
    const bool idle = now_ms - last > options_.idle_timeout_ms;
    const bool loris =
        frame_start != 0 && now_ms - frame_start > options_.idle_timeout_ms;
    if ((idle || loris) &&
        conn->inflight.load(std::memory_order_acquire) == 0) {
      doomed.push_back(conn);
    }
  }
  for (const auto& conn : doomed) {
    CloseConnection(loop, conn, "idle timeout", /*from_idle_sweep=*/true);
  }
}

// ---- event loop --------------------------------------------------------------

void Server::LoopMain(size_t index) {
  EventLoop* loop = loops_[index].get();
  epoll_event events[kMaxEpollEvents];
  bool listening = index == 0;
  int64_t last_sweep_ms = NowMs();

  while (!stop_.load(std::memory_order_acquire)) {
    // Drain owns the listen socket teardown: the loop thread closes it so
    // no other thread races a live accept() on a recycled fd.
    if (listening && draining_.load(std::memory_order_acquire)) {
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listening = false;
    }
    // End of an EMFILE/ENFILE accept pause: put the listen socket back in
    // the interest set and resume accepting.
    if (listening && accept_paused_ && NowMs() >= accept_resume_ms_) {
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = listen_fd_;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &event);
      accept_paused_ = false;
    }

    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEpollEvents,
                               kEpollTimeoutMs);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop->wake_fd) {
        uint64_t drained;
        while (::read(loop->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (listening && fd == listen_fd_) {
        HandleAccept(loop);
        continue;
      }
      auto it = loop->connections.find(fd);
      if (it == loop->connections.end()) continue;
      ConnectionPtr conn = it->second;  // keep alive across close
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(loop, conn, "hangup");
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(loop, conn);
      if (!conn->closed.load(std::memory_order_acquire) &&
          (events[i].events & EPOLLOUT)) {
        HandleWritable(loop, conn);
      }
    }

    // Cross-thread handoffs: adopt fresh accepts, flush queued responses.
    AdoptPendingAccepts(loop);
    std::vector<ConnectionPtr> writable;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      writable.swap(loop->pending_writes);
    }
    for (const auto& conn : writable) {
      if (!conn->closed.load(std::memory_order_acquire)) {
        FlushOutput(loop, conn);
      }
    }

    const int64_t now_ms = NowMs();
    if (now_ms - last_sweep_ms >= kEpollTimeoutMs) {
      SweepIdle(loop, now_ms);
      last_sweep_ms = now_ms;
    }
  }

  // A fast Shutdown (nothing in flight) can set stop_ before this loop
  // re-entered the while condition, skipping the draining branch above —
  // tear the listen socket down here in that case.
  if (listening && listen_fd_ >= 0) {
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Shutdown: give every connection's buffered responses a bounded final
  // flush (they were enqueued before the drain completed), then close.
  std::vector<ConnectionPtr> remaining;
  remaining.reserve(loop->connections.size());
  for (const auto& [fd, conn] : loop->connections) remaining.push_back(conn);
  for (const auto& conn : remaining) {
    const int64_t deadline_ms = NowMs() + kShutdownFlushMs;
    for (;;) {
      bool pending;
      {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        pending = conn->out_offset < conn->outbound.size();
      }
      if (!pending || conn->closed.load(std::memory_order_acquire)) break;
      if (NowMs() >= deadline_ms) break;
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 10) < 0 && errno != EINTR) break;
      FlushOutput(loop, conn);
    }
    CloseConnection(loop, conn, "server shutdown");
  }
  ::close(loop->epoll_fd);
  ::close(loop->wake_fd);
}

// ---- shutdown ----------------------------------------------------------------

void Server::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  draining_.store(true, std::memory_order_release);
  if (pumps_.empty() && loops_.empty()) return;  // already torn down
  FKD_LOG(Info) << "net server draining: "
                << inflight_.load(std::memory_order_relaxed)
                << " requests in flight, "
                << active_connections_.load(std::memory_order_relaxed)
                << " connections";

  // 1. In-flight work resolves through the pump; new classifies are shed.
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait_for(lock, std::chrono::seconds(30), [this] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  // 2. Stop pump + loops. Loop threads flush any buffered responses before
  // closing their connections (see LoopMain epilogue).
  stop_.store(true, std::memory_order_release);
  pump_cv_.notify_all();
  for (auto& pump : pumps_) {
    if (pump.joinable()) pump.join();
  }
  pumps_.clear();
  for (auto& loop : loops_) {
    WakeLoop(loop.get());
    if (loop->thread.joinable()) loop->thread.join();
  }
  loops_.clear();
  connections_gauge_->Set(0.0);
  inflight_gauge_->Set(0.0);
  recorder_->Record(FlightEventType::kServerStop,
                    responses_dropped_.load(std::memory_order_relaxed), 0);
  FKD_LOG(Info) << "net server stopped: "
                << classify_frames_.load(std::memory_order_relaxed)
                << " classifies ("
                << responses_ok_.load(std::memory_order_relaxed) << " ok, "
                << responses_error_.load(std::memory_order_relaxed)
                << " error, "
                << responses_dropped_.load(std::memory_order_relaxed)
                << " dropped on dead connections)";
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.closed = closed_.load(std::memory_order_relaxed);
  stats.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  stats.over_capacity = over_capacity_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.classify_frames = classify_frames_.load(std::memory_order_relaxed);
  stats.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  stats.responses_error = responses_error_.load(std::memory_order_relaxed);
  stats.responses_dropped =
      responses_dropped_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
  stats.accept_pauses = accept_pauses_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace net
}  // namespace fkd
