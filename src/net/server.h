#ifndef FKD_NET_SERVER_H_
#define FKD_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/router.h"

namespace fkd {
namespace net {

/// Tuning knobs of the network front end.
struct ServerOptions {
  /// Bind address. 0.0.0.0 serves externally; the default stays loopback.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via bound_port()).
  int port = 0;
  /// Event-loop threads. Connections are assigned round-robin at accept;
  /// each connection lives on one loop for its whole life (no migration,
  /// no cross-loop locking on the read path).
  size_t event_loops = 2;
  /// Threads turning engine futures into response frames.
  size_t completion_threads = 2;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Admission budget: classify frames beyond this many in flight across
  /// the whole server are shed with Unavailable before touching the Router.
  size_t max_inflight = 256;
  /// Early shedding: classify frames are also shed while the Router's
  /// aggregate engine queue depth is at or beyond this. 0 derives
  /// 3/4 * num_replicas * max_queue_depth from the router options.
  size_t shed_queue_depth = 0;
  /// Connections idle (or dribbling an incomplete frame — slow loris) for
  /// longer than this are closed. <= 0 disables the sweep.
  int64_t idle_timeout_ms = 60000;
  /// Per-frame payload ceiling (see FrameDecoder).
  size_t max_payload_bytes = kDefaultMaxPayload;
  /// Invoked on a kSwapRequest frame: load + publish a new model version,
  /// return its id. Runs on a completion thread (off the event loops), so
  /// it may block for the duration of the swap. Null rejects the frame.
  std::function<Result<uint64_t>()> swap_handler;
  /// Invoked on a kCanaryRequest frame with the requested traffic permille
  /// (0 = stop the canary); returns the canary version. Null rejects.
  std::function<Result<uint64_t>(uint32_t permille)> canary_handler;
};

/// Monotone counters describing a server's lifetime so far. Accounting
/// invariant (asserted by the shutdown tests): every classify frame read
/// off a socket resolves exactly one way,
///   classify_frames == responses_ok + responses_error + responses_dropped
/// where `responses_dropped` counts fulfilled results whose connection had
/// already gone away — never silently, always observed by the pump.
struct ServerStats {
  uint64_t accepted = 0;           ///< Connections accepted.
  uint64_t closed = 0;             ///< Connections closed (any reason).
  uint64_t idle_closed = 0;        ///< ... of which by the idle sweep.
  uint64_t over_capacity = 0;      ///< Accepts refused (max_connections).
  uint64_t frames_in = 0;          ///< Clean frames decoded.
  uint64_t frames_out = 0;         ///< Frames written to sockets.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;    ///< Poisoned decoders (connection killed).
  uint64_t classify_frames = 0;    ///< Classify requests decoded.
  uint64_t responses_ok = 0;       ///< Classify responses carrying a result.
  uint64_t responses_error = 0;    ///< Classify responses carrying an error.
  uint64_t responses_dropped = 0;  ///< Results whose connection had closed.
  uint64_t shed = 0;               ///< Classifies refused by admission.
  uint64_t deadline_shed = 0;      ///< ... of which expired before admission.
  uint64_t accept_pauses = 0;      ///< EMFILE/ENFILE accept pauses taken.
  uint64_t swaps = 0;              ///< Successful swap frames served.
  size_t active_connections = 0;
  size_t inflight = 0;             ///< Classifies submitted, response pending.
};

/// Non-blocking epoll front end speaking the FKDN/1 frame protocol over
/// TCP, feeding the serving Router.
///
/// Threads: one acceptor-capable event loop per `event_loops` (loop 0 also
/// owns the listen socket) plus `completion_threads` pump threads. The
/// read path runs entirely on the connection's event loop: drain the
/// socket, feed the incremental FrameDecoder, dispatch each frame. A
/// classify frame passes **admission control** — server draining? in-flight
/// budget exhausted? router queue depth beyond the shed threshold? — and
/// only then becomes a Router::Submit. The returned future is handed to
/// the completion pump, which blocks on fulfilment (the engines resolve
/// every accepted future: completed, deadline-expired, failed or drained),
/// encodes the response frame, and hands the bytes back to the owning
/// event loop via the connection's outbound buffer + an eventfd wakeup.
/// Shed and refused requests are answered inline with an error-carrying
/// ClassifyResponse — load shedding is explicit, never a silent drop or a
/// hang.
///
/// Robustness: the frame header is CRC-gated before its length prefix is
/// trusted; any protocol violation poisons the connection's decoder and
/// closes it (after a best-effort kError frame) without touching its
/// neighbours; the idle sweep kills both silent connections and slow-loris
/// drips that never complete a frame; a client disconnect with requests in
/// flight is absorbed — the pump observes the closed connection and counts
/// the response as dropped instead of writing to a dead socket.
///
/// Shutdown() is graceful: stop accepting, answer new classifies with
/// Unavailable, wait for every in-flight classify to resolve and its
/// response to flush, then close connections and join all threads. No
/// accepted request is silently dropped (ServerStats invariant above).
///
/// Deterministic network chaos: every socket-layer failure branch is
/// reachable in-process through FKD_FAULTS sites consulted on the hot
/// paths (free when no rules are armed):
///   net.accept   — accept() reports fd exhaustion (EMFILE path + pause)
///   net.recv     — read() reports a connection reset (RST) mid-stream
///   net.send     — write() fails (fail) or tears mid-frame (torn), then
///                  the connection closes as if the peer vanished
///   net.ready    — a readable event is deferred one epoll tick
///                  (delayed readiness; level-triggered epoll re-delivers)
///   net.eventfd  — a pump->loop wakeup write is dropped; the loop must
///                  recover via its epoll timeout, never hang
///
/// Instrumentation (obs::MetricsRegistry::Default()): fkd.net.connections
/// gauge, fkd.net.connections_total / frames{dir} / bytes{dir} / shed /
/// protocol_errors / idle_closed / responses_dropped counters,
/// fkd.net.inflight gauge and the fkd.net.request_us histogram (frame
/// decode -> response enqueue), all flowing through the PR-6 StatsExporter
/// into fkd_obstop.
class Server {
 public:
  Server(serve::Router* router, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the loop + pump threads. One Start per
  /// server.
  Status Start();

  /// Graceful shutdown (see class comment). Idempotent, and implied by the
  /// destructor.
  void Shutdown();

  /// Port actually bound (resolves port 0); valid after Start().
  int bound_port() const { return bound_port_; }

  ServerStats Stats() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    size_t loop = 0;
    uint64_t id = 0;  ///< accept sequence number (diagnostics)
    FrameDecoder decoder;
    /// Guards outbound + want_close. Written by pump threads and the loop.
    std::mutex out_mutex;
    std::string outbound;   ///< encoded frames waiting for the socket
    size_t out_offset = 0;  ///< bytes of outbound already written
    bool want_close = false;  ///< close once outbound drains
    std::atomic<bool> closed{false};
    /// Classify responses still owed to this connection.
    std::atomic<uint32_t> inflight{0};
    /// steady-clock ms of the last byte read (idle sweep).
    std::atomic<int64_t> last_activity_ms{0};
    /// steady-clock ms when the pending partial frame started arriving;
    /// 0 = no partial frame (slow-loris sweep).
    std::atomic<int64_t> frame_start_ms{0};

    explicit Connection(size_t max_payload) : decoder(max_payload) {}
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  /// One epoll event-loop thread's state.
  struct EventLoop {
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: pump -> loop (pending writes, stop)
    std::thread thread;
    /// Connections owned by this loop; only its thread touches the map.
    std::unordered_map<int, ConnectionPtr> connections;
    /// Cross-thread handoff, guarded by mutex: freshly accepted fds and
    /// connections with newly queued outbound bytes.
    std::mutex mutex;
    std::vector<int> pending_accepts;
    std::vector<ConnectionPtr> pending_writes;
  };

  /// Work item for the completion pump.
  struct PumpItem {
    ConnectionPtr conn;
    uint64_t request_id = 0;
    int64_t enqueued_us = 0;  ///< frame-decode timestamp (request_us)
    serve::ClassificationFuture future;  ///< classify item iff valid
    std::function<std::string()> control;  ///< control item iff set
  };

  void LoopMain(size_t index);
  void PumpMain();

  void AdoptPendingAccepts(EventLoop* loop);
  void RegisterConnection(EventLoop* loop, int fd);
  void HandleAccept(EventLoop* loop);
  /// fd-exhaustion backoff: unregisters the listen socket from loop 0's
  /// epoll for a brief pause instead of hot-spinning on a full backlog the
  /// process cannot accept from. Loop 0's thread re-arms it after the
  /// pause (see LoopMain). Only ever called on loop 0's thread.
  void PauseAccept(EventLoop* loop, int error);
  void HandleReadable(EventLoop* loop, const ConnectionPtr& conn);
  void HandleWritable(EventLoop* loop, const ConnectionPtr& conn);
  /// Dispatches one decoded frame (loop thread).
  void HandleFrame(EventLoop* loop, const ConnectionPtr& conn, Frame frame);
  /// Admission control + Router submit for one classify frame.
  void HandleClassify(const ConnectionPtr& conn, const Frame& frame);
  /// Sheds one classify with an error response (code + message).
  void RespondError(const ConnectionPtr& conn, uint64_t request_id,
                    const Status& status);
  /// Appends encoded bytes to conn's outbound and wakes its loop. Returns
  /// false (and counts nothing) when the connection is already closed.
  bool EnqueueOutput(const ConnectionPtr& conn, const std::string& bytes);
  /// Flushes as much outbound as the socket accepts (loop thread only);
  /// arms EPOLLOUT when bytes remain.
  void FlushOutput(EventLoop* loop, const ConnectionPtr& conn);
  void CloseConnection(EventLoop* loop, const ConnectionPtr& conn,
                       const char* reason, bool from_idle_sweep = false);
  void SweepIdle(EventLoop* loop, int64_t now_ms);
  void WakeLoop(EventLoop* loop);

  static int64_t NowMs();
  static int64_t NowUs();
  /// Wall-clock us since the Unix epoch — the timescale of the client's
  /// absolute deadline (deadline_unix_us in ClassifyRequestMsg).
  static int64_t WallNowUs();

  serve::Router* router_;
  ServerOptions options_;
  size_t resolved_shed_depth_ = 0;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  /// Accept-pause state; touched only by loop 0's thread, no locking.
  bool accept_paused_ = false;
  int64_t accept_resume_ms_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_loop_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};

  // Completion pump.
  std::vector<std::thread> pumps_;
  std::mutex pump_mutex_;
  std::condition_variable pump_cv_;
  std::deque<PumpItem> pump_queue_;

  // Drain rendezvous: Shutdown waits here for inflight_ to hit zero.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  /// Serialises concurrent Shutdown() calls (e.g. signal handler thread vs
  /// destructor); the loser waits for the winner's teardown, then no-ops.
  std::mutex shutdown_mutex_;

  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> over_capacity_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> classify_frames_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_error_{0};
  std::atomic<uint64_t> responses_dropped_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_shed_{0};
  std::atomic<uint64_t> accept_pauses_{0};
  std::atomic<uint64_t> swaps_{0};

  obs::FlightRecorder* recorder_;
  obs::Gauge* connections_gauge_;
  obs::Counter* connections_total_;
  obs::Counter* frames_in_total_;
  obs::Counter* frames_out_total_;
  obs::Counter* bytes_in_total_;
  obs::Counter* bytes_out_total_;
  obs::Counter* shed_total_;
  obs::Counter* deadline_shed_total_;
  obs::Counter* accept_pauses_total_;
  obs::Counter* protocol_errors_total_;
  obs::Counter* idle_closed_total_;
  obs::Counter* responses_dropped_total_;
  obs::Gauge* inflight_gauge_;
  obs::Histogram* request_us_;
};

}  // namespace net
}  // namespace fkd

#endif  // FKD_NET_SERVER_H_
