#ifndef FKD_NET_WIRE_H_
#define FKD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/engine.h"

namespace fkd {
namespace net {

/// FKDN/1 wire protocol: length-prefixed binary frames with a CRC-32C
/// checked fixed-size header and a CRC-32C checked payload.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic        0x4E444B46 ("FKDN")
///        4     1  version      1
///        5     1  type         MessageType
///        6     2  flags        reserved, must be 0
///        8     8  request_id   client-chosen correlation id, echoed back
///       16     4  payload_len  bytes following the header
///       20     4  payload_crc  CRC-32C of the payload (0 when empty)
///       24     4  header_crc   CRC-32C of bytes [0, 24)
///       28     *  payload
///
/// The header CRC gates everything: a receiver never trusts payload_len
/// (and never allocates) until the first 24 bytes checksum clean, so a
/// corrupt or hostile length prefix is detected before it can do harm.
/// The payload CRC is checked once payload_len bytes have arrived.
constexpr uint32_t kMagic = 0x4E444B46u;  // "FKDN" read as LE u32
constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kHeaderSize = 28;
/// Hard ceiling on payload_len; a clean header announcing more than this is
/// a protocol error (oversized length prefix), not an allocation request.
constexpr size_t kDefaultMaxPayload = 1u << 20;

/// Frame types. Values are wire-stable; append only.
enum class MessageType : uint8_t {
  kPing = 1,              ///< liveness probe; empty payload
  kPong = 2,              ///< reply to kPing; echoes the ping payload
  kClassifyRequest = 3,   ///< ClassifyRequestMsg
  kClassifyResponse = 4,  ///< ClassifyResponseMsg
  kSwapRequest = 5,       ///< ask the server to hot-swap; empty payload
  kSwapResponse = 6,      ///< ControlResponseMsg (value = new version)
  kCanaryRequest = 7,     ///< u32 permille (0 stops the canary)
  kCanaryResponse = 8,    ///< ControlResponseMsg (value = canary version)
  kError = 9,             ///< ControlResponseMsg; sent before a server close
};

const char* MessageTypeName(MessageType type);

/// One decoded frame.
struct Frame {
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serialises one frame (header + payload) ready for the socket.
std::string EncodeFrame(MessageType type, uint64_t request_id,
                        const std::string& payload);

/// Incremental frame parser over a byte stream. Feed bytes as they arrive;
/// Next() yields complete frames. Any protocol violation (bad magic, bad
/// version, nonzero flags, header/payload CRC mismatch, oversized
/// payload_len) returns a non-OK status and poisons the decoder: the
/// stream has lost framing and the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void Append(const void* data, size_t size);

  /// Extracts the next complete frame into `out`. Returns:
  ///  - OK with *ready = true  — one frame decoded;
  ///  - OK with *ready = false — need more bytes;
  ///  - a protocol error       — stream corrupt; decoder stays poisoned.
  Status Next(Frame* out, bool* ready);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return poisoned_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< decoded-frame bytes not yet compacted away
  bool poisoned_ = false;
};

// ---- payload messages -------------------------------------------------------

/// Body of kClassifyRequest.
///
/// Deadline propagation contract: `deadline_us` is a *relative* budget in
/// microseconds (0 = server default), kept for PR 7 compatibility.
/// `deadline_unix_us` is the client's *absolute* wall-clock deadline
/// (microseconds since the Unix epoch, 0 = none). When set, the server
/// sheds already-expired requests at admission with DeadlineExceeded and
/// scores the rest against the *remaining* budget — so a retried request
/// carries the same shrinking deadline across attempts instead of getting
/// a fresh server-side default each time. The field is a trailing optional:
/// PR 7 encoders that omit it still decode cleanly.
struct ClassifyRequestMsg {
  std::string text;
  int32_t creator_id = -1;
  std::vector<int32_t> subject_ids;
  int64_t deadline_us = 0;
  int64_t deadline_unix_us = 0;
};

/// Body of kClassifyResponse. `ok` selects which half is meaningful.
struct ClassifyResponseMsg {
  bool ok = false;
  // error half
  uint8_t status_code = 0;  ///< fkd::StatusCode of the failure
  std::string message;
  // success half
  int32_t class_id = -1;
  std::string class_name;
  std::vector<float> probabilities;
  uint64_t model_version = 0;
  uint32_t batch_size = 0;
  bool from_cache = false;
  double queue_us = 0.0;
  double batch_us = 0.0;
  double compute_us = 0.0;
  double cache_us = 0.0;
  double total_us = 0.0;
};

/// Body of kSwapResponse / kCanaryResponse / kError: a Status plus one
/// numeric detail (the new model version for control replies).
struct ControlResponseMsg {
  bool ok = false;
  uint8_t status_code = 0;
  std::string message;
  uint64_t value = 0;
};

std::string EncodeClassifyRequest(const ClassifyRequestMsg& msg);
Result<ClassifyRequestMsg> DecodeClassifyRequest(const std::string& payload);

std::string EncodeClassifyResponse(const ClassifyResponseMsg& msg);
Result<ClassifyResponseMsg> DecodeClassifyResponse(const std::string& payload);

std::string EncodeControlResponse(const ControlResponseMsg& msg);
Result<ControlResponseMsg> DecodeControlResponse(const std::string& payload);

std::string EncodeCanaryRequest(uint32_t permille);
Result<uint32_t> DecodeCanaryRequest(const std::string& payload);

/// Builds the ClassifyResponseMsg for a fulfilled classification result.
ClassifyResponseMsg ClassifyResponseFromResult(
    const Result<serve::Classification>& result);

}  // namespace net
}  // namespace fkd

#endif  // FKD_NET_WIRE_H_
