#ifndef FKD_NET_LOADGEN_H_
#define FKD_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/retry.h"
#include "net/wire.h"

namespace fkd {
namespace net {

/// Configuration of one timed load-generation run against an FKDN/1 server.
///
/// Two loop disciplines:
///  - **closed loop** (open_loop_qps == 0): each connection keeps `window`
///    requests outstanding, sending a new one the moment a response lands.
///    Measures the server's sustainable throughput at that concurrency.
///  - **open loop** (open_loop_qps > 0): requests are sent on a fixed
///    schedule (aggregate open_loop_qps spread over the connections)
///    regardless of completions, the way real traffic arrives. Exposes
///    queueing delay that a closed loop hides (coordinated omission).
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  size_t connections = 4;
  /// Closed loop: outstanding requests per connection.
  size_t window = 4;
  /// > 0 selects the open loop at this aggregate request rate.
  double open_loop_qps = 0.0;
  /// Measured interval; samples completing inside it make the report.
  int64_t duration_ms = 10000;
  /// Ramp-up excluded from every reported number.
  int64_t warmup_ms = 1000;
  /// Per-request engine deadline forwarded in each ClassifyRequest (0 =
  /// server default).
  int64_t deadline_us = 0;
  /// Request bodies, cycled round-robin per connection. Must be non-empty.
  std::vector<ClassifyRequestMsg> corpus;
  /// Appends a per-request nonce to every text, so no two requests share a
  /// cache key: measures the engine-bound path instead of the score cache.
  bool unique_requests = false;
  /// After the send window closes, wait this long for stragglers.
  int64_t drain_timeout_ms = 5000;
  /// Client-side budget per request (NetClient timer + propagated absolute
  /// deadline). A response lost on the wire times out and is counted as an
  /// error instead of wedging its window slot. 0 = 80% of the drain
  /// timeout, so every straggler resolves inside the drain.
  int64_t request_timeout_us = 0;
  /// Retry discipline of the underlying NetClient (attempts, backoff,
  /// jitter seed). Each connection decorrelates the seed by its index.
  RetryOptions retry;
  /// Hedging policy of the underlying NetClient. Disabled by default.
  HedgeOptions hedge;
};

/// Outcome of a run. Terminal-outcome counters (sent/ok/errors/shed/
/// deadline_exceeded/from_cache) cover the measured window only (warmup
/// and drain excluded); io_errors and the client-mechanics counters are
/// whole-run. Latencies are microseconds, submit -> response decoded.
struct LoadGenReport {
  std::string mode;  ///< "closed" | "open"
  size_t connections = 0;
  size_t window = 0;
  double target_qps = 0.0;  ///< open loop only; 0 for closed
  int64_t duration_ms = 0;
  int64_t warmup_ms = 0;

  uint64_t sent = 0;        ///< requests sent in the window
  uint64_t ok = 0;          ///< responses carrying a classification
  uint64_t errors = 0;      ///< non-shed, non-deadline terminal errors
  uint64_t shed = 0;        ///< Unavailable outcomes (admission control)
  uint64_t deadline_exceeded = 0;  ///< deadline misses (server or client)
  uint64_t from_cache = 0;  ///< ok responses served from the score cache
  uint64_t connect_failures = 0;
  uint64_t io_errors = 0;   ///< transport failures that exhausted retries

  // Whole-run client mechanics (not windowed): how hard the resilient
  // client worked to produce the numbers above.
  uint64_t timeouts = 0;  ///< client-side per-request deadline expiries
  uint64_t retries = 0;   ///< backoff/reconnect resubmissions
  uint64_t hedges = 0;    ///< speculative second attempts launched
  uint64_t hedge_wins = 0;

  double achieved_qps = 0.0;  ///< ok responses per second of window
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;

  /// Flat JSON object (one row of a BENCH_server.json run array).
  std::string ToJson() const;
};

/// Runs one timed load-generation round. Blocks for roughly
/// warmup + duration + drain. Fails only when no connection could be
/// established or the corpus is empty; per-connection mid-run failures are
/// reported in the counters instead.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

// ---- control-channel one-shots ----------------------------------------------
// Each opens a dedicated connection, performs one round trip and closes —
// used by the fkd_loadgen CLI and the hot-swap-under-load tests.

/// kPing round trip; returns the RTT in microseconds.
Result<int64_t> Ping(const std::string& host, int port);

/// kSwapRequest round trip; returns the newly published model version.
Result<uint64_t> RequestSwap(const std::string& host, int port);

/// kCanaryRequest round trip (permille of traffic, 0 stops the canary);
/// returns the canary model version.
Result<uint64_t> RequestCanary(const std::string& host, int port,
                               uint32_t permille);

}  // namespace net
}  // namespace fkd

#endif  // FKD_NET_LOADGEN_H_
