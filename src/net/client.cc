#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace net {

namespace {

/// Upper bound on one poll() sleep. Timer math below may postpone a timer
/// whose precondition is not met (e.g. a retry waiting for the reconnect);
/// the cap bounds how stale such a decision can get.
constexpr int64_t kMaxPollMs = 100;

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

NetClient::NetClient(NetClientOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()),
      retry_(options_.retry),
      hedge_(options_.hedge) {}

NetClient::~NetClient() { Stop(); }

Status NetClient::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("NetClient already started");
  }
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IoError(StrFormat("eventfd: %s", std::strerror(errno)));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    StartConnect(&primary_);
  }
  io_thread_ = std::thread([this] { IoMain(); });
  return Status::OK();
}

void NetClient::Stop() {
  if (!started_.load() || stop_.exchange(true)) {
    if (io_thread_.joinable()) io_thread_.join();
    return;
  }
  Wake();
  if (io_thread_.joinable()) io_thread_.join();
  // IoMain's exit path failed everything still pending; just release the
  // wake fd (sockets are closed by the I/O thread).
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
}

uint64_t NetClient::Submit(ClassifyRequestMsg msg, Callback callback) {
  const uint64_t id = next_id_.fetch_add(1);
  submitted_.fetch_add(1);
  if (!started_.load() || stop_.load()) {
    Result<ClassifyResponseMsg> failed =
        Status::Unavailable("NetClient not running");
    CountOutcome(failed);
    callback(std::move(failed));
    return id;
  }

  const int64_t now = clock_->NowUs();
  int64_t budget = options_.default_timeout_us;
  if (msg.deadline_unix_us > 0) {
    // The caller owns the deadline; our local timer mirrors what is left
    // of it. An already-expired request is enqueued anyway and expires on
    // the next timer pass — one code path for all expiries.
    budget = msg.deadline_unix_us - clock_->WallUs();
  } else if (options_.propagate_deadline) {
    msg.deadline_unix_us = clock_->WallUs() + budget;
  }

  Pending pending;
  pending.frame =
      EncodeFrame(MessageType::kClassifyRequest, id, EncodeClassifyRequest(msg));
  pending.callback = std::move(callback);
  pending.sent_us = now;
  pending.deadline_us = now + budget;
  const int64_t hedge_delay = hedge_.enabled() ? hedge_.HedgeDelayUs() : -1;
  if (hedge_delay >= 0) pending.hedge_at_us = now + hedge_delay;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (primary_.open() && !primary_.connecting) {
      pending.attempt = 1;
      primary_.outbound.append(pending.frame);
    } else {
      // No connection yet: leave attempt 0 and make the "retry" timer due
      // immediately; the first real send happens once the socket opens.
      pending.retry_at_us = now;
    }
    pending_.emplace(id, std::move(pending));
  }
  Wake();
  return id;
}

Result<ClassifyResponseMsg> NetClient::Classify(const ClassifyRequestMsg& msg) {
  std::mutex m;
  std::condition_variable cv;
  std::optional<Result<ClassifyResponseMsg>> out;
  Submit(msg, [&](Result<ClassifyResponseMsg> result) {
    std::lock_guard<std::mutex> lock(m);
    out.emplace(std::move(result));
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return out.has_value(); });
  return std::move(*out);
}

NetClientStats NetClient::Stats() const {
  NetClientStats stats;
  stats.submitted = submitted_.load();
  stats.ok = ok_.load();
  stats.shed = shed_.load();
  stats.deadline_exceeded = deadline_exceeded_.load();
  stats.transport_errors = transport_errors_.load();
  stats.other_errors = other_errors_.load();
  stats.retries = retries_.load();
  stats.hedges = hedges_.load();
  stats.hedge_wins = hedge_wins_.load();
  stats.reconnects = reconnects_.load();
  stats.timeouts = timeouts_.load();
  return stats;
}

void NetClient::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t n = write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN means a wakeup is already queued — good enough.
}

void NetClient::CountOutcome(const Result<ClassifyResponseMsg>& result) {
  StatusCode code = StatusCode::kOk;
  if (result.ok()) {
    if (result.value().ok) {
      ok_.fetch_add(1);
      return;
    }
    code = static_cast<StatusCode>(result.value().status_code);
  } else {
    code = result.status().code();
  }
  switch (code) {
    case StatusCode::kUnavailable:
      shed_.fetch_add(1);
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1);
      break;
    case StatusCode::kIoError:
      transport_errors_.fetch_add(1);
      break;
    default:
      other_errors_.fetch_add(1);
      break;
  }
}

void NetClient::StartConnect(Conn* conn) {
  // Called with mutex_ held.
  conn->fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (conn->fd < 0) {
    if (conn == &primary_) {
      reconnect_attempt_++;
      reconnect_at_us_ = clock_->NowUs() + retry_.BackoffUs(reconnect_attempt_);
    }
    return;
  }
  int one = 1;
  setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(conn->fd);
    conn->fd = -1;
    return;  // bad host never becomes connectable; deadlines clean up
  }
  int rc = connect(conn->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    conn->connecting = false;
    if (conn == &primary_) {
      if (reconnect_attempt_ > 0) reconnects_.fetch_add(1);
      reconnect_attempt_ = 0;
      reconnect_at_us_ = 0;
    }
  } else if (errno == EINPROGRESS) {
    conn->connecting = true;
  } else {
    close(conn->fd);
    conn->fd = -1;
    if (conn == &primary_) {
      reconnect_attempt_++;
      reconnect_at_us_ = clock_->NowUs() + retry_.BackoffUs(reconnect_attempt_);
    }
  }
}

void NetClient::FinishConnect(Conn* conn) {
  // Called with mutex_ held, after poll reported the socket writable.
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    err = errno;
  }
  conn->connecting = false;
  if (err != 0) {
    close(conn->fd);
    conn->fd = -1;
    conn->decoder = FrameDecoder(kDefaultMaxPayload);
    conn->outbound.clear();
    conn->out_offset = 0;
    if (conn == &primary_) {
      reconnect_attempt_++;
      reconnect_at_us_ = clock_->NowUs() + retry_.BackoffUs(reconnect_attempt_);
    }
    return;
  }
  if (conn == &primary_) {
    if (reconnect_attempt_ > 0) reconnects_.fetch_add(1);
    reconnect_attempt_ = 0;
    reconnect_at_us_ = 0;
  }
}

void NetClient::IoMain() {
  int64_t timeout_ms = 0;
  std::vector<std::pair<Callback, Result<ClassifyResponseMsg>>> done;

  while (!stop_.load()) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {wake_fd_, POLLIN, 0};
    int primary_slot = -1;
    int hedge_slot = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (primary_.open()) {
        short events = POLLIN;
        if (primary_.connecting ||
            primary_.out_offset < primary_.outbound.size()) {
          events |= POLLOUT;
        }
        primary_slot = static_cast<int>(nfds);
        fds[nfds++] = {primary_.fd, events, 0};
      }
      if (hedge_conn_.open()) {
        short events = POLLIN;
        if (hedge_conn_.connecting ||
            hedge_conn_.out_offset < hedge_conn_.outbound.size()) {
          events |= POLLOUT;
        }
        hedge_slot = static_cast<int>(nfds);
        fds[nfds++] = {hedge_conn_.fd, events, 0};
      }
    }
    int rc = poll(fds, nfds, static_cast<int>(timeout_ms));
    if (rc < 0 && errno != EINTR) {
      FKD_LOG(Error) << "net client poll: " << std::strerror(errno);
    }
    if (fds[0].revents & POLLIN) {
      uint64_t drain;
      while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
    }

    done.clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (Conn* conn : {&primary_, &hedge_conn_}) {
        int slot = conn == &primary_ ? primary_slot : hedge_slot;
        if (slot < 0 || !conn->open()) continue;
        short revents = fds[slot].revents;
        if (conn->connecting) {
          if (revents & (POLLOUT | POLLERR | POLLHUP)) FinishConnect(conn);
          continue;
        }
        if (revents & (POLLERR | POLLHUP)) {
          ConnLost(conn, Status::IoError("connection error"), &done);
          continue;
        }
        if (revents & POLLIN) HandleReadable(conn, &done);
        if (conn->open() && (revents & POLLOUT)) FlushConn(conn, &done);
      }
      timeout_ms = StepTimers(clock_->NowUs(), &done);
    }
    for (auto& completion : done) {
      CountOutcome(completion.second);
      completion.first(std::move(completion.second));
    }
  }

  // Shutdown: fail whatever is still in flight, close the sockets.
  done.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : pending_) {
      done.emplace_back(std::move(entry.second.callback),
                        Status::Unavailable("NetClient stopped"));
    }
    pending_.clear();
    for (Conn* conn : {&primary_, &hedge_conn_}) {
      if (conn->open()) {
        close(conn->fd);
        conn->fd = -1;
      }
    }
  }
  for (auto& completion : done) {
    CountOutcome(completion.second);
    completion.first(std::move(completion.second));
  }
}

int64_t NetClient::StepTimers(int64_t now_us, CompletionList* done) {
  // Called with mutex_ held.
  if (!primary_.open() && !primary_.connecting) {
    if (reconnect_at_us_ == 0 || now_us >= reconnect_at_us_) {
      StartConnect(&primary_);
    }
  }

  int64_t next_us = now_us + kMaxPollMs * 1000;
  std::vector<uint64_t> expired;
  for (auto& entry : pending_) {
    Pending& p = entry.second;
    if (now_us >= p.deadline_us) {
      expired.push_back(entry.first);
      continue;
    }
    next_us = std::min(next_us, p.deadline_us);

    if (p.retry_at_us > 0) {
      if (primary_.open() && !primary_.connecting) {
        if (now_us >= p.retry_at_us) {
          if (p.attempt >= 1) retries_.fetch_add(1);
          p.attempt++;
          p.retry_at_us = 0;
          primary_.outbound.append(p.frame);
        } else {
          next_us = std::min(next_us, p.retry_at_us);
        }
      }
      // Primary down: the retry waits for the reconnect; connect
      // completion wakes the poll, kMaxPollMs bounds the wait otherwise.
    }

    if (p.hedge_at_us > 0 && !p.hedged && p.retry_at_us == 0) {
      if (now_us >= p.hedge_at_us) {
        if (!hedge_conn_.open()) StartConnect(&hedge_conn_);
        if (hedge_conn_.open() && !hedge_conn_.connecting) {
          hedge_conn_.outbound.append(p.frame);
          p.hedged = true;
          p.hedge_at_us = 0;
          hedges_.fetch_add(1);
        }
        // Still connecting: POLLOUT on the hedge fd wakes us to finish.
      } else {
        next_us = std::min(next_us, p.hedge_at_us);
      }
    }
  }
  for (uint64_t id : expired) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    timeouts_.fetch_add(1);
    done->emplace_back(
        std::move(it->second.callback),
        Status::DeadlineExceeded(StrFormat(
            "request %llu missed its deadline after %d attempt(s)",
            static_cast<unsigned long long>(id), it->second.attempt)));
    pending_.erase(it);
  }

  if (!primary_.open() && !primary_.connecting && reconnect_at_us_ > 0) {
    next_us = std::min(next_us, reconnect_at_us_);
  }
  int64_t timeout_ms = (next_us - now_us + 999) / 1000;
  if (timeout_ms < 0) timeout_ms = 0;
  if (timeout_ms > kMaxPollMs) timeout_ms = kMaxPollMs;
  return timeout_ms;
}

void NetClient::FlushConn(Conn* conn, CompletionList* done) {
  // Called with mutex_ held.
  while (conn->out_offset < conn->outbound.size()) {
    ssize_t n = write(conn->fd, conn->outbound.data() + conn->out_offset,
                      conn->outbound.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    ConnLost(conn,
             Status::IoError(StrFormat("write: %s", std::strerror(errno))),
             done);
    return;
  }
  conn->outbound.clear();
  conn->out_offset = 0;
}

void NetClient::HandleReadable(Conn* conn, CompletionList* done) {
  // Called with mutex_ held.
  char buf[kReadChunk];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->decoder.Append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    ConnLost(conn,
             n == 0 ? Status::Unavailable("server closed connection")
                    : Status::IoError(
                          StrFormat("read: %s", std::strerror(errno))),
             done);
    return;
  }

  Frame frame;
  bool ready = false;
  while (true) {
    Status status = conn->decoder.Next(&frame, &ready);
    if (!status.ok()) {
      ConnLost(conn, status, done);
      return;
    }
    if (!ready) break;
    const bool from_hedge = conn == &hedge_conn_;
    switch (frame.type) {
      case MessageType::kClassifyResponse:
        HandleResponse(frame.request_id, frame.payload, from_hedge, done);
        break;
      case MessageType::kError: {
        auto decoded = DecodeControlResponse(frame.payload);
        Status reason =
            decoded.ok()
                ? Status(static_cast<StatusCode>(decoded.value().status_code),
                         decoded.value().message)
                : decoded.status();
        auto it = pending_.find(frame.request_id);
        if (it != pending_.end()) {
          if (reason.IsRetryable()) {
            RetryOrFail(frame.request_id, &it->second, reason, done);
          } else {
            done->emplace_back(std::move(it->second.callback), reason);
            pending_.erase(it);
          }
        }
        break;
      }
      default:
        break;  // pongs / control replies are not ours to route
    }
    if (!conn->open()) return;  // a handler tore the connection down
  }
}

void NetClient::HandleResponse(uint64_t request_id, const std::string& payload,
                               bool from_hedge, CompletionList* done) {
  // Called with mutex_ held.
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // duplicate (hedge/retry) — first won

  auto decoded = DecodeClassifyResponse(payload);
  if (!decoded.ok()) {
    done->emplace_back(std::move(it->second.callback), decoded.status());
    pending_.erase(it);
    return;
  }
  ClassifyResponseMsg msg = std::move(decoded).value();
  if (!msg.ok &&
      static_cast<StatusCode>(msg.status_code) == StatusCode::kUnavailable) {
    RetryOrFail(request_id, &it->second,
                Status::Unavailable(msg.message.empty() ? "server shed request"
                                                        : msg.message),
                done);
    return;
  }
  if (from_hedge) {
    hedge_wins_.fetch_add(1);
  } else if (!it->second.hedged && it->second.attempt <= 1) {
    hedge_.RecordLatencyUs(clock_->NowUs() - it->second.sent_us);
  }
  done->emplace_back(std::move(it->second.callback), std::move(msg));
  pending_.erase(it);
}

void NetClient::RetryOrFail(uint64_t id, Pending* pending, const Status& reason,
                            CompletionList* done) {
  // Called with mutex_ held. A retry keeps the request id: the server (or
  // a late duplicate response) cannot double-complete because the first
  // response erases the pending entry.
  const int64_t now = clock_->NowUs();
  const int64_t delay =
      retry_.NextDelayUs(pending->attempt, now, pending->deadline_us);
  if (delay < 0) {
    done->emplace_back(std::move(pending->callback), reason);
    pending_.erase(id);
    return;
  }
  pending->retry_at_us = now + delay;
  pending->hedged = false;  // the retry may hedge again later
}

void NetClient::ConnLost(Conn* conn, const Status& reason,
                         CompletionList* done) {
  // Called with mutex_ held.
  close(conn->fd);
  conn->fd = -1;
  conn->connecting = false;
  conn->decoder = FrameDecoder(kDefaultMaxPayload);
  conn->outbound.clear();
  conn->out_offset = 0;

  if (conn != &primary_) return;  // hedges are best-effort; requests live on

  reconnect_attempt_++;
  reconnect_at_us_ = clock_->NowUs() + retry_.BackoffUs(reconnect_attempt_);
  FKD_LOG_EVERY_N(Warning, 16)
      << "net client lost connection to " << options_.host << ":"
      << options_.port << " (" << reason.ToString() << "), reconnecting";

  // Everything that was on the wire (sent, no answer, no retry scheduled)
  // goes back through the retry policy.
  std::vector<uint64_t> inflight;
  for (auto& entry : pending_) {
    if (entry.second.retry_at_us == 0) inflight.push_back(entry.first);
  }
  for (uint64_t id : inflight) {
    auto it = pending_.find(id);
    if (it != pending_.end()) RetryOrFail(id, &it->second, reason, done);
  }
}

}  // namespace net
}  // namespace fkd
