#ifndef FKD_CORE_GDU_H_
#define FKD_CORE_GDU_H_

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace fkd {
namespace core {

/// Ablation / variant switches for the gated diffusive unit, exercising the
/// design choices of §4.2.
struct GduOptions {
  /// Pass z through unchanged (drop the "forget" gate f).
  bool disable_forget_gate = false;
  /// Pass t through unchanged (drop the "adjust" gate e).
  bool disable_adjust_gate = false;
  /// Replace the whole gated 4-way combination with a plain
  /// h = tanh(W [x, z, t]) fusion (no gates at all).
  bool plain_unit = false;
};

/// Gated Diffusive Unit (the paper's GDU, Fig 3b).
///
/// Inputs per node: its own feature vector x, the aggregated state z of one
/// neighbour category, and the aggregated state t of the other. With gate
/// vectors
///   f = sigmoid(W_f [x, z, t])   (forget gate, applied to z)
///   e = sigmoid(W_e [x, z, t])   (adjust gate, applied to t)
///   g = sigmoid(W_g [x, z, t])   (selection gate 1)
///   r = sigmoid(W_r [x, z, t])   (selection gate 2)
/// and z~ = f (*) z, t~ = e (*) t, the output state is the gate-weighted
/// mixture of the four input combinations:
///   h =     g (*)     r (*) tanh(W_u [x, z~, t~])
///     + (1-g) (*)     r (*) tanh(W_u [x, z,  t~])
///     +     g (*) (1-r) (*) tanh(W_u [x, z~, t ])
///     + (1-g) (*) (1-r) (*) tanh(W_u [x, z,  t ])
/// All four combinations share W_u, exactly as in the paper.
///
/// A missing input port is represented by all-zero rows (the paper:
/// "the remaining input port can be assigned ... usually vector 0").
class GduCell : public nn::Module {
 public:
  /// x is [n x input_dim]; z and t are [n x hidden_dim].
  GduCell(size_t input_dim, size_t hidden_dim, Rng* rng,
          const GduOptions& options = {});

  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& z,
                          const autograd::Variable& t) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  GduOptions options_;
  nn::Linear forget_gate_;
  nn::Linear adjust_gate_;
  nn::Linear select_g_;
  nn::Linear select_r_;
  nn::Linear fuse_;  // W_u, shared by all four combinations.
};

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_GDU_H_
