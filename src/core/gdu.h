#ifndef FKD_CORE_GDU_H_
#define FKD_CORE_GDU_H_

#include <mutex>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace fkd {
namespace core {

/// Ablation / variant switches for the gated diffusive unit, exercising the
/// design choices of §4.2.
struct GduOptions {
  /// Pass z through unchanged (drop the "forget" gate f).
  bool disable_forget_gate = false;
  /// Pass t through unchanged (drop the "adjust" gate e).
  bool disable_adjust_gate = false;
  /// Replace the whole gated 4-way combination with a plain
  /// h = tanh(W [x, z, t]) fusion (no gates at all).
  bool plain_unit = false;
};

/// Gated Diffusive Unit (the paper's GDU, Fig 3b).
///
/// Inputs per node: its own feature vector x, the aggregated state z of one
/// neighbour category, and the aggregated state t of the other. With gate
/// vectors
///   f = sigmoid(W_f [x, z, t])   (forget gate, applied to z)
///   e = sigmoid(W_e [x, z, t])   (adjust gate, applied to t)
///   g = sigmoid(W_g [x, z, t])   (selection gate 1)
///   r = sigmoid(W_r [x, z, t])   (selection gate 2)
/// and z~ = f (*) z, t~ = e (*) t, the output state is the gate-weighted
/// mixture of the four input combinations:
///   h =     g (*)     r (*) tanh(W_u [x, z~, t~])
///     + (1-g) (*)     r (*) tanh(W_u [x, z,  t~])
///     +     g (*) (1-r) (*) tanh(W_u [x, z~, t ])
///     + (1-g) (*) (1-r) (*) tanh(W_u [x, z,  t ])
/// All four combinations share W_u, exactly as in the paper.
///
/// A missing input port is represented by all-zero rows (the paper:
/// "the remaining input port can be assigned ... usually vector 0").
class GduCell : public nn::Module {
 public:
  /// x is [n x input_dim]; z and t are [n x hidden_dim].
  GduCell(size_t input_dim, size_t hidden_dim, Rng* rng,
          const GduOptions& options = {});

  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& z,
                          const autograd::Variable& t) const;

  /// Tape-free inference step over raw tensors, bitwise-identical to
  /// `Step(x, z, t).value()` on the same inputs (the serving parity tests
  /// lock this). Optimised for the scoring hot path: the four gate GEMVs
  /// are batched into one packed GEMM against column-concatenated gate
  /// weights, bias + sigmoid/tanh run fused in the GEMM epilogue, and rows
  /// are processed in L2-sized blocks so each block's concat buffer and
  /// gate/branch activations stay cache-resident across the five GEMMs.
  ///
  /// The first call packs the cell's weights into GEMM panel form and
  /// caches them; the parameters must be frozen from then on (the serving
  /// snapshot contract — training paths keep using Step, which reads the
  /// live weights every call).
  Tensor StepInference(const Tensor& x, const Tensor& z,
                       const Tensor& t) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  /// Frozen panel-packed weights for StepInference, built on first use.
  struct InferencePack {
    PackedBPanels gates;  ///< Active sigmoid gates, [k x num_gates*h].
    Tensor gate_bias;     ///< [1 x num_gates*h], same column order.
    PackedBPanels fuse;   ///< W_u, [k x h].
    Tensor fuse_bias;     ///< [1 x h].
    size_t num_gates = 0; ///< 0 for plain_unit.
    /// Column offset of each gate's h-wide block in `gates` output
    /// (SIZE_MAX when the gate is disabled by the variant options).
    size_t f_col = 0;
    size_t e_col = 0;
    size_t g_col = 0;
    size_t r_col = 0;
  };
  const InferencePack& Pack() const;

  size_t input_dim_;
  size_t hidden_dim_;
  GduOptions options_;
  nn::Linear forget_gate_;
  nn::Linear adjust_gate_;
  nn::Linear select_g_;
  nn::Linear select_r_;
  nn::Linear fuse_;  // W_u, shared by all four combinations.

  mutable std::once_flag pack_once_;
  mutable InferencePack pack_;
};

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_GDU_H_
