#ifndef FKD_CORE_CHECKPOINT_H_
#define FKD_CORE_CHECKPOINT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/diffusion_model.h"
#include "core/fake_detector.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace fkd {
namespace core {

/// Everything FakeDetector::Train needs — besides the model parameters —
/// to continue from the end of an epoch exactly as if it had never
/// stopped: the epoch cursor, the dropout RNG stream, the optimizer
/// accumulators, the running stats and the early-stopping bookkeeping.
/// Floats are persisted as raw bit patterns so a resumed run reproduces
/// the uninterrupted one bit-for-bit.
struct CheckpointState {
  /// Next epoch to run (== number of completed epochs).
  size_t epoch = 0;
  /// Dropout RNG stream position (Rng::DumpState), captured after the
  /// checkpointed epoch's forward pass.
  std::vector<uint64_t> rng_state;
  /// Optimizer accumulators (Adam moments + step count).
  nn::OptimizerState optimizer;
  /// Per-epoch losses so far.
  TrainStats stats;
  /// Early-stopping bookkeeping (ignored when early stopping is off).
  float best_validation_loss = std::numeric_limits<float>::max();
  size_t epochs_since_best = 0;
  /// Best-epoch weight copies kept for restore-on-stop; empty when early
  /// stopping is off or no epoch improved yet.
  std::vector<Tensor> best_weights;
};

/// Persists `state` plus the model's current parameters as
/// `<root>/ckpt-<epoch>` through the crash-safe staged-directory path
/// (write + fsync into a temp dir, MANIFEST with size + CRC-32C of every
/// file, atomic rename). A crash at any step leaves no `ckpt-*` directory
/// behind, only ignorable staging litter. After a successful publish, all
/// but the newest `keep` checkpoints are pruned best-effort.
Status WriteCheckpoint(const std::string& root, const CheckpointState& state,
                       const DiffusionModel& model, size_t keep);

/// Scans `root` for `ckpt-<N>` directories newest-first, returns the first
/// one that passes MANIFEST verification and parses cleanly, restoring its
/// weights into `model` (shapes must match — the caller must have rebuilt
/// the same architecture). Corrupt or torn checkpoints are skipped with a
/// logged warning. NotFound when no valid checkpoint exists.
Result<CheckpointState> LoadNewestCheckpoint(const std::string& root,
                                             DiffusionModel* model);

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_CHECKPOINT_H_
