#ifndef FKD_CORE_FAKE_DETECTOR_H_
#define FKD_CORE_FAKE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/diffusion_model.h"
#include "eval/classifier.h"

namespace fkd {
namespace core {

/// Per-epoch training diagnostics.
struct TrainStats {
  std::vector<float> epoch_losses;
  /// Validation losses (empty when early stopping is disabled).
  std::vector<float> validation_losses;
  /// Epoch whose weights were kept (last epoch when early stopping is off).
  size_t best_epoch = 0;
};

/// The paper's deep diffusive network model: one HFLU + GDU per node type,
/// K synchronous diffusion steps over the heterogeneous graph, softmax
/// credibility heads, trained jointly on all three node types.
///
/// Implements the common `CredibilityClassifier` protocol (single-use:
/// Train once, then Predict). The underlying parameter tree is a
/// `DiffusionModel`; after Train() the model and its frozen diffusion
/// states are exposed so `serve::ExportSnapshot` can persist them.
class FakeDetector : public eval::CredibilityClassifier {
 public:
  explicit FakeDetector(FakeDetectorConfig config = {});
  ~FakeDetector() override;

  FakeDetector(const FakeDetector&) = delete;
  FakeDetector& operator=(const FakeDetector&) = delete;

  std::string Name() const override { return "FakeDetector"; }

  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  /// Diagnostics; valid after Train().
  const TrainStats& train_stats() const { return train_stats_; }
  size_t ParameterCount() const;

  /// ---- Serving-export surface (valid after Train(); null/empty before) --

  const FakeDetectorConfig& config() const { return config_; }
  /// The trained parameter tree, or nullptr before Train().
  const DiffusionModel* model() const { return model_.get(); }
  /// Label granularity the model was trained for.
  eval::LabelGranularity granularity() const { return granularity_; }
  /// Final dropout-free creator/subject hidden states after the K diffusion
  /// steps — the frozen neighbour context new articles are scored against.
  const Tensor& frozen_creator_states() const {
    return frozen_creator_states_;
  }
  const Tensor& frozen_subject_states() const {
    return frozen_subject_states_;
  }

 private:
  FakeDetectorConfig config_;
  std::unique_ptr<DiffusionModel> model_;
  DiffusionBatch batch_;
  TrainStats train_stats_;
  eval::Predictions predictions_;
  eval::LabelGranularity granularity_ = eval::LabelGranularity::kBinary;
  Tensor frozen_creator_states_;
  Tensor frozen_subject_states_;
  bool trained_ = false;
};

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_FAKE_DETECTOR_H_
