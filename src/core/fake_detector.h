#ifndef FKD_CORE_FAKE_DETECTOR_H_
#define FKD_CORE_FAKE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/gdu.h"
#include "core/hflu.h"
#include "eval/classifier.h"

namespace fkd {
namespace core {

/// Full configuration of the FakeDetector framework (§4).
struct FakeDetectorConfig {
  /// Shared HFLU sizes for all three node types (feature ablations included:
  /// hflu.use_explicit / hflu.use_latent).
  HfluConfig hflu;

  /// Size of each pre-extracted explicit word set (W_n, W_u, W_s),
  /// chi-square-selected from the *training* labels.
  size_t explicit_words = 150;
  /// Latent GRU vocabulary size (most frequent tokens over all texts).
  size_t latent_vocabulary = 1000;

  /// GDU hidden-state width.
  size_t gdu_hidden = 48;
  /// Unrolled synchronous diffusion steps K over the News-HSN.
  size_t diffusion_steps = 2;
  /// GDU ablations (disable forget/adjust gates, plain fusion unit).
  GduOptions gdu;

  /// Training hyper-parameters (full-batch Adam over the joint objective
  /// L(T_n) + L(T_u) + L(T_s) + alpha * L_reg).
  size_t epochs = 80;
  float learning_rate = 0.005f;
  /// Dropout applied to the HFLU feature matrices during training.
  float feature_dropout = 0.2f;
  float l2_weight = 5e-4f;  ///< The paper's regularisation weight alpha.
  float grad_clip = 5.0f;

  /// Early stopping: when > 0, this fraction of each training set is held
  /// out for validation; training stops once the validation loss has not
  /// improved for `early_stopping_patience` epochs, and the best-epoch
  /// weights are restored. 0 disables it (the paper's fixed-epoch
  /// protocol).
  float validation_fraction = 0.0f;
  size_t early_stopping_patience = 10;

  bool verbose = false;
};

/// Per-epoch training diagnostics.
struct TrainStats {
  std::vector<float> epoch_losses;
  /// Validation losses (empty when early stopping is disabled).
  std::vector<float> validation_losses;
  /// Epoch whose weights were kept (last epoch when early stopping is off).
  size_t best_epoch = 0;
};

/// The paper's deep diffusive network model: one HFLU + GDU per node type,
/// K synchronous diffusion steps over the heterogeneous graph, softmax
/// credibility heads, trained jointly on all three node types.
///
/// Implements the common `CredibilityClassifier` protocol (single-use:
/// Train once, then Predict).
class FakeDetector : public eval::CredibilityClassifier {
 public:
  explicit FakeDetector(FakeDetectorConfig config = {});
  ~FakeDetector() override;

  FakeDetector(const FakeDetector&) = delete;
  FakeDetector& operator=(const FakeDetector&) = delete;

  std::string Name() const override { return "FakeDetector"; }

  Status Train(const eval::TrainContext& context) override;
  Result<eval::Predictions> Predict() override;

  /// Diagnostics; valid after Train().
  const TrainStats& train_stats() const { return train_stats_; }
  size_t ParameterCount() const;

 private:
  struct Model;

  FakeDetectorConfig config_;
  std::unique_ptr<Model> model_;
  TrainStats train_stats_;
  eval::Predictions predictions_;
  bool trained_ = false;
};

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_FAKE_DETECTOR_H_
