#include "core/gdu.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/compute.h"

#if defined(__GNUC__)
#define FKD_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define FKD_PREFETCH(addr) ((void)0)
#endif

namespace fkd {
namespace core {

namespace ag = ::fkd::autograd;

namespace {

/// Row-block cache budget for StepInference: the block's concat buffer,
/// gate activations and fuse branches should together sit in L2 while the
/// five GEMMs of a block run. Block size only groups independent rows —
/// results are bitwise-identical at any block size — so this is purely a
/// locality knob.
constexpr size_t kGduBlockBytes = size_t{1} << 20;

}  // namespace

GduCell::GduCell(size_t input_dim, size_t hidden_dim, Rng* rng,
                 const GduOptions& options)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      options_(options),
      forget_gate_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      adjust_gate_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      select_g_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      select_r_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      fuse_(input_dim + 2 * hidden_dim, hidden_dim, rng) {}

ag::Variable GduCell::Step(const ag::Variable& x, const ag::Variable& z,
                           const ag::Variable& t) const {
  FKD_TRACE_SCOPE("gdu/forward");
  static obs::Histogram* forward_us =
      obs::MetricsRegistry::Default().GetHistogram("fkd.gdu.forward_us");
  ScopedTimer<obs::Histogram> step_timer(forward_us);
  FKD_CHECK_EQ(x.value().cols(), input_dim_);
  FKD_CHECK_EQ(z.value().cols(), hidden_dim_);
  FKD_CHECK_EQ(t.value().cols(), hidden_dim_);

  const ag::Variable all = ag::ConcatCols({x, z, t});
  if (options_.plain_unit) {
    return ag::Tanh(fuse_.Forward(all));
  }

  // Gated neighbour-input rewrites.
  ag::Variable z_tilde = z;
  if (!options_.disable_forget_gate) {
    const ag::Variable f = ag::Sigmoid(forget_gate_.Forward(all));
    z_tilde = ag::Mul(f, z);
  }
  ag::Variable t_tilde = t;
  if (!options_.disable_adjust_gate) {
    const ag::Variable e = ag::Sigmoid(adjust_gate_.Forward(all));
    t_tilde = ag::Mul(e, t);
  }

  const ag::Variable g = ag::Sigmoid(select_g_.Forward(all));
  const ag::Variable r = ag::Sigmoid(select_r_.Forward(all));
  const ag::Variable not_g = ag::OneMinus(g);
  const ag::Variable not_r = ag::OneMinus(r);

  const ag::Variable branch_tt =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z_tilde, t_tilde})));
  const ag::Variable branch_zt =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z, t_tilde})));
  const ag::Variable branch_tz =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z_tilde, t})));
  const ag::Variable branch_zz =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z, t})));

  ag::Variable h = ag::Mul(ag::Mul(g, r), branch_tt);
  h = ag::Add(h, ag::Mul(ag::Mul(not_g, r), branch_zt));
  h = ag::Add(h, ag::Mul(ag::Mul(g, not_r), branch_tz));
  h = ag::Add(h, ag::Mul(ag::Mul(not_g, not_r), branch_zz));
  return h;
}

const GduCell::InferencePack& GduCell::Pack() const {
  std::call_once(pack_once_, [this] {
    pack_.fuse = PackGemmB(fuse_.weight().value());
    pack_.fuse_bias = fuse_.bias().value();
    if (options_.plain_unit) return;
    // The active sigmoid gates share one packed GEMM: their weight
    // matrices are concatenated column-wise [f | e | g | r] (disabled
    // gates skipped). Column concatenation never touches an output
    // element's k-accumulation chain, so gate values stay bit-identical
    // to the per-gate GEMMs Step computes.
    std::vector<const nn::Linear*> active;
    pack_.f_col = pack_.e_col = SIZE_MAX;
    const size_t h = hidden_dim_;
    if (!options_.disable_forget_gate) {
      pack_.f_col = active.size() * h;
      active.push_back(&forget_gate_);
    }
    if (!options_.disable_adjust_gate) {
      pack_.e_col = active.size() * h;
      active.push_back(&adjust_gate_);
    }
    pack_.g_col = active.size() * h;
    active.push_back(&select_g_);
    pack_.r_col = active.size() * h;
    active.push_back(&select_r_);
    pack_.num_gates = active.size();

    std::vector<Tensor> weights;
    std::vector<Tensor> biases;
    for (const nn::Linear* gate : active) {
      weights.push_back(gate->weight().value());
      biases.push_back(gate->bias().value());
    }
    pack_.gates = PackGemmB(ConcatCols(weights));
    pack_.gate_bias = ConcatCols(biases);
  });
  return pack_;
}

Tensor GduCell::StepInference(const Tensor& x, const Tensor& z,
                              const Tensor& t) const {
  FKD_TRACE_SCOPE("gdu/step_inference");
  static obs::Histogram* infer_us =
      obs::MetricsRegistry::Default().GetHistogram("fkd.gdu.infer_us");
  ScopedTimer<obs::Histogram> step_timer(infer_us);
  FKD_CHECK_EQ(x.cols(), input_dim_);
  FKD_CHECK_EQ(z.cols(), hidden_dim_);
  FKD_CHECK_EQ(t.cols(), hidden_dim_);
  FKD_CHECK_EQ(z.rows(), x.rows());
  FKD_CHECK_EQ(t.rows(), x.rows());

  const size_t n = x.rows();
  const size_t in = input_dim_;
  const size_t h = hidden_dim_;
  const size_t k = in + 2 * h;
  const InferencePack& pack = Pack();
  Tensor out(n, h);
  if (n == 0) return out;

  // Row-block size from the L2 budget: concat row + gate row + four branch
  // rows + output row. Pure function of the dims (and bitwise-neutral, see
  // kGduBlockBytes); blocks parallelise across the pool, and the GEMMs
  // inside a block serial-inline when they land on a pool worker.
  const size_t row_bytes =
      (k + pack.num_gates * h + 5 * h) * sizeof(float);
  const size_t block =
      std::clamp<size_t>(kGduBlockBytes / std::max<size_t>(row_bytes, 1),
                         16, 512);
  const size_t num_blocks = (n + block - 1) / block;

  ParallelKernel("gdu/step_inference", 0, num_blocks, 1, [&](size_t bb,
                                                             size_t be) {
    for (size_t blk = bb; blk < be; ++blk) {
      const size_t r0 = blk * block;
      const size_t r1 = std::min(n, r0 + block);
      const size_t m = r1 - r0;

      // Concat buffer [x | z | t], reused across the five GEMMs of the
      // block with only its z / t column bands rewritten between branches.
      Tensor concat(m, k);
      for (size_t i = 0; i < m; ++i) {
        const size_t src = r0 + i;
        if (src + 1 < n) {
          FKD_PREFETCH(x.Row(src + 1));
          FKD_PREFETCH(z.Row(src + 1));
          FKD_PREFETCH(t.Row(src + 1));
        }
        float* row = concat.Row(i);
        std::copy(x.Row(src), x.Row(src) + in, row);
        std::copy(z.Row(src), z.Row(src) + h, row + in);
        std::copy(t.Row(src), t.Row(src) + h, row + in + h);
      }

      if (options_.plain_unit) {
        Tensor branch(m, h);
        GemmBiasAct(concat, pack.fuse, &pack.fuse_bias, EpilogueAct::kTanh,
                    &branch);
        for (size_t i = 0; i < m; ++i) {
          std::copy(branch.Row(i), branch.Row(i) + h, out.Row(r0 + i));
        }
        continue;
      }

      // All active gates in one fused GEMM over the unmodified [x, z, t].
      Tensor gates(m, pack.num_gates * h);
      GemmBiasAct(concat, pack.gates, &pack.gate_bias, EpilogueAct::kSigmoid,
                  &gates);

      // The four fuse branches share W_u and differ only in the z / t
      // column bands, so they are ordered to minimise rewrites of the
      // concat buffer: [x,z,t] -> [x,z,t~] -> [x,z~,t~] -> [x,z~,t].
      Tensor branch_zz(m, h);
      Tensor branch_zt(m, h);
      Tensor branch_tt(m, h);
      Tensor branch_tz(m, h);
      GemmBiasAct(concat, pack.fuse, &pack.fuse_bias, EpilogueAct::kTanh,
                  &branch_zz);
      if (pack.e_col != SIZE_MAX) {
        // t~ = e (*) t, same operand order as Step's Mul(e, t).
        for (size_t i = 0; i < m; ++i) {
          const float* e = gates.Row(i) + pack.e_col;
          const float* t_row = t.Row(r0 + i);
          float* dst = concat.Row(i) + in + h;
          for (size_t c = 0; c < h; ++c) dst[c] = e[c] * t_row[c];
        }
      }
      GemmBiasAct(concat, pack.fuse, &pack.fuse_bias, EpilogueAct::kTanh,
                  &branch_zt);
      if (pack.f_col != SIZE_MAX) {
        // z~ = f (*) z.
        for (size_t i = 0; i < m; ++i) {
          const float* f = gates.Row(i) + pack.f_col;
          const float* z_row = z.Row(r0 + i);
          float* dst = concat.Row(i) + in;
          for (size_t c = 0; c < h; ++c) dst[c] = f[c] * z_row[c];
        }
      }
      GemmBiasAct(concat, pack.fuse, &pack.fuse_bias, EpilogueAct::kTanh,
                  &branch_tt);
      if (pack.e_col != SIZE_MAX) {
        // Restore the original t band for the [x, z~, t] branch.
        for (size_t i = 0; i < m; ++i) {
          const float* t_row = t.Row(r0 + i);
          std::copy(t_row, t_row + h, concat.Row(i) + in + h);
        }
      }
      GemmBiasAct(concat, pack.fuse, &pack.fuse_bias, EpilogueAct::kTanh,
                  &branch_tz);

      // Gate-weighted 4-way mixture, term order and per-element operation
      // order exactly as Step composes it:
      //   h =  (g*r)*tt; h += ((1-g)*r)*zt; h += (g*(1-r))*tz;
      //   h += ((1-g)*(1-r))*zz.
      for (size_t i = 0; i < m; ++i) {
        const float* g_row = gates.Row(i) + pack.g_col;
        const float* r_row = gates.Row(i) + pack.r_col;
        const float* tt = branch_tt.Row(i);
        const float* zt = branch_zt.Row(i);
        const float* tz = branch_tz.Row(i);
        const float* zz = branch_zz.Row(i);
        float* o_row = out.Row(r0 + i);
        for (size_t c = 0; c < h; ++c) {
          const float g = g_row[c];
          const float r = r_row[c];
          const float ng = 1.0f - g;
          const float nr = 1.0f - r;
          float v = (g * r) * tt[c];
          v += (ng * r) * zt[c];
          v += (g * nr) * tz[c];
          v += (ng * nr) * zz[c];
          o_row[c] = v;
        }
      }
    }
  });
  return out;
}

void GduCell::CollectParameters(const std::string& prefix,
                                std::vector<nn::NamedParameter>* out) const {
  if (!options_.plain_unit) {
    if (!options_.disable_forget_gate) {
      forget_gate_.CollectParameters(nn::JoinName(prefix, "forget"), out);
    }
    if (!options_.disable_adjust_gate) {
      adjust_gate_.CollectParameters(nn::JoinName(prefix, "adjust"), out);
    }
    select_g_.CollectParameters(nn::JoinName(prefix, "select_g"), out);
    select_r_.CollectParameters(nn::JoinName(prefix, "select_r"), out);
  }
  fuse_.CollectParameters(nn::JoinName(prefix, "fuse"), out);
}

}  // namespace core
}  // namespace fkd
