#include "core/gdu.h"

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fkd {
namespace core {

namespace ag = ::fkd::autograd;

GduCell::GduCell(size_t input_dim, size_t hidden_dim, Rng* rng,
                 const GduOptions& options)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      options_(options),
      forget_gate_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      adjust_gate_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      select_g_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      select_r_(input_dim + 2 * hidden_dim, hidden_dim, rng),
      fuse_(input_dim + 2 * hidden_dim, hidden_dim, rng) {}

ag::Variable GduCell::Step(const ag::Variable& x, const ag::Variable& z,
                           const ag::Variable& t) const {
  FKD_TRACE_SCOPE("gdu/forward");
  static obs::Histogram* forward_us =
      obs::MetricsRegistry::Default().GetHistogram("fkd.gdu.forward_us");
  ScopedTimer<obs::Histogram> step_timer(forward_us);
  FKD_CHECK_EQ(x.value().cols(), input_dim_);
  FKD_CHECK_EQ(z.value().cols(), hidden_dim_);
  FKD_CHECK_EQ(t.value().cols(), hidden_dim_);

  const ag::Variable all = ag::ConcatCols({x, z, t});
  if (options_.plain_unit) {
    return ag::Tanh(fuse_.Forward(all));
  }

  // Gated neighbour-input rewrites.
  ag::Variable z_tilde = z;
  if (!options_.disable_forget_gate) {
    const ag::Variable f = ag::Sigmoid(forget_gate_.Forward(all));
    z_tilde = ag::Mul(f, z);
  }
  ag::Variable t_tilde = t;
  if (!options_.disable_adjust_gate) {
    const ag::Variable e = ag::Sigmoid(adjust_gate_.Forward(all));
    t_tilde = ag::Mul(e, t);
  }

  const ag::Variable g = ag::Sigmoid(select_g_.Forward(all));
  const ag::Variable r = ag::Sigmoid(select_r_.Forward(all));
  const ag::Variable not_g = ag::OneMinus(g);
  const ag::Variable not_r = ag::OneMinus(r);

  const ag::Variable branch_tt =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z_tilde, t_tilde})));
  const ag::Variable branch_zt =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z, t_tilde})));
  const ag::Variable branch_tz =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z_tilde, t})));
  const ag::Variable branch_zz =
      ag::Tanh(fuse_.Forward(ag::ConcatCols({x, z, t})));

  ag::Variable h = ag::Mul(ag::Mul(g, r), branch_tt);
  h = ag::Add(h, ag::Mul(ag::Mul(not_g, r), branch_zt));
  h = ag::Add(h, ag::Mul(ag::Mul(g, not_r), branch_tz));
  h = ag::Add(h, ag::Mul(ag::Mul(not_g, not_r), branch_zz));
  return h;
}

void GduCell::CollectParameters(const std::string& prefix,
                                std::vector<nn::NamedParameter>* out) const {
  if (!options_.plain_unit) {
    if (!options_.disable_forget_gate) {
      forget_gate_.CollectParameters(nn::JoinName(prefix, "forget"), out);
    }
    if (!options_.disable_adjust_gate) {
      adjust_gate_.CollectParameters(nn::JoinName(prefix, "adjust"), out);
    }
    select_g_.CollectParameters(nn::JoinName(prefix, "select_g"), out);
    select_r_.CollectParameters(nn::JoinName(prefix, "select_r"), out);
  }
  fuse_.CollectParameters(nn::JoinName(prefix, "fuse"), out);
}

}  // namespace core
}  // namespace fkd
