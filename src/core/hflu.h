#ifndef FKD_CORE_HFLU_H_
#define FKD_CORE_HFLU_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/autograd.h"
#include "text/features.h"
#include "text/vocabulary.h"

namespace fkd {
namespace core {

/// Configuration of one Hybrid Feature Learning Unit.
struct HfluConfig {
  /// Embedding width of the latent GRU input tokens.
  size_t embed_dim = 24;
  /// GRU hidden width.
  size_t gru_hidden = 32;
  /// Width of the latent output x^l (after the fusion layer).
  size_t latent_dim = 32;
  /// Maximum sequence length q; longer documents are truncated, shorter
  /// ones padded (§4.1.2).
  size_t max_sequence_length = 24;
  /// Recurrent cell of the latent extractor (paper: GRU; basic/LSTM are
  /// ablation variants).
  nn::RnnCellKind cell = nn::RnnCellKind::kGru;
  /// Feature-ablation switches: at least one must stay enabled.
  bool use_explicit = true;
  bool use_latent = true;
};

/// Pre-tokenised, pre-encoded inputs for a batch of documents; compute once
/// per node type, reuse every training epoch.
struct HfluInput {
  /// [n x explicit_dim] bag-of-words counts over the pre-extracted word set.
  Tensor explicit_features;
  /// Padded token-id sequences for the latent GRU (-1 = padding).
  std::vector<std::vector<int32_t>> sequences;
};

/// Hybrid Feature Learning Unit (the paper's HFLU, Fig 3a).
///
/// Produces x = [x^e, x^l]: the explicit bag-of-words vector over the
/// pre-extracted word set (W_n / W_u / W_s, §4.1.1) concatenated with the
/// latent representation x^l = sigmoid(W_i * sum_t h_t) of a GRU run over
/// the token sequence (§4.1.2).
class Hflu : public nn::Module {
 public:
  /// `word_set` is the entity type's explicit feature word set;
  /// `latent_vocabulary` maps tokens to GRU input ids.
  Hflu(const HfluConfig& config, text::Vocabulary word_set,
       text::Vocabulary latent_vocabulary, Rng* rng);

  /// Tokenises/encodes a document batch once (no autograd work).
  HfluInput PrepareBatch(
      const std::vector<std::vector<std::string>>& documents) const;

  /// Builds the differentiable feature matrix [n x output_dim] for a
  /// prepared batch.
  autograd::Variable Forward(const HfluInput& input) const;

  size_t output_dim() const;
  size_t explicit_dim() const { return featurizer_.dim(); }

  /// Serving-export surface: the vocabularies a snapshot must persist to
  /// rebuild this unit, and the config that shaped it. PrepareBatch and
  /// Forward are const and cache nothing, so one frozen Hflu can featurize
  /// and score batches from many threads concurrently.
  const HfluConfig& config() const { return config_; }
  const text::Vocabulary& word_set() const { return featurizer_.word_set(); }
  const text::Vocabulary& latent_vocabulary() const {
    return latent_vocabulary_;
  }

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

 private:
  HfluConfig config_;
  text::BowFeaturizer featurizer_;
  text::Vocabulary latent_vocabulary_;
  nn::GruEncoder encoder_;
  nn::Linear fusion_;  // W_i of the fusion layer.
};

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_HFLU_H_
