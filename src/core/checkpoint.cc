#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/manifest.h"
#include "common/string_util.h"
#include "nn/serialize.h"

namespace fkd {
namespace core {

namespace fs = std::filesystem;

namespace {

constexpr char kMetaFileName[] = "checkpoint.txt";
constexpr char kModelFileName[] = "model.fkdw";
constexpr char kOptimizerFileName[] = "optimizer.fkdw";
constexpr char kBestFileName[] = "best.fkdw";
constexpr char kCheckpointPrefix[] = "ckpt-";

// Floats are persisted as their raw IEEE-754 bit pattern (8 hex digits) so
// that a resumed run starts from exactly the checkpointed value — "%g"
// round-trips would perturb the bit-for-bit resume guarantee.
std::string FloatHex(float value) {
  uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return StrFormat("%08x", bits);
}

bool HexValue(char c, uint64_t* out) {
  if (c >= '0' && c <= '9') {
    *out = static_cast<uint64_t>(c - '0');
  } else if (c >= 'a' && c <= 'f') {
    *out = static_cast<uint64_t>(c - 'a' + 10);
  } else {
    return false;
  }
  return true;
}

bool ParseHex64(const std::string& field, uint64_t* out) {
  if (field.empty() || field.size() > 16) return false;
  uint64_t value = 0;
  for (char c : field) {
    uint64_t digit = 0;
    if (!HexValue(c, &digit)) return false;
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

bool ParseFloatHex(const std::string& field, float* out) {
  uint64_t bits = 0;
  if (field.size() != 8 || !ParseHex64(field, &bits)) return false;
  const uint32_t narrow = static_cast<uint32_t>(bits);
  std::memcpy(out, &narrow, sizeof(*out));
  return true;
}

std::string RenderMeta(const CheckpointState& state) {
  std::ostringstream out;
  out << "fkd-checkpoint v1\n";
  out << "epoch " << state.epoch << "\n";
  out << "best_epoch " << state.stats.best_epoch << "\n";
  out << "epochs_since_best " << state.epochs_since_best << "\n";
  out << "opt_step " << state.optimizer.step_count << "\n";
  out << "best_validation_loss " << FloatHex(state.best_validation_loss)
      << "\n";
  out << "rng";
  for (uint64_t word : state.rng_state) out << ' ' << StrFormat("%016llx",
      static_cast<unsigned long long>(word));
  out << "\n";
  out << "epoch_losses";
  for (float loss : state.stats.epoch_losses) out << ' ' << FloatHex(loss);
  out << "\n";
  out << "validation_losses";
  for (float loss : state.stats.validation_losses) out << ' ' << FloatHex(loss);
  out << "\n";
  out << "has_best " << (state.best_weights.empty() ? 0 : 1) << "\n";
  return out.str();
}

Status ParseMeta(const std::string& path, const std::string& body,
                 CheckpointState* state, bool* has_best) {
  const auto lines = Split(body, '\n');
  if (lines.empty() || lines[0] != "fkd-checkpoint v1") {
    return Status::Corruption(path + ": bad checkpoint header");
  }
  bool saw_epoch = false;
  bool saw_rng = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::string context = StrFormat("%s:%zu", path.c_str(), i + 1);
    const auto fields = Split(lines[i], ' ');
    const std::string& key = fields[0];
    auto parse_count = [&](size_t* out) -> Status {
      uint64_t value = 0;
      if (fields.size() != 2 || !ParseUint64(fields[1], &value)) {
        return Status::Corruption(context + ": bad " + key);
      }
      *out = static_cast<size_t>(value);
      return Status::OK();
    };
    if (key == "epoch") {
      FKD_RETURN_NOT_OK(parse_count(&state->epoch));
      saw_epoch = true;
    } else if (key == "best_epoch") {
      FKD_RETURN_NOT_OK(parse_count(&state->stats.best_epoch));
    } else if (key == "epochs_since_best") {
      FKD_RETURN_NOT_OK(parse_count(&state->epochs_since_best));
    } else if (key == "opt_step") {
      size_t step = 0;
      FKD_RETURN_NOT_OK(parse_count(&step));
      state->optimizer.step_count = static_cast<int64_t>(step);
    } else if (key == "best_validation_loss") {
      if (fields.size() != 2 ||
          !ParseFloatHex(fields[1], &state->best_validation_loss)) {
        return Status::Corruption(context + ": bad best_validation_loss");
      }
    } else if (key == "rng") {
      state->rng_state.clear();
      for (size_t f = 1; f < fields.size(); ++f) {
        uint64_t word = 0;
        if (!ParseHex64(fields[f], &word)) {
          return Status::Corruption(context + ": bad rng word");
        }
        state->rng_state.push_back(word);
      }
      saw_rng = true;
    } else if (key == "epoch_losses" || key == "validation_losses") {
      std::vector<float>& out = key == "epoch_losses"
                                    ? state->stats.epoch_losses
                                    : state->stats.validation_losses;
      out.clear();
      for (size_t f = 1; f < fields.size(); ++f) {
        float loss = 0.0f;
        if (!ParseFloatHex(fields[f], &loss)) {
          return Status::Corruption(context + ": bad " + key);
        }
        out.push_back(loss);
      }
    } else if (key == "has_best") {
      uint64_t value = 0;
      if (fields.size() != 2 || !ParseUint64(fields[1], &value) || value > 1) {
        return Status::Corruption(context + ": bad has_best");
      }
      *has_best = value == 1;
    } else {
      return Status::Corruption(context + ": unknown key '" + key + "'");
    }
  }
  if (!saw_epoch || !saw_rng) {
    return Status::Corruption(path + ": checkpoint missing epoch or rng");
  }
  return Status::OK();
}

// Reads back an indexed FKDW tensor list written with names `<stem>.<i>`,
// enforcing the exact count and order so that a record swapped between
// files is caught rather than silently reinterpreted.
Result<std::vector<Tensor>> LoadIndexedTensors(const std::string& path,
                                               const std::string& stem) {
  FKD_ASSIGN_OR_RETURN(auto records, nn::LoadTensors(path));
  std::vector<Tensor> out;
  out.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const std::string expected = stem + "." + std::to_string(i);
    if (records[i].first != expected) {
      return Status::Corruption(StrFormat("%s: record %zu is '%s', expected "
                                          "'%s'",
                                          path.c_str(), i,
                                          records[i].first.c_str(),
                                          expected.c_str()));
    }
    out.push_back(std::move(records[i].second));
  }
  return out;
}

Status SaveIndexedTensors(const std::vector<Tensor>& tensors,
                          const std::string& stem, const std::string& path) {
  std::vector<std::pair<std::string, const Tensor*>> named;
  named.reserve(tensors.size());
  for (size_t i = 0; i < tensors.size(); ++i) {
    named.emplace_back(stem + "." + std::to_string(i), &tensors[i]);
  }
  return nn::SaveTensors(named, path);
}

// Checkpoint directories are `ckpt-<epoch>`; anything else in the root
// (staging litter, user files) is ignored by the loader.
bool ParseCheckpointEpoch(const std::string& name, uint64_t* epoch) {
  const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
  if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) return false;
  return ParseUint64(name.substr(prefix_len), epoch);
}

// Newest-first list of (epoch, directory path) under `root`.
std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& root) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory(ec)) continue;
    uint64_t epoch = 0;
    const std::string name = entry.path().filename().string();
    if (ParseCheckpointEpoch(name, &epoch)) {
      found.emplace_back(epoch, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

// Best-effort removal of checkpoints beyond the newest `keep` and of
// staging litter left by crashed writers (directories loaders never read).
void Prune(const std::string& root, size_t keep) {
  const auto checkpoints = ListCheckpoints(root);
  std::error_code ec;
  for (size_t i = keep; i < checkpoints.size(); ++i) {
    fs::remove_all(checkpoints[i].second, ec);
  }
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, sizeof(kCheckpointPrefix) - 1, kCheckpointPrefix) ==
            0 &&
        name.find(".tmp-") != std::string::npos) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

Status TryLoadCheckpoint(const std::string& directory, DiffusionModel* model,
                         CheckpointState* state) {
  // Integrity gate first: nothing is parsed until every file listed in the
  // MANIFEST matches its recorded size and CRC-32C.
  Status verified = VerifyManifest(directory);
  if (verified.code() == StatusCode::kNotFound) {
    return Status::Corruption(directory + " has no MANIFEST (torn write?)");
  }
  FKD_RETURN_NOT_OK(verified);

  FKD_ASSIGN_OR_RETURN(std::string meta,
                       ReadFileToString(directory + "/" + kMetaFileName));
  bool has_best = false;
  FKD_RETURN_NOT_OK(
      ParseMeta(directory + "/" + kMetaFileName, meta, state, &has_best));
  FKD_RETURN_NOT_OK(
      nn::LoadParameters(model, directory + "/" + kModelFileName));
  FKD_ASSIGN_OR_RETURN(
      state->optimizer.slots,
      LoadIndexedTensors(directory + "/" + kOptimizerFileName, "slot"));
  if (has_best) {
    FKD_ASSIGN_OR_RETURN(
        state->best_weights,
        LoadIndexedTensors(directory + "/" + kBestFileName, "best"));
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const std::string& root, const CheckpointState& state,
                       const DiffusionModel& model, size_t keep) {
  {
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint root " + root + ": " +
                             ec.message());
    }
  }
  const std::string final_path =
      root + "/" + kCheckpointPrefix + std::to_string(state.epoch);
  FKD_ASSIGN_OR_RETURN(StagedDir staged, StagedDir::Create(final_path));

  FKD_RETURN_NOT_OK(WriteStringToFile(staged.path() + "/" + kMetaFileName,
                                      RenderMeta(state)));
  FKD_RETURN_NOT_OK(
      nn::SaveParameters(model, staged.path() + "/" + kModelFileName));
  FKD_RETURN_NOT_OK(SaveIndexedTensors(
      state.optimizer.slots, "slot", staged.path() + "/" + kOptimizerFileName));
  std::vector<std::string> files = {kMetaFileName, kModelFileName,
                                    kOptimizerFileName};
  if (!state.best_weights.empty()) {
    FKD_RETURN_NOT_OK(SaveIndexedTensors(state.best_weights, "best",
                                         staged.path() + "/" + kBestFileName));
    files.push_back(kBestFileName);
  }
  FKD_RETURN_NOT_OK(WriteManifest(staged.path(), files));
  FKD_RETURN_NOT_OK(staged.Commit());

  if (keep > 0) Prune(root, keep);
  return Status::OK();
}

Result<CheckpointState> LoadNewestCheckpoint(const std::string& root,
                                             DiffusionModel* model) {
  FKD_CHECK(model != nullptr);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound("no checkpoint directory at " + root);
  }
  for (const auto& [epoch, directory] : ListCheckpoints(root)) {
    CheckpointState state;
    Status loaded = TryLoadCheckpoint(directory, model, &state);
    if (loaded.ok()) return state;
    FKD_LOG(Warning) << "skipping corrupt checkpoint " << directory << ": "
                     << loaded.message();
  }
  return Status::NotFound("no valid checkpoint under " + root);
}

}  // namespace core
}  // namespace fkd
