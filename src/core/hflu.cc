#include "core/hflu.h"

namespace fkd {
namespace core {

namespace ag = ::fkd::autograd;

Hflu::Hflu(const HfluConfig& config, text::Vocabulary word_set,
           text::Vocabulary latent_vocabulary, Rng* rng)
    : config_(config),
      featurizer_(std::move(word_set)),
      latent_vocabulary_(std::move(latent_vocabulary)),
      encoder_(std::max<size_t>(1, latent_vocabulary_.size()),
               config.embed_dim, config.gru_hidden, rng,
               nn::SequencePooling::kSumStates, config.cell),
      fusion_(config.gru_hidden, config.latent_dim, rng) {
  FKD_CHECK(config.use_explicit || config.use_latent)
      << "HFLU needs at least one feature family";
  FKD_CHECK_GT(config.max_sequence_length, 0u);
}

HfluInput Hflu::PrepareBatch(
    const std::vector<std::vector<std::string>>& documents) const {
  HfluInput input;
  input.explicit_features = featurizer_.FeaturizeBatch(documents);
  input.sequences.reserve(documents.size());
  for (const auto& tokens : documents) {
    input.sequences.push_back(
        latent_vocabulary_.EncodePadded(tokens, config_.max_sequence_length));
  }
  return input;
}

ag::Variable Hflu::Forward(const HfluInput& input) const {
  FKD_CHECK_EQ(input.explicit_features.rows(), input.sequences.size());
  std::vector<ag::Variable> parts;
  if (config_.use_explicit) {
    parts.emplace_back(input.explicit_features, /*requires_grad=*/false,
                       "hflu/explicit");
  }
  if (config_.use_latent) {
    const ag::Variable pooled =
        encoder_.Forward(input.sequences, config_.max_sequence_length);
    parts.push_back(ag::Sigmoid(fusion_.Forward(pooled)));
  }
  return parts.size() == 1 ? parts[0] : ag::ConcatCols(parts);
}

size_t Hflu::output_dim() const {
  size_t dim = 0;
  if (config_.use_explicit) dim += featurizer_.dim();
  if (config_.use_latent) dim += config_.latent_dim;
  return dim;
}

void Hflu::CollectParameters(const std::string& prefix,
                             std::vector<nn::NamedParameter>* out) const {
  if (config_.use_latent) {
    encoder_.CollectParameters(nn::JoinName(prefix, "encoder"), out);
    fusion_.CollectParameters(nn::JoinName(prefix, "fusion"), out);
  }
}

}  // namespace core
}  // namespace fkd
