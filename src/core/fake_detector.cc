#include "core/fake_detector.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/checkpoint.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/features.h"

namespace fkd {
namespace core {

namespace ag = ::fkd::autograd;

namespace {

std::vector<int32_t> ArgmaxRows(const Tensor& logits) {
  std::vector<int32_t> out(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.Row(r);
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<int32_t>(best);
  }
  return out;
}

}  // namespace

FakeDetector::FakeDetector(FakeDetectorConfig config)
    : config_(std::move(config)) {}

FakeDetector::~FakeDetector() = default;

Status FakeDetector::Train(const eval::TrainContext& context) {
  FKD_TRACE_SCOPE("fkd/train");
  if (trained_) return Status::FailedPrecondition("already trained");
  if (context.dataset == nullptr || context.graph == nullptr) {
    return Status::InvalidArgument("TrainContext missing dataset or graph");
  }
  if (context.train_articles.empty() || context.train_creators.empty() ||
      context.train_subjects.empty()) {
    return Status::InvalidArgument("empty training set for some node type");
  }
  if (config_.diffusion_steps == 0) {
    return Status::InvalidArgument("diffusion_steps must be >= 1");
  }
  const data::Dataset& dataset = *context.dataset;
  granularity_ = context.granularity;
  const size_t num_classes = eval::NumClasses(context.granularity);

  // --- Text preparation ----------------------------------------------------
  std::vector<std::string> article_texts;
  std::vector<std::string> creator_texts;
  std::vector<std::string> subject_texts;
  for (const auto& a : dataset.articles) article_texts.push_back(a.text);
  for (const auto& c : dataset.creators) creator_texts.push_back(c.profile);
  for (const auto& s : dataset.subjects) subject_texts.push_back(s.description);
  const auto article_docs = text::TokenizeDocuments(article_texts);
  const auto creator_docs = text::TokenizeDocuments(creator_texts);
  const auto subject_docs = text::TokenizeDocuments(subject_texts);

  std::vector<int32_t> article_targets(dataset.articles.size());
  std::vector<int32_t> creator_targets(dataset.creators.size());
  std::vector<int32_t> subject_targets(dataset.subjects.size());
  for (const auto& a : dataset.articles) {
    article_targets[a.id] = eval::TargetOf(a.label, context.granularity);
  }
  for (const auto& c : dataset.creators) {
    creator_targets[c.id] = eval::TargetOf(c.label, context.granularity);
  }
  for (const auto& s : dataset.subjects) {
    subject_targets[s.id] = eval::TargetOf(s.label, context.granularity);
  }

  Rng rng(context.seed ^ 0xFAFEDE7EC70ULL);
  model_ = std::make_unique<DiffusionModel>(
      config_, num_classes,
      text::SelectChiSquareWordSet(article_docs, context.train_articles,
                                   article_targets, num_classes,
                                   config_.explicit_words),
      text::SelectChiSquareWordSet(creator_docs, context.train_creators,
                                   creator_targets, num_classes,
                                   config_.explicit_words),
      text::SelectChiSquareWordSet(subject_docs, context.train_subjects,
                                   subject_targets, num_classes,
                                   config_.explicit_words),
      text::BuildFrequencyVocabulary(article_docs, config_.latent_vocabulary),
      text::BuildFrequencyVocabulary(creator_docs, config_.latent_vocabulary),
      text::BuildFrequencyVocabulary(subject_docs, config_.latent_vocabulary),
      &rng);

  batch_.article_input = model_->article_hflu().PrepareBatch(article_docs);
  batch_.creator_input = model_->creator_hflu().PrepareBatch(creator_docs);
  batch_.subject_input = model_->subject_hflu().PrepareBatch(subject_docs);

  // --- Neighbour groups of the diffusive architecture ----------------------
  const graph::HeterogeneousGraph& graph = *context.graph;
  batch_.article_subject_groups.resize(dataset.articles.size());
  batch_.article_creator_groups.resize(dataset.articles.size());
  for (const auto& a : dataset.articles) {
    const auto subjects =
        graph.ArticleNeighbors(graph::EdgeType::kSubjectIndication, a.id);
    batch_.article_subject_groups[a.id].assign(subjects.begin(),
                                               subjects.end());
    const auto creators =
        graph.ArticleNeighbors(graph::EdgeType::kAuthorship, a.id);
    batch_.article_creator_groups[a.id].assign(creators.begin(),
                                               creators.end());
  }
  batch_.creator_article_groups.resize(dataset.creators.size());
  for (const auto& c : dataset.creators) {
    const auto articles =
        graph.ReverseNeighbors(graph::EdgeType::kAuthorship, c.id);
    batch_.creator_article_groups[c.id].assign(articles.begin(),
                                               articles.end());
  }
  batch_.subject_article_groups.resize(dataset.subjects.size());
  for (const auto& s : dataset.subjects) {
    const auto articles =
        graph.ReverseNeighbors(graph::EdgeType::kSubjectIndication, s.id);
    batch_.subject_article_groups[s.id].assign(articles.begin(),
                                               articles.end());
  }

  // --- Training loop: full-batch Adam on the joint objective ---------------
  // Optional validation holdout for early stopping.
  std::vector<int32_t> fit_articles = context.train_articles;
  std::vector<int32_t> fit_creators = context.train_creators;
  std::vector<int32_t> fit_subjects = context.train_subjects;
  std::vector<int32_t> val_articles;
  std::vector<int32_t> val_creators;
  std::vector<int32_t> val_subjects;
  const bool early_stopping = config_.validation_fraction > 0.0f;
  if (early_stopping) {
    if (config_.validation_fraction >= 1.0f) {
      return Status::InvalidArgument("validation_fraction must be < 1");
    }
    Rng split_rng(context.seed ^ 0xE591ULL);
    auto hold_out = [&split_rng, this](std::vector<int32_t>* fit,
                                       std::vector<int32_t>* val) {
      split_rng.Shuffle(fit);
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(static_cast<float>(fit->size()) *
                                 (1.0f - config_.validation_fraction)));
      val->assign(fit->begin() + keep, fit->end());
      fit->resize(keep);
    };
    hold_out(&fit_articles, &val_articles);
    hold_out(&fit_creators, &val_creators);
    hold_out(&fit_subjects, &val_subjects);
  }
  auto targets_of = [](const std::vector<int32_t>& ids,
                       const std::vector<int32_t>& all) {
    std::vector<int32_t> out;
    out.reserve(ids.size());
    for (int32_t id : ids) out.push_back(all[id]);
    return out;
  };
  const auto fit_article_targets = targets_of(fit_articles, article_targets);
  const auto fit_creator_targets = targets_of(fit_creators, creator_targets);
  const auto fit_subject_targets = targets_of(fit_subjects, subject_targets);
  const auto val_article_targets = targets_of(val_articles, article_targets);
  const auto val_creator_targets = targets_of(val_creators, creator_targets);
  const auto val_subject_targets = targets_of(val_subjects, subject_targets);

  auto parameters = model_->Parameters();
  nn::Adam optimizer(parameters, config_.learning_rate);
  train_stats_ = TrainStats{};
  train_stats_.epoch_losses.reserve(config_.epochs);

  float best_validation_loss = std::numeric_limits<float>::max();
  size_t epochs_since_best = 0;
  std::vector<Tensor> best_weights;

  // --- Resume from the newest valid checkpoint ----------------------------
  // Weights, optimizer accumulators, the dropout RNG cursor and the
  // early-stopping bookkeeping are all restored, so the continued run is
  // bit-for-bit the run that never stopped. Corrupt checkpoints were
  // skipped (with a warning) inside LoadNewestCheckpoint; NotFound simply
  // means a fresh start.
  Rng dropout_rng(context.seed ^ 0xD409u);
  size_t start_epoch = 0;
  if (!config_.checkpoint_dir.empty()) {
    auto resumed = LoadNewestCheckpoint(config_.checkpoint_dir, model_.get());
    if (resumed.ok()) {
      CheckpointState& ckpt = resumed.value();
      FKD_RETURN_NOT_OK(optimizer.SetState(ckpt.optimizer));
      if (!dropout_rng.RestoreState(ckpt.rng_state)) {
        return Status::Corruption("checkpoint carries an invalid RNG state");
      }
      start_epoch = ckpt.epoch;
      train_stats_ = std::move(ckpt.stats);
      best_validation_loss = ckpt.best_validation_loss;
      epochs_since_best = ckpt.epochs_since_best;
      best_weights = std::move(ckpt.best_weights);
      FKD_LOG(Info) << "FakeDetector resuming from checkpoint at epoch "
                    << start_epoch;
    }
  }

  obs::TrainObserver* observer = context.observer;
  obs::NotifyTrainBegin(observer, Name(), config_.epochs);
  if (config_.verbose) {
    FKD_LOG(Info) << "FakeDetector training over a "
                  << ThreadPool::Global().num_threads()
                  << "-thread intra-op compute pool";
  }
  WallTimer train_timer;
  WallTimer epoch_timer;
  size_t epochs_run = 0;

  for (size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    FKD_TRACE_SCOPE("fkd/epoch");
    epoch_timer.Restart();
    optimizer.ZeroGrad();
    const DiffusionModel::Logits logits =
        model_->Forward(batch_, config_.feature_dropout, &dropout_rng);
    std::vector<ag::Variable> loss_terms;
    loss_terms.push_back(ag::SoftmaxCrossEntropy(
        ag::GatherRows(logits.articles, fit_articles), fit_article_targets));
    loss_terms.push_back(ag::SoftmaxCrossEntropy(
        ag::GatherRows(logits.creators, fit_creators), fit_creator_targets));
    loss_terms.push_back(ag::SoftmaxCrossEntropy(
        ag::GatherRows(logits.subjects, fit_subjects), fit_subject_targets));
    if (config_.l2_weight > 0.0f) {
      std::vector<ag::Variable> penalties;
      for (const auto& p : parameters) penalties.push_back(ag::SumSquares(p));
      loss_terms.push_back(
          ag::Scale(ag::AddN(penalties), config_.l2_weight));
    }
    const ag::Variable loss = ag::AddN(loss_terms);
    {
      FKD_TRACE_SCOPE("fkd/backward");
      ag::Backward(loss);
    }
    const float grad_norm = nn::ClipGradNorm(parameters, config_.grad_clip);
    optimizer.Step();
    train_stats_.epoch_losses.push_back(loss.scalar());
    ++epochs_run;
    if (!early_stopping) train_stats_.best_epoch = epoch;
    if (config_.verbose && (epoch % 10 == 0 || epoch + 1 == config_.epochs)) {
      FKD_LOG(Info) << "FakeDetector epoch " << epoch << " loss "
                    << loss.scalar();
    }

    obs::EpochStats epoch_stats;
    epoch_stats.epoch = epoch;
    epoch_stats.loss = loss.scalar();
    epoch_stats.grad_norm = grad_norm;

    if (early_stopping) {
      // Validation loss on a clean (dropout-free) forward pass.
      const DiffusionModel::Logits val_logits = model_->Forward(batch_);
      float validation_loss = 0.0f;
      if (!val_articles.empty()) {
        validation_loss += ag::SoftmaxCrossEntropy(
                               ag::GatherRows(val_logits.articles, val_articles),
                               val_article_targets)
                               .scalar();
      }
      if (!val_creators.empty()) {
        validation_loss += ag::SoftmaxCrossEntropy(
                               ag::GatherRows(val_logits.creators, val_creators),
                               val_creator_targets)
                               .scalar();
      }
      if (!val_subjects.empty()) {
        validation_loss += ag::SoftmaxCrossEntropy(
                               ag::GatherRows(val_logits.subjects, val_subjects),
                               val_subject_targets)
                               .scalar();
      }
      train_stats_.validation_losses.push_back(validation_loss);
      epoch_stats.validation_loss = validation_loss;
      if (validation_loss < best_validation_loss) {
        best_validation_loss = validation_loss;
        epochs_since_best = 0;
        train_stats_.best_epoch = epoch;
        best_weights.clear();
        for (const auto& p : parameters) best_weights.push_back(p.value());
      } else if (++epochs_since_best >= config_.early_stopping_patience) {
        epoch_stats.seconds = epoch_timer.ElapsedSeconds();
        epoch_stats.total_seconds = train_timer.ElapsedSeconds();
        obs::NotifyEpochEnd(observer, Name(), epoch_stats);
        break;
      }
    }
    epoch_stats.seconds = epoch_timer.ElapsedSeconds();
    epoch_stats.total_seconds = train_timer.ElapsedSeconds();
    obs::NotifyEpochEnd(observer, Name(), epoch_stats);

    // Periodic crash-safe checkpoint through the same atomic-write path as
    // snapshots. A failed write degrades gracefully: training continues,
    // only resumability up to this epoch is lost.
    if (!config_.checkpoint_dir.empty() && config_.checkpoint_every > 0 &&
        (epoch + 1) % config_.checkpoint_every == 0) {
      CheckpointState ckpt;
      ckpt.epoch = epoch + 1;
      ckpt.rng_state = dropout_rng.DumpState();
      ckpt.optimizer = optimizer.GetState();
      ckpt.stats = train_stats_;
      ckpt.best_validation_loss = best_validation_loss;
      ckpt.epochs_since_best = epochs_since_best;
      ckpt.best_weights = best_weights;
      const Status written = WriteCheckpoint(config_.checkpoint_dir, ckpt,
                                             *model_, config_.checkpoint_keep);
      if (!written.ok()) {
        FKD_LOG(Warning) << "checkpoint at epoch " << epoch
                         << " failed: " << written.message()
                         << "; training continues without it";
      }
    }
  }
  obs::NotifyTrainEnd(observer, Name(), epochs_run,
                      train_timer.ElapsedSeconds());
  if (early_stopping && !best_weights.empty()) {
    for (size_t i = 0; i < parameters.size(); ++i) {
      parameters[i].mutable_value() = best_weights[i];
    }
  }

  // Cache final predictions (clean inference pass) and freeze the final
  // diffusion states — the neighbour context serving scores new articles
  // against.
  DiffusionModel::States states;
  const DiffusionModel::Logits logits =
      model_->Forward(batch_, 0.0f, nullptr, &states);
  predictions_.articles = ArgmaxRows(logits.articles.value());
  predictions_.creators = ArgmaxRows(logits.creators.value());
  predictions_.subjects = ArgmaxRows(logits.subjects.value());
  frozen_creator_states_ = states.creators.value();
  frozen_subject_states_ = states.subjects.value();
  trained_ = true;
  return Status::OK();
}

Result<eval::Predictions> FakeDetector::Predict() {
  if (!trained_) return Status::FailedPrecondition("Train() first");
  return predictions_;
}

size_t FakeDetector::ParameterCount() const {
  return model_ == nullptr ? 0 : model_->ParameterCount();
}

}  // namespace core
}  // namespace fkd
