#include "core/diffusion_model.h"

#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fkd {
namespace core {

namespace ag = ::fkd::autograd;

DiffusionModel::DiffusionModel(const FakeDetectorConfig& config,
                               size_t num_classes,
                               text::Vocabulary article_words,
                               text::Vocabulary creator_words,
                               text::Vocabulary subject_words,
                               text::Vocabulary article_vocab,
                               text::Vocabulary creator_vocab,
                               text::Vocabulary subject_vocab, Rng* rng)
    : article_hflu_(config.hflu, std::move(article_words),
                    std::move(article_vocab), rng),
      creator_hflu_(config.hflu, std::move(creator_words),
                    std::move(creator_vocab), rng),
      subject_hflu_(config.hflu, std::move(subject_words),
                    std::move(subject_vocab), rng),
      article_gdu_(article_hflu_.output_dim(), config.gdu_hidden, rng,
                   config.gdu),
      creator_gdu_(creator_hflu_.output_dim(), config.gdu_hidden, rng,
                   config.gdu),
      subject_gdu_(subject_hflu_.output_dim(), config.gdu_hidden, rng,
                   config.gdu),
      article_head_(config.gdu_hidden, num_classes, rng),
      creator_head_(config.gdu_hidden, num_classes, rng),
      subject_head_(config.gdu_hidden, num_classes, rng),
      diffusion_steps_(config.diffusion_steps),
      num_classes_(num_classes) {}

void DiffusionModel::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParameter>* out) const {
  article_hflu_.CollectParameters(nn::JoinName(prefix, "article_hflu"), out);
  creator_hflu_.CollectParameters(nn::JoinName(prefix, "creator_hflu"), out);
  subject_hflu_.CollectParameters(nn::JoinName(prefix, "subject_hflu"), out);
  article_gdu_.CollectParameters(nn::JoinName(prefix, "article_gdu"), out);
  creator_gdu_.CollectParameters(nn::JoinName(prefix, "creator_gdu"), out);
  subject_gdu_.CollectParameters(nn::JoinName(prefix, "subject_gdu"), out);
  article_head_.CollectParameters(nn::JoinName(prefix, "article_head"), out);
  creator_head_.CollectParameters(nn::JoinName(prefix, "creator_head"), out);
  subject_head_.CollectParameters(nn::JoinName(prefix, "subject_head"), out);
}

DiffusionModel::Logits DiffusionModel::Forward(const DiffusionBatch& batch,
                                               float feature_dropout,
                                               Rng* dropout_rng,
                                               States* states_out) const {
  FKD_TRACE_SCOPE("fkd/forward");
  static obs::Histogram* forward_us =
      obs::MetricsRegistry::Default().GetHistogram("fkd.model.forward_us");
  ScopedTimer<obs::Histogram> forward_timer(forward_us);
  const size_t h = article_gdu_.hidden_dim();
  const bool training = dropout_rng != nullptr && feature_dropout > 0.0f;
  ag::Variable xa = article_hflu_.Forward(batch.article_input);
  ag::Variable xu = creator_hflu_.Forward(batch.creator_input);
  ag::Variable xs = subject_hflu_.Forward(batch.subject_input);
  if (training) {
    xa = ag::Dropout(xa, feature_dropout, dropout_rng, true);
    xu = ag::Dropout(xu, feature_dropout, dropout_rng, true);
    xs = ag::Dropout(xs, feature_dropout, dropout_rng, true);
  }

  // All hidden states start at 0; missing GDU ports stay 0 throughout.
  ag::Variable ha(Tensor(batch.article_input.sequences.size(), h), false,
                  "ha0");
  ag::Variable hu(Tensor(batch.creator_input.sequences.size(), h), false,
                  "hu0");
  ag::Variable hs(Tensor(batch.subject_input.sequences.size(), h), false,
                  "hs0");
  const ag::Variable zero_u(Tensor(batch.creator_input.sequences.size(), h),
                            false, "zero_u");
  const ag::Variable zero_s(Tensor(batch.subject_input.sequences.size(), h),
                            false, "zero_s");

  for (size_t step = 0; step < diffusion_steps_; ++step) {
    // Synchronous update: all reads use the previous step's states.
    const ag::Variable za = ag::GroupMeanRows(hs, batch.article_subject_groups);
    const ag::Variable ta = ag::GroupMeanRows(hu, batch.article_creator_groups);
    const ag::Variable zu = ag::GroupMeanRows(ha, batch.creator_article_groups);
    const ag::Variable zs = ag::GroupMeanRows(ha, batch.subject_article_groups);
    const ag::Variable ha_next = article_gdu_.Step(xa, za, ta);
    const ag::Variable hu_next = creator_gdu_.Step(xu, zu, zero_u);
    const ag::Variable hs_next = subject_gdu_.Step(xs, zs, zero_s);
    ha = ha_next;
    hu = hu_next;
    hs = hs_next;
  }

  if (states_out != nullptr) *states_out = States{ha, hu, hs};
  return {article_head_.Forward(ha), creator_head_.Forward(hu),
          subject_head_.Forward(hs)};
}

Tensor DiffusionModel::ScoreArticles(
    const HfluInput& input,
    const std::vector<std::vector<int32_t>>& subject_groups,
    const std::vector<std::vector<int32_t>>& creator_groups,
    const Tensor& creator_states, const Tensor& subject_states) const {
  FKD_TRACE_SCOPE("fkd/score_articles");
  static obs::Histogram* score_us =
      obs::MetricsRegistry::Default().GetHistogram("fkd.model.score_us");
  ScopedTimer<obs::Histogram> score_timer(score_us);
  const size_t n = input.sequences.size();
  FKD_CHECK_EQ(subject_groups.size(), n);
  FKD_CHECK_EQ(creator_groups.size(), n);
  FKD_CHECK_EQ(creator_states.cols(), article_gdu_.hidden_dim());
  FKD_CHECK_EQ(subject_states.cols(), article_gdu_.hidden_dim());

  ag::InferenceModeGuard no_grad;
  // Sub-stage spans nest under fkd/score_articles in the chrome trace, so a
  // slow serve/compute stage can be attributed to the text encoder, the
  // graph aggregation, or the diffusion step.
  ag::Variable xa;
  {
    FKD_TRACE_SCOPE("fkd/score_articles/hflu_forward");
    xa = article_hflu_.Forward(input);
  }
  const ag::Variable hu(creator_states, false, "frozen_hu");
  const ag::Variable hs(subject_states, false, "frozen_hs");
  ag::Variable za, ta;
  {
    FKD_TRACE_SCOPE("fkd/score_articles/graph_aggregate");
    za = ag::GroupMeanRows(hs, subject_groups);
    ta = ag::GroupMeanRows(hu, creator_groups);
  }
  ag::Variable ha;
  {
    FKD_TRACE_SCOPE("fkd/score_articles/gdu_step");
    // Cache-blocked tape-free step against the packed frozen weights —
    // bitwise-identical to Step (the golden parity suite locks this), but
    // one fused GEMM for all four gates and no graph-node churn. Scoring
    // models are frozen snapshots, satisfying StepInference's contract.
    ha = ag::Variable(
        article_gdu_.StepInference(xa.value(), za.value(), ta.value()),
        /*requires_grad=*/false, "ha");
  }
  FKD_TRACE_SCOPE("fkd/score_articles/head_forward");
  return article_head_.Forward(ha).value();
}

}  // namespace core
}  // namespace fkd
