#ifndef FKD_CORE_DIFFUSION_MODEL_H_
#define FKD_CORE_DIFFUSION_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/gdu.h"
#include "core/hflu.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/autograd.h"
#include "text/vocabulary.h"

namespace fkd {
namespace core {

/// Full configuration of the FakeDetector framework (§4).
struct FakeDetectorConfig {
  /// Shared HFLU sizes for all three node types (feature ablations included:
  /// hflu.use_explicit / hflu.use_latent).
  HfluConfig hflu;

  /// Size of each pre-extracted explicit word set (W_n, W_u, W_s),
  /// chi-square-selected from the *training* labels.
  size_t explicit_words = 150;
  /// Latent GRU vocabulary size (most frequent tokens over all texts).
  size_t latent_vocabulary = 1000;

  /// GDU hidden-state width.
  size_t gdu_hidden = 48;
  /// Unrolled synchronous diffusion steps K over the News-HSN.
  size_t diffusion_steps = 2;
  /// GDU ablations (disable forget/adjust gates, plain fusion unit).
  GduOptions gdu;

  /// Training hyper-parameters (full-batch Adam over the joint objective
  /// L(T_n) + L(T_u) + L(T_s) + alpha * L_reg).
  size_t epochs = 80;
  float learning_rate = 0.005f;
  /// Dropout applied to the HFLU feature matrices during training.
  float feature_dropout = 0.2f;
  float l2_weight = 5e-4f;  ///< The paper's regularisation weight alpha.
  float grad_clip = 5.0f;

  /// Early stopping: when > 0, this fraction of each training set is held
  /// out for validation; training stops once the validation loss has not
  /// improved for `early_stopping_patience` epochs, and the best-epoch
  /// weights are restored. 0 disables it (the paper's fixed-epoch
  /// protocol).
  float validation_fraction = 0.0f;
  size_t early_stopping_patience = 10;

  /// Crash-safe training checkpoints. When `checkpoint_dir` is non-empty,
  /// Train() writes `ckpt-<epoch>` directories there every
  /// `checkpoint_every` epochs (weights + optimizer state + RNG cursor,
  /// manifest-verified, atomically published) and resumes from the newest
  /// valid one, reproducing the uninterrupted run bit-for-bit. The newest
  /// `checkpoint_keep` checkpoints are retained.
  std::string checkpoint_dir;
  size_t checkpoint_every = 1;
  size_t checkpoint_keep = 2;

  bool verbose = false;
};

/// Everything a full diffusion forward pass consumes besides parameters:
/// the prepared (tokenised, encoded) inputs per node type and the neighbour
/// groups of the News-HSN. Built once per corpus, reused every epoch.
struct DiffusionBatch {
  HfluInput article_input;
  HfluInput creator_input;
  HfluInput subject_input;
  /// groups[n] lists the neighbour ids whose states the diffusion averages
  /// into node n's GDU input port (empty group => zero port).
  std::vector<std::vector<int32_t>> article_subject_groups;
  std::vector<std::vector<int32_t>> article_creator_groups;
  std::vector<std::vector<int32_t>> creator_article_groups;
  std::vector<std::vector<int32_t>> subject_article_groups;
};

/// The paper's deep diffusive network as a standalone parameter tree: one
/// HFLU + GDU per node type, K synchronous diffusion steps over the
/// heterogeneous graph, and one softmax credibility head per node type.
///
/// `FakeDetector` owns one of these for training; `serve::Snapshot`
/// rebuilds one from disk for inference. Forward/ScoreArticles are const
/// and allocate no shared state, so a frozen model may be shared across
/// serving threads.
class DiffusionModel : public nn::Module {
 public:
  /// Word sets are the explicit feature vocabularies (W_n, W_u, W_s);
  /// vocabs are the latent GRU vocabularies. Their sizes fix the parameter
  /// shapes, so a reloaded model must be built from the same vocabularies.
  DiffusionModel(const FakeDetectorConfig& config, size_t num_classes,
                 text::Vocabulary article_words, text::Vocabulary creator_words,
                 text::Vocabulary subject_words, text::Vocabulary article_vocab,
                 text::Vocabulary creator_vocab, text::Vocabulary subject_vocab,
                 Rng* rng);

  /// Logits of one full forward pass, one row per node of each type.
  struct Logits {
    autograd::Variable articles;
    autograd::Variable creators;
    autograd::Variable subjects;
  };

  /// Final hidden states h after the K diffusion steps — the frozen
  /// neighbour context a serving snapshot persists.
  struct States {
    autograd::Variable articles;
    autograd::Variable creators;
    autograd::Variable subjects;
  };

  /// One full forward pass: HFLU features, K diffusion steps, logits.
  /// `dropout_rng` non-null enables training-time feature dropout. When
  /// `states_out` is non-null it receives the final hidden states.
  Logits Forward(const DiffusionBatch& batch, float feature_dropout = 0.0f,
                 Rng* dropout_rng = nullptr, States* states_out = nullptr) const;

  /// Batched inference entry point for serving: scores `input` (a prepared
  /// batch of *new* articles) against the frozen creator/subject hidden
  /// states of the trained corpus. Runs tape-free (InferenceModeGuard) and
  /// returns raw logits [n x num_classes].
  ///
  /// Per article: x = article_hflu(input), z = mean of frozen subject
  /// states over subject_groups[i], t = mean of frozen creator states over
  /// creator_groups[i], h = gdu(x, z, t), logits = head(h). Because the
  /// GDU has no self-recurrence and the neighbour states are frozen, one
  /// step is already the fixed point of the K-step unrolled diffusion.
  /// Group indices must be valid rows of the corresponding state matrix
  /// (callers validate; out-of-range aborts).
  Tensor ScoreArticles(const HfluInput& input,
                       const std::vector<std::vector<int32_t>>& subject_groups,
                       const std::vector<std::vector<int32_t>>& creator_groups,
                       const Tensor& creator_states,
                       const Tensor& subject_states) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override;

  const Hflu& article_hflu() const { return article_hflu_; }
  const Hflu& creator_hflu() const { return creator_hflu_; }
  const Hflu& subject_hflu() const { return subject_hflu_; }
  /// Exposed so parity suites and benches can drive the article scoring
  /// pieces (HFLU -> GDU -> head) directly against ScoreArticles.
  const GduCell& article_gdu() const { return article_gdu_; }
  const nn::Linear& article_head() const { return article_head_; }
  size_t num_classes() const { return num_classes_; }
  size_t hidden_dim() const { return article_gdu_.hidden_dim(); }
  size_t diffusion_steps() const { return diffusion_steps_; }

 private:
  Hflu article_hflu_;
  Hflu creator_hflu_;
  Hflu subject_hflu_;
  GduCell article_gdu_;
  GduCell creator_gdu_;
  GduCell subject_gdu_;
  nn::Linear article_head_;
  nn::Linear creator_head_;
  nn::Linear subject_head_;
  size_t diffusion_steps_;
  size_t num_classes_;
};

}  // namespace core
}  // namespace fkd

#endif  // FKD_CORE_DIFFUSION_MODEL_H_
