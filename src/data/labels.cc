#include "data/labels.h"

#include <cmath>

#include "common/string_util.h"

namespace fkd {
namespace data {

std::string_view LabelName(CredibilityLabel label) {
  switch (label) {
    case CredibilityLabel::kPantsOnFire:
      return "Pants on Fire!";
    case CredibilityLabel::kFalse:
      return "False";
    case CredibilityLabel::kMostlyFalse:
      return "Mostly False";
    case CredibilityLabel::kHalfTrue:
      return "Half True";
    case CredibilityLabel::kMostlyTrue:
      return "Mostly True";
    case CredibilityLabel::kTrue:
      return "True";
  }
  return "?";
}

Result<CredibilityLabel> LabelFromName(std::string_view name) {
  for (size_t id = 0; id < kNumCredibilityClasses; ++id) {
    const auto label = static_cast<CredibilityLabel>(id);
    if (LabelName(label) == name) return label;
  }
  return Status::InvalidArgument(
      StrFormat("unknown credibility label '%.*s'",
                static_cast<int>(name.size()), name.data()));
}

CredibilityLabel LabelFromScore(double score) {
  const double rounded = std::round(score);
  double clamped = rounded;
  if (clamped < 1.0) clamped = 1.0;
  if (clamped > 6.0) clamped = 6.0;
  return static_cast<CredibilityLabel>(static_cast<int>(clamped) - 1);
}

Result<CredibilityLabel> LabelFromClassId(int32_t class_id) {
  if (class_id < 0 || class_id >= static_cast<int32_t>(kNumCredibilityClasses)) {
    return Status::OutOfRange(StrFormat("class id %d not in [0, 6)", class_id));
  }
  return static_cast<CredibilityLabel>(class_id);
}

}  // namespace data
}  // namespace fkd
