#include "data/liar.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace fkd {
namespace data {

Result<CredibilityLabel> LiarLabelFromToken(std::string_view token) {
  // LIAR's "barely-true" sits where the paper's "Mostly False" rung does.
  if (token == "pants-fire") return CredibilityLabel::kPantsOnFire;
  if (token == "false") return CredibilityLabel::kFalse;
  if (token == "barely-true") return CredibilityLabel::kMostlyFalse;
  if (token == "half-true") return CredibilityLabel::kHalfTrue;
  if (token == "mostly-true") return CredibilityLabel::kMostlyTrue;
  if (token == "true") return CredibilityLabel::kTrue;
  return Status::InvalidArgument(
      StrFormat("unknown LIAR label '%.*s'", static_cast<int>(token.size()),
                token.data()));
}

Result<Dataset> LoadLiarDataset(const std::string& path,
                                const LiarImportOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  Dataset dataset;
  std::map<std::string, int32_t> creator_ids;
  std::map<std::string, int32_t> subject_ids;

  std::string line;
  size_t line_number = 0;
  size_t skipped = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    const std::string context = StrFormat("%s:%zu", path.c_str(), line_number);
    const auto fields = Split(line, '\t');

    auto reject = [&](const std::string& reason) -> Status {
      if (options.skip_bad_rows) {
        ++skipped;
        return Status::OK();
      }
      return Status::Corruption(context + ": " + reason);
    };

    if (fields.size() < 8) {
      FKD_RETURN_NOT_OK(reject(StrFormat("expected >= 8 tab-separated "
                                         "columns, found %zu",
                                         fields.size())));
      continue;
    }
    const std::string statement(Trim(fields[2]));
    if (statement.empty()) {
      FKD_RETURN_NOT_OK(reject("empty statement"));
      continue;
    }
    auto label = LiarLabelFromToken(std::string(Trim(fields[1])));
    if (!label.ok()) {
      FKD_RETURN_NOT_OK(reject(label.status().message()));
      continue;
    }

    // Subjects: distinct non-empty names.
    std::vector<std::string> subject_names;
    for (const auto& raw : Split(fields[3], ',')) {
      const std::string name = ToLower(Trim(raw));
      if (!name.empty()) subject_names.push_back(name);
    }
    std::sort(subject_names.begin(), subject_names.end());
    subject_names.erase(
        std::unique(subject_names.begin(), subject_names.end()),
        subject_names.end());
    if (subject_names.empty()) {
      FKD_RETURN_NOT_OK(reject("no subjects"));
      continue;
    }

    const std::string speaker = ToLower(Trim(fields[4]));
    if (speaker.empty()) {
      FKD_RETURN_NOT_OK(reject("no speaker"));
      continue;
    }

    // Intern the creator.
    auto [creator_it, creator_inserted] =
        creator_ids.try_emplace(speaker, static_cast<int32_t>(dataset.creators.size()));
    if (creator_inserted) {
      Creator creator;
      creator.id = creator_it->second;
      creator.name = speaker;
      std::vector<std::string> profile_parts;
      for (size_t column : {5u, 6u, 7u}) {
        if (column < fields.size()) {
          const std::string part(Trim(fields[column]));
          if (!part.empty()) profile_parts.push_back(ToLower(part));
        }
      }
      creator.profile =
          profile_parts.empty() ? speaker : Join(profile_parts, " ");
      dataset.creators.push_back(std::move(creator));
    }

    Article article;
    article.id = static_cast<int32_t>(dataset.articles.size());
    article.text = statement;
    article.label = label.value();
    article.creator = creator_it->second;
    for (const auto& name : subject_names) {
      auto [subject_it, subject_inserted] = subject_ids.try_emplace(
          name, static_cast<int32_t>(dataset.subjects.size()));
      if (subject_inserted) {
        Subject subject;
        subject.id = subject_it->second;
        subject.name = name;
        subject.description = name;
        dataset.subjects.push_back(std::move(subject));
      }
      article.subjects.push_back(subject_it->second);
    }
    std::sort(article.subjects.begin(), article.subjects.end());
    dataset.articles.push_back(std::move(article));
  }

  if (dataset.articles.empty()) {
    return Status::Corruption(path + ": no usable rows" +
                              (skipped > 0
                                   ? StrFormat(" (%zu skipped)", skipped)
                                   : ""));
  }
  dataset.DeriveEntityLabels();
  FKD_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace data
}  // namespace fkd
