#include "data/io.h"

#include <fstream>
#include <sstream>

#include "common/file_io.h"
#include "common/string_util.h"

namespace fkd {
namespace data {

namespace {

Result<int32_t> ParseId(const std::string& field, const std::string& context) {
  uint64_t value = 0;
  if (!ParseUint64(field, &value) || value > INT32_MAX) {
    return Status::Corruption(context + ": bad id '" + field + "'");
  }
  return static_cast<int32_t>(value);
}

Result<CredibilityLabel> ParseLabelField(const std::string& field,
                                         const std::string& context) {
  uint64_t value = 0;
  if (!ParseUint64(field, &value)) {
    return Status::Corruption(context + ": bad class id '" + field + "'");
  }
  auto label = LabelFromClassId(static_cast<int32_t>(value));
  if (!label.ok()) return Status::Corruption(context + ": " + label.status().message());
  return label;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& prefix) {
  FKD_RETURN_NOT_OK(dataset.Validate());
  // Each table is rendered in memory and written through the durable,
  // fault-injectable shim — one "io.write" ordinal per table.
  {
    std::ostringstream out;
    for (const Article& article : dataset.articles) {
      std::vector<std::string> subject_ids;
      subject_ids.reserve(article.subjects.size());
      for (int32_t s : article.subjects) {
        subject_ids.push_back(StrFormat("%d", s));
      }
      out << article.id << '\t' << article.creator << '\t'
          << MultiClassOf(article.label) << '\t' << Join(subject_ids, ",")
          << '\t' << article.text << '\n';
    }
    FKD_RETURN_NOT_OK(WriteStringToFile(prefix + ".articles.tsv", out.str()));
  }
  {
    std::ostringstream out;
    for (const Creator& creator : dataset.creators) {
      out << creator.id << '\t' << MultiClassOf(creator.label) << '\t'
          << creator.name << '\t' << creator.profile << '\n';
    }
    FKD_RETURN_NOT_OK(WriteStringToFile(prefix + ".creators.tsv", out.str()));
  }
  {
    std::ostringstream out;
    for (const Subject& subject : dataset.subjects) {
      out << subject.id << '\t' << MultiClassOf(subject.label) << '\t'
          << subject.name << '\t' << subject.description << '\n';
    }
    FKD_RETURN_NOT_OK(WriteStringToFile(prefix + ".subjects.tsv", out.str()));
  }
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& prefix) {
  Dataset dataset;
  {
    const std::string path = prefix + ".articles.tsv";
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open: " + path);
    std::string line;
    size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      const std::string context = StrFormat("%s:%zu", path.c_str(), line_number);
      const auto fields = Split(line, '\t');
      if (fields.size() != 5) {
        return Status::Corruption(context + ": expected 5 fields");
      }
      Article article;
      FKD_ASSIGN_OR_RETURN(article.id, ParseId(fields[0], context));
      FKD_ASSIGN_OR_RETURN(article.creator, ParseId(fields[1], context));
      FKD_ASSIGN_OR_RETURN(article.label, ParseLabelField(fields[2], context));
      for (const std::string& subject_field : Split(fields[3], ',')) {
        if (subject_field.empty()) continue;
        FKD_ASSIGN_OR_RETURN(int32_t subject, ParseId(subject_field, context));
        article.subjects.push_back(subject);
      }
      article.text = fields[4];
      dataset.articles.push_back(std::move(article));
    }
  }
  {
    const std::string path = prefix + ".creators.tsv";
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open: " + path);
    std::string line;
    size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      const std::string context = StrFormat("%s:%zu", path.c_str(), line_number);
      const auto fields = Split(line, '\t');
      if (fields.size() != 4) {
        return Status::Corruption(context + ": expected 4 fields");
      }
      Creator creator;
      FKD_ASSIGN_OR_RETURN(creator.id, ParseId(fields[0], context));
      FKD_ASSIGN_OR_RETURN(creator.label, ParseLabelField(fields[1], context));
      creator.name = fields[2];
      creator.profile = fields[3];
      dataset.creators.push_back(std::move(creator));
    }
  }
  {
    const std::string path = prefix + ".subjects.tsv";
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open: " + path);
    std::string line;
    size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      const std::string context = StrFormat("%s:%zu", path.c_str(), line_number);
      const auto fields = Split(line, '\t');
      if (fields.size() != 4) {
        return Status::Corruption(context + ": expected 4 fields");
      }
      Subject subject;
      FKD_ASSIGN_OR_RETURN(subject.id, ParseId(fields[0], context));
      FKD_ASSIGN_OR_RETURN(subject.label, ParseLabelField(fields[1], context));
      subject.name = fields[2];
      subject.description = fields[3];
      dataset.subjects.push_back(std::move(subject));
    }
  }
  Status valid = dataset.Validate();
  if (!valid.ok()) {
    return Status::Corruption("loaded dataset invalid: " + valid.message());
  }
  return dataset;
}

}  // namespace data
}  // namespace fkd
