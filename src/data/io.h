#ifndef FKD_DATA_IO_H_
#define FKD_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace fkd {
namespace data {

/// Writes the three entity tables to `<prefix>.articles.tsv`,
/// `<prefix>.creators.tsv`, `<prefix>.subjects.tsv`.
///
/// Article rows: id, creator, class id, comma-separated subject ids, text.
/// Creator rows: id, class id, name, profile.
/// Subject rows: id, class id, name, description.
/// Free text is the last field so it may contain anything except tab and
/// newline.
Status SaveDataset(const Dataset& dataset, const std::string& prefix);

/// Loads and validates a dataset written by SaveDataset. Malformed rows
/// produce Corruption with file/line context.
Result<Dataset> LoadDataset(const std::string& prefix);

}  // namespace data
}  // namespace fkd

#endif  // FKD_DATA_IO_H_
