#ifndef FKD_DATA_LIAR_H_
#define FKD_DATA_LIAR_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace fkd {
namespace data {

/// Importer for the public LIAR benchmark (Wang, ACL 2017), the standard
/// redistributable PolitiFact-derived corpus. Users with the real data can
/// load it straight into this library's `Dataset` and run every model and
/// bench unchanged.
///
/// LIAR rows are tab-separated with 14 columns:
///   0 id            ("2635.json")
///   1 label         (pants-fire | false | barely-true | half-true |
///                    mostly-true | true)
///   2 statement     (the article text)
///   3 subjects      (comma-separated subject names)
///   4 speaker       (the creator)
///   5 speaker job title
///   6 state
///   7 party
///   8..12 credit-history counts (ignored)
///   13 context      (ignored)
///
/// Mapping into the News-HSN: each distinct speaker becomes a creator
/// (profile = "<job> <state> <party>"), each distinct subject name becomes
/// a subject node (description = its name), LIAR's "barely-true" maps to
/// this library's "Mostly False" rung, and creator/subject ground truth is
/// derived with the paper's weighted-mean rule (§5.1.1).
///
/// Rows with a missing statement, unknown label, or no subjects are
/// rejected as Corruption (pass `skip_bad_rows` to drop them instead).
struct LiarImportOptions {
  /// Drop malformed rows instead of failing the import.
  bool skip_bad_rows = false;
};

Result<Dataset> LoadLiarDataset(const std::string& path,
                                const LiarImportOptions& options = {});

/// Parses one LIAR label token ("pants-fire", "barely-true", ...).
Result<CredibilityLabel> LiarLabelFromToken(std::string_view token);

}  // namespace data
}  // namespace fkd

#endif  // FKD_DATA_LIAR_H_
