#include "data/split.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace fkd {
namespace data {

Result<std::vector<CvSplit>> KFoldSplits(size_t n, size_t k, Rng* rng) {
  if (k < 2) return Status::InvalidArgument("k-fold needs k >= 2");
  if (k > n) {
    return Status::InvalidArgument(
        StrFormat("k-fold needs k <= n (k=%zu, n=%zu)", k, n));
  }
  FKD_CHECK(rng != nullptr);

  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  // Fold f takes the contiguous chunk [bounds[f], bounds[f+1]) of the
  // shuffled order as its test set.
  std::vector<size_t> bounds(k + 1, 0);
  for (size_t f = 0; f <= k; ++f) bounds[f] = f * n / k;

  std::vector<CvSplit> splits(k);
  for (size_t f = 0; f < k; ++f) {
    CvSplit& split = splits[f];
    split.test.assign(order.begin() + bounds[f], order.begin() + bounds[f + 1]);
    split.train.reserve(n - split.test.size());
    split.train.insert(split.train.end(), order.begin(),
                       order.begin() + bounds[f]);
    split.train.insert(split.train.end(), order.begin() + bounds[f + 1],
                       order.end());
  }
  return splits;
}

std::vector<int32_t> SubsampleTraining(const std::vector<int32_t>& train,
                                       double theta, Rng* rng) {
  FKD_CHECK(rng != nullptr);
  FKD_CHECK_GT(theta, 0.0);
  FKD_CHECK_LE(theta, 1.0);
  if (train.empty()) return {};
  size_t keep = static_cast<size_t>(
      std::lround(theta * static_cast<double>(train.size())));
  keep = std::max<size_t>(1, std::min(keep, train.size()));
  std::vector<size_t> picks = rng->SampleWithoutReplacement(train.size(), keep);
  std::vector<int32_t> sampled;
  sampled.reserve(keep);
  for (size_t index : picks) sampled.push_back(train[index]);
  return sampled;
}

Result<std::vector<TriSplit>> KFoldTriSplits(size_t num_articles,
                                             size_t num_creators,
                                             size_t num_subjects, size_t k,
                                             Rng* rng) {
  FKD_ASSIGN_OR_RETURN(auto article_splits, KFoldSplits(num_articles, k, rng));
  FKD_ASSIGN_OR_RETURN(auto creator_splits, KFoldSplits(num_creators, k, rng));
  FKD_ASSIGN_OR_RETURN(auto subject_splits, KFoldSplits(num_subjects, k, rng));
  std::vector<TriSplit> splits(k);
  for (size_t f = 0; f < k; ++f) {
    splits[f].articles = std::move(article_splits[f]);
    splits[f].creators = std::move(creator_splits[f]);
    splits[f].subjects = std::move(subject_splits[f]);
  }
  return splits;
}

}  // namespace data
}  // namespace fkd
