#ifndef FKD_DATA_LABELS_H_
#define FKD_DATA_LABELS_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace fkd {
namespace data {

/// PolitiFact "Truth-O-Meter" credibility classes, ordered from least to
/// most credible. The class id doubles as the 0-based ordinal; the paper's
/// numeric score (§5.1.1: "Pants on Fire!": 1 ... "True": 6) is id + 1.
enum class CredibilityLabel : int8_t {
  kPantsOnFire = 0,
  kFalse = 1,
  kMostlyFalse = 2,
  kHalfTrue = 3,
  kMostlyTrue = 4,
  kTrue = 5,
};

inline constexpr size_t kNumCredibilityClasses = 6;
inline constexpr size_t kNumBiClasses = 2;

/// Display name, e.g. "Pants on Fire!".
std::string_view LabelName(CredibilityLabel label);

/// Parses a display name back to a label.
Result<CredibilityLabel> LabelFromName(std::string_view name);

/// The paper's numeric credibility score in [1, 6].
inline int NumericScore(CredibilityLabel label) {
  return static_cast<int>(label) + 1;
}

/// Inverse of NumericScore with rounding and clamping; used to derive
/// creator/subject ground truth from the weighted mean of their articles'
/// scores (§5.1.1).
CredibilityLabel LabelFromScore(double score);

/// Bi-class grouping (§5.1.3): {Half True, Mostly True, True} => positive.
inline bool IsPositive(CredibilityLabel label) {
  return static_cast<int>(label) >= static_cast<int>(CredibilityLabel::kHalfTrue);
}

/// 1 for the positive (credible) group, 0 for the negative group.
inline int32_t BiClassOf(CredibilityLabel label) {
  return IsPositive(label) ? 1 : 0;
}

/// The 0-based multi-class id.
inline int32_t MultiClassOf(CredibilityLabel label) {
  return static_cast<int32_t>(label);
}

/// Validated conversion from a class id in [0, 6).
Result<CredibilityLabel> LabelFromClassId(int32_t class_id);

}  // namespace data
}  // namespace fkd

#endif  // FKD_DATA_LABELS_H_
