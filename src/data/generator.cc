#include "data/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace fkd {
namespace data {

namespace {

// Credibility-correlated vocabulary (Fig 1b/1c: distinctive frequent words
// of true vs. false articles).
const std::vector<std::string>& TruePool() {
  static const auto& kWords = *new std::vector<std::string>{
      "president", "income",   "tax",      "american", "economy",
      "percent",   "jobs",     "education", "wage",    "budget",
      "workers",   "senate",   "bill",     "law",      "average",
      "million",   "spending", "report",   "rate",     "growth"};
  return kWords;
}

const std::vector<std::string>& FalsePool() {
  static const auto& kWords = *new std::vector<std::string>{
      "obama",     "republican", "clinton",  "obamacare", "gun",
      "immigrants", "voter",     "fraud",    "terrorists", "socialist",
      "scandal",   "conspiracy", "secret",   "illegal",   "refugees",
      "banned",    "shocking",   "hoax",     "muslims",   "communist"};
  return kWords;
}

// Profile vocabulary correlated with creator reliability.
const std::vector<std::string>& HonestProfilePool() {
  static const auto& kWords = *new std::vector<std::string>{
      "senator",  "governor",  "representative", "economist", "professor",
      "journalist", "analyst", "official",       "spokesman", "director"};
  return kWords;
}

const std::vector<std::string>& DubiousProfilePool() {
  static const auto& kWords = *new std::vector<std::string>{
      "blogger", "chain",     "email", "viral", "facebook",
      "post",    "anonymous", "pundit", "radio", "host"};
  return kWords;
}

// The 20 most popular subjects of Fig 1d, most popular first, with the
// fraction of true articles the paper reports or implies. "health" is
// false-leaning (46.5% true), "economy" true-leaning (63.2% true).
struct NamedSubject {
  const char* name;
  double true_fraction;
};

constexpr std::array<NamedSubject, 20> kTopSubjects = {{
    {"health", 0.44},      {"economy", 0.64},    {"taxes", 0.58},
    {"federal", 0.54},     {"jobs", 0.61},       {"state", 0.53},
    {"candidates", 0.44},  {"elections", 0.41},  {"immigration", 0.37},
    {"foreign", 0.52},     {"crime", 0.43},      {"history", 0.48},
    {"energy", 0.57},      {"legal", 0.51},      {"environment", 0.56},
    {"guns", 0.34},        {"military", 0.50},   {"terrorism", 0.32},
    {"education", 0.63},   {"job", 0.60},
}};

// Persona creators of Fig 1e/1f. Histograms are per-class article counts
// in figure order True, Mostly True, Half True, Mostly False, False,
// Pants on Fire!.
struct Persona {
  const char* name;
  std::array<int, 6> counts_true_to_pof;
};

constexpr std::array<Persona, 4> kPersonas = {{
    {"Barack Obama", {123, 165, 161, 70, 71, 9}},      // 599 articles.
    {"Donald Trump", {23, 60, 77, 112, 167, 75}},      // 514 articles.
    {"Hillary Clinton", {72, 76, 69, 41, 31, 7}},      // 296 articles.
    {"Mike Pence", {4, 5, 14, 8, 13, 0}},              // 44 articles.
}};

// Beta(a, b) with small integer parameters via order statistics: the a-th
// smallest of a+b-1 i.i.d. uniforms. Exact and allocation-light for the
// parameter sizes used here.
double BetaInt(int a, int b, Rng* rng) {
  const int n = a + b - 1;
  std::array<double, 16> u{};
  FKD_CHECK_LE(n, 16);
  for (int i = 0; i < n; ++i) u[i] = rng->Uniform();
  std::sort(u.begin(), u.begin() + n);
  return u[a - 1];
}

// Latent creator reliability: a mixture giving a bimodal population
// (mostly-honest and mostly-dishonest creators) plus a uniform middle.
double SampleReliability(Rng* rng) {
  const double which = rng->Uniform();
  if (which < 0.45) return BetaInt(7, 3, rng);  // Honest mode, mean 0.7.
  if (which < 0.80) return BetaInt(3, 7, rng);  // Dishonest mode, mean 0.3.
  return rng->Uniform(0.2, 0.8);
}

// Zipf-weighted index into a pool of the given size (rank-1 most likely).
size_t ZipfIndex(size_t pool_size, Rng* rng) {
  // Inverse-CDF on a continuous 1/x density over [1, pool_size + 1).
  const double u = rng->Uniform();
  const double x = std::pow(static_cast<double>(pool_size) + 1.0, u);
  size_t index = static_cast<size_t>(x) - 1;
  if (index >= pool_size) index = pool_size - 1;
  return index;
}

class CorpusBuilder {
 public:
  CorpusBuilder(const GeneratorOptions& options, Rng* rng)
      : options_(options), rng_(rng) {
    filler_.reserve(options.num_filler_words);
    for (size_t i = 0; i < options.num_filler_words; ++i) {
      filler_.push_back(StrFormat("filler%04zu", i));
    }
  }

  std::string FillerWord() { return filler_[ZipfIndex(filler_.size(), rng_)]; }

  // Draws one credibility-correlated word for an article whose numeric
  // score is `score` in [1, 6]: the truer the article, the likelier a
  // true-pool word.
  std::string ClassWord(int score) {
    const double p_true = static_cast<double>(score - 1) / 5.0;
    const auto& pool = rng_->Bernoulli(p_true) ? TruePool() : FalsePool();
    return pool[ZipfIndex(pool.size(), rng_)];
  }

  std::string ProfileWord(double reliability) {
    const auto& pool =
        rng_->Bernoulli(reliability) ? HonestProfilePool() : DubiousProfilePool();
    return pool[ZipfIndex(pool.size(), rng_)];
  }

 private:
  const GeneratorOptions& options_;
  Rng* rng_;
  std::vector<std::string> filler_;
};

std::string JoinWords(const std::vector<std::string>& words) {
  return Join(words, " ");
}

}  // namespace

const std::vector<std::string>& TrueLeaningWords() { return TruePool(); }
const std::vector<std::string>& FalseLeaningWords() { return FalsePool(); }

const std::vector<std::string>& TopSubjectNames() {
  static const auto& kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const auto& subject : kTopSubjects) names->push_back(subject.name);
    return names;
  }();
  return *kNames;
}

const std::vector<std::string>& PersonaNames() {
  static const auto& kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const auto& persona : kPersonas) names->push_back(persona.name);
    return names;
  }();
  return *kNames;
}

GeneratorOptions GeneratorOptions::Scaled(size_t num_articles, uint64_t seed) {
  GeneratorOptions options;
  const double ratio =
      static_cast<double>(num_articles) / static_cast<double>(options.num_articles);
  options.num_articles = num_articles;
  options.num_creators = std::max<size_t>(
      8, static_cast<size_t>(std::lround(3634.0 * ratio)));
  options.num_subjects = std::max<size_t>(
      12, static_cast<size_t>(std::lround(152.0 * std::sqrt(ratio))));
  options.seed = seed;
  return options;
}

Result<Dataset> GeneratePolitiFact(const GeneratorOptions& options) {
  if (options.num_articles == 0 || options.num_creators == 0 ||
      options.num_subjects == 0) {
    return Status::InvalidArgument("node counts must be positive");
  }
  if (options.num_creators > options.num_articles) {
    return Status::InvalidArgument(
        "need num_creators <= num_articles (every creator publishes)");
  }
  if (options.mean_subjects_per_article < 1.0) {
    return Status::InvalidArgument("mean_subjects_per_article must be >= 1");
  }
  if (options.power_law_alpha <= 1.0) {
    return Status::InvalidArgument("power_law_alpha must exceed 1");
  }
  if (options.min_article_words == 0 ||
      options.min_article_words > options.max_article_words) {
    return Status::InvalidArgument("bad article word-length range");
  }

  Rng rng(options.seed);
  CorpusBuilder builder(options, &rng);
  Dataset dataset;

  // --- Subjects -----------------------------------------------------------
  // Popularity is Zipf over rank; the first 20 carry the names and truth
  // biases of Fig 1d, the tail is synthetic with mild random bias.
  std::vector<double> subject_popularity(options.num_subjects);
  std::vector<double> subject_bias(options.num_subjects);
  dataset.subjects.resize(options.num_subjects);
  for (size_t s = 0; s < options.num_subjects; ++s) {
    Subject& subject = dataset.subjects[s];
    subject.id = static_cast<int32_t>(s);
    subject_popularity[s] = 1.0 / std::pow(static_cast<double>(s + 1), 0.85);
    if (s < kTopSubjects.size()) {
      subject.name = kTopSubjects[s].name;
      subject_bias[s] = kTopSubjects[s].true_fraction;
    } else {
      subject.name = StrFormat("subject%03zu", s);
      subject_bias[s] = rng.Uniform(0.32, 0.68);
    }
  }

  // --- Creators -----------------------------------------------------------
  const bool with_personas =
      options.include_personas && options.num_creators > kPersonas.size() * 2;
  const size_t num_personas = with_personas ? kPersonas.size() : 0;

  std::vector<double> reliability(options.num_creators);
  std::vector<size_t> quota(options.num_creators, 0);
  dataset.creators.resize(options.num_creators);

  // Persona quotas scale with corpus size relative to the paper's 14,055.
  const double persona_scale =
      static_cast<double>(options.num_articles) / 14055.0;
  size_t persona_total = 0;
  std::vector<std::array<size_t, 6>> persona_histograms(num_personas);
  for (size_t p = 0; p < num_personas; ++p) {
    size_t total = 0;
    for (size_t c = 0; c < 6; ++c) {
      // Figure order is True..PoF; our class ids run PoF..True.
      const int figure_count = kPersonas[p].counts_true_to_pof[c];
      const size_t scaled = static_cast<size_t>(
          std::lround(figure_count * persona_scale));
      persona_histograms[p][5 - c] = scaled;
      total += scaled;
    }
    if (total == 0) {  // Tiny corpora: keep at least one article.
      persona_histograms[p][5] = 1;
      total = 1;
    }
    quota[p] = total;
    persona_total += total;
    dataset.creators[p].name = kPersonas[p].name;
    // Persona reliability consistent with their histogram (used for
    // profile text only; labels come from the histogram).
    double score_mass = 0.0;
    for (size_t c = 0; c < 6; ++c) {
      score_mass += static_cast<double>(persona_histograms[p][c]) *
                    static_cast<double>(c) / 5.0;
    }
    reliability[p] = score_mass / static_cast<double>(total);
  }
  if (persona_total >= options.num_articles) {
    return Status::InvalidArgument(
        "corpus too small for persona histograms; disable include_personas");
  }

  // Remaining creators: one guaranteed article plus a power-law surplus,
  // rescaled so totals match exactly.
  const size_t regular_creators = options.num_creators - num_personas;
  const size_t regular_articles = options.num_articles - persona_total;
  if (regular_articles < regular_creators) {
    return Status::InvalidArgument("not enough articles for all creators");
  }
  // The Obama persona must remain the most prolific creator (Fig 1a /
  // §3.2.1), so cap the power-law head of regular creators below it.
  size_t creator_cap = options.max_articles_per_creator;
  if (num_personas > 0) {
    creator_cap = std::min(creator_cap, std::max<size_t>(2, quota[0] * 4 / 5));
  }
  for (size_t u = num_personas; u < options.num_creators; ++u) {
    dataset.creators[u].name = StrFormat("creator%05zu", u);
    reliability[u] = SampleReliability(&rng);
    quota[u] = rng.PowerLaw(options.power_law_alpha, creator_cap);
  }
  // Adjust the non-persona quotas to sum exactly to regular_articles.
  size_t current_total = 0;
  for (size_t u = num_personas; u < options.num_creators; ++u) {
    current_total += quota[u];
  }
  while (current_total > regular_articles) {
    const size_t u =
        num_personas + rng.UniformInt(regular_creators);
    if (quota[u] > 1) {
      --quota[u];
      --current_total;
    }
  }
  // Respect the cap when total capacity allows it, so the persona head of
  // the distribution is preserved; otherwise the cap must spill over.
  const bool cap_is_feasible =
      regular_creators * creator_cap >= regular_articles;
  while (current_total < regular_articles) {
    const size_t u =
        num_personas + rng.UniformInt(regular_creators);
    if (cap_is_feasible && quota[u] >= creator_cap) continue;
    ++quota[u];
    ++current_total;
  }

  for (size_t u = 0; u < options.num_creators; ++u) {
    Creator& creator = dataset.creators[u];
    creator.id = static_cast<int32_t>(u);
    // Profile text: name tokens + reliability-correlated role words +
    // filler.
    std::vector<std::string> words;
    const size_t profile_length = rng.UniformInt(10, 18);
    for (size_t i = 0; i < profile_length; ++i) {
      const double which = rng.Uniform();
      if (which < 0.45) {
        words.push_back(builder.ProfileWord(reliability[u]));
      } else {
        words.push_back(builder.FillerWord());
      }
    }
    creator.profile = JoinWords(words);
  }

  // --- Articles -----------------------------------------------------------
  dataset.articles.reserve(options.num_articles);
  for (size_t u = 0; u < options.num_creators; ++u) {
    // Persona class schedule: emit exactly the scaled histogram.
    std::vector<int32_t> persona_schedule;
    if (u < num_personas) {
      for (size_t c = 0; c < 6; ++c) {
        persona_schedule.insert(persona_schedule.end(), persona_histograms[u][c],
                                static_cast<int32_t>(c));
      }
      rng.Shuffle(&persona_schedule);
    }

    for (size_t a = 0; a < quota[u]; ++a) {
      Article article;
      article.id = static_cast<int32_t>(dataset.articles.size());
      article.creator = static_cast<int32_t>(u);

      // Primary subject first: its truth bias co-determines the label, so
      // per-subject credibility skews (Fig 1d) are planted in the data.
      const int32_t primary_subject =
          static_cast<int32_t>(rng.Discrete(subject_popularity));

      // Label.
      if (u < num_personas) {
        article.label = static_cast<CredibilityLabel>(persona_schedule[a]);
      } else if (rng.Bernoulli(options.label_noise)) {
        article.label = static_cast<CredibilityLabel>(rng.UniformInt(6u));
      } else {
        const double p = options.creator_influence * reliability[u] +
                         (1.0 - options.creator_influence) *
                             subject_bias[primary_subject];
        int successes = 0;
        for (int trial = 0; trial < 5; ++trial) {
          if (rng.Bernoulli(p)) ++successes;
        }
        article.label = static_cast<CredibilityLabel>(successes);
      }

      // Secondary subjects: popularity-weighted but biased toward subjects
      // whose lean matches the article's label, so every article-subject
      // link (not just the primary one) carries credibility signal.
      const double extra_mean = options.mean_subjects_per_article - 1.0;
      size_t num_subject_links = 1;
      for (int trial = 0; trial < 6; ++trial) {
        if (rng.Bernoulli(extra_mean / 6.0)) ++num_subject_links;
      }
      num_subject_links = std::min(num_subject_links, options.num_subjects);
      const bool is_true_leaning = IsPositive(article.label);
      std::vector<double> compatibility(options.num_subjects);
      for (size_t s = 0; s < options.num_subjects; ++s) {
        const double match =
            is_true_leaning ? subject_bias[s] : 1.0 - subject_bias[s];
        compatibility[s] = subject_popularity[s] * match;
      }
      std::unordered_set<int32_t> chosen = {primary_subject};
      while (chosen.size() < num_subject_links) {
        chosen.insert(static_cast<int32_t>(rng.Discrete(compatibility)));
      }
      article.subjects.assign(chosen.begin(), chosen.end());
      std::sort(article.subjects.begin(), article.subjects.end());

      // Statement text.
      const int score = NumericScore(article.label);
      const size_t length = rng.UniformInt(
          static_cast<int64_t>(options.min_article_words),
          static_cast<int64_t>(options.max_article_words));
      std::vector<std::string> words;
      words.reserve(length);
      for (size_t i = 0; i < length; ++i) {
        const double which = rng.Uniform();
        if (which < options.class_word_probability) {
          words.push_back(builder.ClassWord(score));
        } else if (which < options.class_word_probability +
                               options.subject_word_probability) {
          const int32_t s = article.subjects[rng.UniformInt(
              article.subjects.size())];
          words.push_back(dataset.subjects[s].name);
        } else {
          words.push_back(builder.FillerWord());
        }
      }
      article.text = JoinWords(words);
      dataset.articles.push_back(std::move(article));
    }
  }

  // --- Subject descriptions (need the subjects' article mix; write a
  // bias-correlated description) --------------------------------------------
  for (size_t s = 0; s < options.num_subjects; ++s) {
    Subject& subject = dataset.subjects[s];
    std::vector<std::string> words;
    const size_t length = rng.UniformInt(8, 15);
    for (size_t i = 0; i < length; ++i) {
      const double which = rng.Uniform();
      if (which < 0.30) {
        words.push_back(subject.name);
      } else if (which < 0.55) {
        const auto& pool = rng.Bernoulli(subject_bias[s]) ? TruePool()
                                                          : FalsePool();
        words.push_back(pool[ZipfIndex(pool.size(), &rng)]);
      } else {
        words.push_back(builder.FillerWord());
      }
    }
    subject.description = JoinWords(words);
  }

  dataset.DeriveEntityLabels();
  FKD_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace data
}  // namespace fkd
