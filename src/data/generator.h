#ifndef FKD_DATA_GENERATOR_H_
#define FKD_DATA_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace fkd {
namespace data {

/// Parameters of the synthetic PolitiFact corpus generator.
///
/// The generator reproduces the statistical properties the paper reports
/// for the crawled PolitiFact network (Section 3): node and link counts
/// (Table 1), a power-law creator→article distribution with a Barack-
/// Obama-like head (Fig 1a), class-conditional vocabulary (Fig 1b/1c),
/// per-subject credibility skew (health false-leaning, economy
/// true-leaning — Fig 1d), and the four persona creators with the exact
/// per-class article histograms of Fig 1e/1f. Creator and subject ground
/// truth is then derived exactly as §5.1.1 prescribes (weighted mean of
/// article scores, rounded).
struct GeneratorOptions {
  /// Node counts; the defaults are the paper's Table 1.
  size_t num_articles = 14055;
  size_t num_creators = 3634;
  size_t num_subjects = 152;

  /// Mean article-subject links per article (Table 1: 48756/14055 = 3.47).
  double mean_subjects_per_article = 3.47;
  /// Exponent of the creator→article power law (Fig 1a).
  double power_law_alpha = 2.1;
  /// Cap on non-persona creator prolificness.
  size_t max_articles_per_creator = 180;

  /// Article statement length range in words (PolitiFact statements are
  /// single claims).
  size_t min_article_words = 12;
  size_t max_article_words = 30;

  /// Size of the neutral filler vocabulary (Zipf-popular).
  size_t num_filler_words = 2000;

  /// Probability that an article token is drawn from the credibility-
  /// correlated pools — the text signal strength SVM/RNN can learn. The
  /// default is calibrated so text-only baselines land in the paper's
  /// 0.55-0.65 bi-class accuracy band, leaving the cross-modal headroom
  /// the real corpus exhibits.
  double class_word_probability = 0.18;
  /// Probability that an article token is a topic word of one of its
  /// subjects.
  double subject_word_probability = 0.20;

  /// Weight of the creator's latent reliability (vs. the subjects' bias)
  /// when sampling an article's label — the graph signal strength.
  double creator_influence = 0.65;
  /// Probability of replacing a sampled label with a uniform one.
  double label_noise = 0.08;

  /// Include the four persona creators of Fig 1e/1f (scaled to the corpus
  /// size).
  bool include_personas = true;

  uint64_t seed = 42;

  /// The paper's full-scale configuration (Table 1 counts).
  static GeneratorOptions PaperScale() { return GeneratorOptions{}; }

  /// A proportionally scaled-down corpus for tests and default bench runs.
  static GeneratorOptions Scaled(size_t num_articles, uint64_t seed = 42);
};

/// Generates a validated dataset (entity labels already derived).
/// Fails with InvalidArgument for inconsistent options (e.g. more creators
/// than articles, since every creator must publish at least one article).
Result<Dataset> GeneratePolitiFact(const GeneratorOptions& options);

/// The built-in true-leaning / false-leaning word pools the generator
/// plants (exposed for tests and the Fig 1b/1c analysis bench).
const std::vector<std::string>& TrueLeaningWords();
const std::vector<std::string>& FalseLeaningWords();

/// Names of the 20 most popular subjects (Fig 1d's y-axis), most popular
/// first: "health", "economy", "taxes", ...
const std::vector<std::string>& TopSubjectNames();

/// Persona creators planted when include_personas is set.
const std::vector<std::string>& PersonaNames();

}  // namespace data
}  // namespace fkd

#endif  // FKD_DATA_GENERATOR_H_
