#ifndef FKD_DATA_DATASET_H_
#define FKD_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/labels.h"
#include "graph/hetero_graph.h"

namespace fkd {
namespace data {

/// A news article (Definition 2.1): textual content + credibility label,
/// plus its authorship and subject links.
struct Article {
  int32_t id = 0;
  std::string text;
  CredibilityLabel label = CredibilityLabel::kHalfTrue;
  /// Authoring creator (the paper: "each news article has only one
  /// creator").
  int32_t creator = -1;
  /// Subject ids (1..many; the PolitiFact average is ~3.5).
  std::vector<int32_t> subjects;
};

/// A news creator (Definition 2.3): profile text + credibility label.
struct Creator {
  int32_t id = 0;
  std::string name;
  std::string profile;
  CredibilityLabel label = CredibilityLabel::kHalfTrue;
};

/// A news subject (Definition 2.2): description text + credibility label.
struct Subject {
  int32_t id = 0;
  std::string name;
  std::string description;
  CredibilityLabel label = CredibilityLabel::kHalfTrue;
};

/// The full PolitiFact-style corpus: entity tables whose ids equal their
/// vector positions, linked into a News-HSN on demand.
struct Dataset {
  std::vector<Article> articles;
  std::vector<Creator> creators;
  std::vector<Subject> subjects;

  /// Structural sanity: contiguous ids, link endpoints in range, each
  /// article has a creator and at least one subject, no duplicate subject
  /// links.
  Status Validate() const;

  /// Builds (and finalizes) the heterogeneous graph over this dataset.
  Result<graph::HeterogeneousGraph> BuildGraph() const;

  /// Re-derives creator and subject ground-truth labels as the paper does
  /// (§5.1.1): the weighted mean of their articles' numeric scores,
  /// rounded back to a label. Entities with no articles keep their current
  /// label.
  void DeriveEntityLabels();

  /// Total article-subject links.
  size_t NumSubjectLinks() const;
};

/// Human-readable one-paragraph summary (node/link counts — Table 1).
std::string DescribeDataset(const Dataset& dataset);

}  // namespace data
}  // namespace fkd

#endif  // FKD_DATA_DATASET_H_
