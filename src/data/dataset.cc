#include "data/dataset.h"

#include <unordered_set>

#include "common/string_util.h"

namespace fkd {
namespace data {

Status Dataset::Validate() const {
  for (size_t i = 0; i < articles.size(); ++i) {
    const Article& article = articles[i];
    if (article.id != static_cast<int32_t>(i)) {
      return Status::Corruption(
          StrFormat("article %zu has id %d", i, article.id));
    }
    if (article.creator < 0 ||
        static_cast<size_t>(article.creator) >= creators.size()) {
      return Status::Corruption(
          StrFormat("article %zu: creator %d out of range", i,
                    article.creator));
    }
    if (article.subjects.empty()) {
      return Status::Corruption(StrFormat("article %zu has no subjects", i));
    }
    std::unordered_set<int32_t> seen;
    for (int32_t subject : article.subjects) {
      if (subject < 0 || static_cast<size_t>(subject) >= subjects.size()) {
        return Status::Corruption(
            StrFormat("article %zu: subject %d out of range", i, subject));
      }
      if (!seen.insert(subject).second) {
        return Status::Corruption(
            StrFormat("article %zu: duplicate subject %d", i, subject));
      }
    }
  }
  for (size_t i = 0; i < creators.size(); ++i) {
    if (creators[i].id != static_cast<int32_t>(i)) {
      return Status::Corruption(
          StrFormat("creator %zu has id %d", i, creators[i].id));
    }
  }
  for (size_t i = 0; i < subjects.size(); ++i) {
    if (subjects[i].id != static_cast<int32_t>(i)) {
      return Status::Corruption(
          StrFormat("subject %zu has id %d", i, subjects[i].id));
    }
  }
  return Status::OK();
}

Result<graph::HeterogeneousGraph> Dataset::BuildGraph() const {
  FKD_RETURN_NOT_OK(Validate());
  graph::HeterogeneousGraph graph(articles.size(), creators.size(),
                                  subjects.size());
  for (const Article& article : articles) {
    FKD_RETURN_NOT_OK(graph.AddEdge(graph::EdgeType::kAuthorship, article.id,
                                    article.creator));
    for (int32_t subject : article.subjects) {
      FKD_RETURN_NOT_OK(graph.AddEdge(graph::EdgeType::kSubjectIndication,
                                      article.id, subject));
    }
  }
  FKD_RETURN_NOT_OK(graph.Finalize());
  return graph;
}

void Dataset::DeriveEntityLabels() {
  std::vector<double> creator_score(creators.size(), 0.0);
  std::vector<size_t> creator_count(creators.size(), 0);
  std::vector<double> subject_score(subjects.size(), 0.0);
  std::vector<size_t> subject_count(subjects.size(), 0);
  for (const Article& article : articles) {
    const double score = static_cast<double>(NumericScore(article.label));
    creator_score[article.creator] += score;
    ++creator_count[article.creator];
    for (int32_t subject : article.subjects) {
      subject_score[subject] += score;
      ++subject_count[subject];
    }
  }
  for (size_t i = 0; i < creators.size(); ++i) {
    if (creator_count[i] > 0) {
      creators[i].label =
          LabelFromScore(creator_score[i] / static_cast<double>(creator_count[i]));
    }
  }
  for (size_t i = 0; i < subjects.size(); ++i) {
    if (subject_count[i] > 0) {
      subjects[i].label =
          LabelFromScore(subject_score[i] / static_cast<double>(subject_count[i]));
    }
  }
}

size_t Dataset::NumSubjectLinks() const {
  size_t total = 0;
  for (const Article& article : articles) total += article.subjects.size();
  return total;
}

std::string DescribeDataset(const Dataset& dataset) {
  return StrFormat(
      "articles=%zu creators=%zu subjects=%zu creator-article links=%zu "
      "article-subject links=%zu",
      dataset.articles.size(), dataset.creators.size(),
      dataset.subjects.size(), dataset.articles.size(),
      dataset.NumSubjectLinks());
}

}  // namespace data
}  // namespace fkd
