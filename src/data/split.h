#ifndef FKD_DATA_SPLIT_H_
#define FKD_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace fkd {
namespace data {

/// One cross-validation fold: disjoint train/test index sets over [0, n).
struct CvSplit {
  std::vector<int32_t> train;
  std::vector<int32_t> test;
};

/// Shuffled k-fold cross-validation over n instances (§5.1.1 uses k = 10,
/// i.e. a 9:1 train:test ratio per fold). Every index appears in exactly
/// one fold's test set; fold sizes differ by at most one. Requires
/// 2 <= k <= n.
Result<std::vector<CvSplit>> KFoldSplits(size_t n, size_t k, Rng* rng);

/// The paper's sample-ratio protocol (§5.1.1): keeps a uniformly random
/// theta-fraction of the training indices (theta in (0, 1]; theta = 1
/// returns all, order shuffled). At least one index is kept when train is
/// non-empty.
std::vector<int32_t> SubsampleTraining(const std::vector<int32_t>& train,
                                       double theta, Rng* rng);

/// Per-node-type splits for the three entity sets of one experiment run.
struct TriSplit {
  CvSplit articles;
  CvSplit creators;
  CvSplit subjects;
};

/// Builds aligned k-fold splits for articles/creators/subjects (each set
/// is split independently, as the paper partitions all three sets 9:1).
Result<std::vector<TriSplit>> KFoldTriSplits(size_t num_articles,
                                             size_t num_creators,
                                             size_t num_subjects, size_t k,
                                             Rng* rng);

}  // namespace data
}  // namespace fkd

#endif  // FKD_DATA_SPLIT_H_
