#ifndef FKD_GRAPH_RANDOM_WALK_H_
#define FKD_GRAPH_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/hetero_graph.h"

namespace fkd {
namespace graph {

/// Configuration for truncated uniform random walks (DeepWalk §3).
struct RandomWalkOptions {
  /// Walks started from every node per epoch (DeepWalk's gamma).
  size_t walks_per_node = 10;
  /// Maximum walk length (DeepWalk's t).
  size_t walk_length = 40;
};

/// Generates truncated random walks over the homogeneous view of the
/// heterogeneous graph. Nodes without neighbours yield length-1 walks.
/// The start-node order is shuffled per pass, as in the DeepWalk paper.
std::vector<std::vector<int32_t>> GenerateRandomWalks(
    const HeterogeneousGraph& graph, const RandomWalkOptions& options,
    Rng* rng);

/// Configuration for node2vec's second-order biased walks (Grover &
/// Leskovec 2016). With return_p = inout_q = 1 this degenerates to the
/// uniform DeepWalk walk.
struct Node2VecOptions {
  size_t walks_per_node = 10;
  size_t walk_length = 40;
  /// Return parameter p: weight 1/p for stepping back to the previous node.
  double return_p = 1.0;
  /// In-out parameter q: weight 1/q for nodes not adjacent to the previous
  /// node (exploration); weight 1 for common neighbours.
  double inout_q = 1.0;
};

/// Generates node2vec walks via rejection-free weighted sampling of the
/// unnormalised second-order transition weights.
std::vector<std::vector<int32_t>> GenerateNode2VecWalks(
    const HeterogeneousGraph& graph, const Node2VecOptions& options,
    Rng* rng);

}  // namespace graph
}  // namespace fkd

#endif  // FKD_GRAPH_RANDOM_WALK_H_
