#include "graph/alias_table.h"

#include "common/logging.h"

namespace fkd {
namespace graph {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  FKD_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    FKD_CHECK_GE(w, 0.0);
    total += w;
  }
  FKD_CHECK_GT(total, 0.0);

  probability_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<size_t> small;
  std::vector<size_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) probability_[i] = 1.0;
  for (size_t i : small) probability_[i] = 1.0;  // Numerical residue.
}

size_t AliasTable::Sample(Rng* rng) const {
  FKD_CHECK(rng != nullptr);
  const size_t bucket = rng->UniformInt(probability_.size());
  return rng->Uniform() < probability_[bucket] ? bucket : alias_[bucket];
}

}  // namespace graph
}  // namespace fkd
