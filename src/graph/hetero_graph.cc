#include "graph/hetero_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace graph {

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kArticle:
      return "article";
    case NodeType::kCreator:
      return "creator";
    case NodeType::kSubject:
      return "subject";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kAuthorship:
      return "authorship";
    case EdgeType::kSubjectIndication:
      return "subject_indication";
  }
  return "?";
}

HeterogeneousGraph::HeterogeneousGraph(size_t num_articles,
                                       size_t num_creators,
                                       size_t num_subjects) {
  node_counts_[AsIndex(NodeType::kArticle)] = num_articles;
  node_counts_[AsIndex(NodeType::kCreator)] = num_creators;
  node_counts_[AsIndex(NodeType::kSubject)] = num_subjects;
}

Status HeterogeneousGraph::AddEdge(EdgeType type, int32_t article,
                                   int32_t other) {
  if (finalized_) {
    return Status::FailedPrecondition("graph already finalized");
  }
  const size_t other_count =
      type == EdgeType::kAuthorship ? NumNodes(NodeType::kCreator)
                                    : NumNodes(NodeType::kSubject);
  if (article < 0 ||
      static_cast<size_t>(article) >= NumNodes(NodeType::kArticle)) {
    return Status::OutOfRange(StrFormat("article %d out of range", article));
  }
  if (other < 0 || static_cast<size_t>(other) >= other_count) {
    return Status::OutOfRange(StrFormat("%s endpoint %d out of range",
                                        EdgeTypeName(type), other));
  }
  raw_edges_[AsIndex(type)].emplace_back(article, other);
  return Status::OK();
}

HeterogeneousGraph::Csr HeterogeneousGraph::BuildCsr(
    size_t num_nodes, const std::vector<std::pair<int32_t, int32_t>>& edges,
    bool* has_duplicates) {
  Csr csr;
  csr.offsets.assign(num_nodes + 1, 0);
  for (const auto& [src, dst] : edges) ++csr.offsets[src + 1];
  for (size_t i = 1; i <= num_nodes; ++i) csr.offsets[i] += csr.offsets[i - 1];
  csr.targets.resize(edges.size());
  std::vector<int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [src, dst] : edges) csr.targets[cursor[src]++] = dst;
  for (size_t node = 0; node < num_nodes; ++node) {
    auto begin = csr.targets.begin() + csr.offsets[node];
    auto end = csr.targets.begin() + csr.offsets[node + 1];
    std::sort(begin, end);
    if (has_duplicates != nullptr && std::adjacent_find(begin, end) != end) {
      *has_duplicates = true;
    }
  }
  return csr;
}

Status HeterogeneousGraph::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  for (size_t e = 0; e < kNumEdgeTypes; ++e) {
    const size_t other_count = e == AsIndex(EdgeType::kAuthorship)
                                   ? NumNodes(NodeType::kCreator)
                                   : NumNodes(NodeType::kSubject);
    bool duplicates = false;
    forward_[e] =
        BuildCsr(NumNodes(NodeType::kArticle), raw_edges_[e], &duplicates);
    if (duplicates) {
      return Status::Corruption(StrFormat("duplicate %s edge",
                                          EdgeTypeName(static_cast<EdgeType>(e))));
    }
    std::vector<std::pair<int32_t, int32_t>> reversed;
    reversed.reserve(raw_edges_[e].size());
    for (const auto& [article, other] : raw_edges_[e]) {
      reversed.emplace_back(other, article);
    }
    reverse_[e] = BuildCsr(other_count, reversed, nullptr);
  }

  // Homogeneous view: both directions of every edge.
  global_edges_.clear();
  global_edges_.reserve(2 * (raw_edges_[0].size() + raw_edges_[1].size()));
  for (size_t e = 0; e < kNumEdgeTypes; ++e) {
    const NodeType other_type = e == AsIndex(EdgeType::kAuthorship)
                                    ? NodeType::kCreator
                                    : NodeType::kSubject;
    for (const auto& [article, other] : raw_edges_[e]) {
      const int32_t ga = GlobalId(NodeType::kArticle, article);
      const int32_t go = GlobalId(other_type, other);
      global_edges_.emplace_back(ga, go);
      global_edges_.emplace_back(go, ga);
    }
  }
  global_ = BuildCsr(TotalNodes(), global_edges_, nullptr);
  finalized_ = true;
  return Status::OK();
}

size_t HeterogeneousGraph::TotalNodes() const {
  return node_counts_[0] + node_counts_[1] + node_counts_[2];
}

size_t HeterogeneousGraph::NumEdges(EdgeType type) const {
  return raw_edges_[AsIndex(type)].size();
}

std::span<const int32_t> HeterogeneousGraph::ArticleNeighbors(
    EdgeType type, int32_t article) const {
  FKD_CHECK(finalized_);
  FKD_CHECK_GE(article, 0);
  FKD_CHECK_LT(static_cast<size_t>(article), NumNodes(NodeType::kArticle));
  return forward_[AsIndex(type)].Neighbors(article);
}

std::span<const int32_t> HeterogeneousGraph::ReverseNeighbors(
    EdgeType type, int32_t other) const {
  FKD_CHECK(finalized_);
  const size_t other_count = type == EdgeType::kAuthorship
                                 ? NumNodes(NodeType::kCreator)
                                 : NumNodes(NodeType::kSubject);
  FKD_CHECK_GE(other, 0);
  FKD_CHECK_LT(static_cast<size_t>(other), other_count);
  return reverse_[AsIndex(type)].Neighbors(other);
}

int32_t HeterogeneousGraph::GlobalId(NodeType type, int32_t index) const {
  FKD_CHECK_GE(index, 0);
  FKD_CHECK_LT(static_cast<size_t>(index), NumNodes(type));
  int32_t offset = 0;
  for (size_t t = 0; t < AsIndex(type); ++t) {
    offset += static_cast<int32_t>(node_counts_[t]);
  }
  return offset + index;
}

NodeType HeterogeneousGraph::TypeOfGlobal(int32_t global_id) const {
  FKD_CHECK_GE(global_id, 0);
  size_t remaining = static_cast<size_t>(global_id);
  for (size_t t = 0; t < kNumNodeTypes; ++t) {
    if (remaining < node_counts_[t]) return static_cast<NodeType>(t);
    remaining -= node_counts_[t];
  }
  FKD_CHECK(false) << "global id " << global_id << " out of range";
  return NodeType::kArticle;
}

int32_t HeterogeneousGraph::LocalIndexOfGlobal(int32_t global_id) const {
  FKD_CHECK_GE(global_id, 0);
  size_t remaining = static_cast<size_t>(global_id);
  for (size_t t = 0; t < kNumNodeTypes; ++t) {
    if (remaining < node_counts_[t]) return static_cast<int32_t>(remaining);
    remaining -= node_counts_[t];
  }
  FKD_CHECK(false) << "global id " << global_id << " out of range";
  return -1;
}

std::span<const int32_t> HeterogeneousGraph::GlobalNeighbors(
    int32_t global_id) const {
  FKD_CHECK(finalized_);
  FKD_CHECK_GE(global_id, 0);
  FKD_CHECK_LT(static_cast<size_t>(global_id), TotalNodes());
  return global_.Neighbors(global_id);
}

const std::vector<std::pair<int32_t, int32_t>>&
HeterogeneousGraph::GlobalEdges() const {
  FKD_CHECK(finalized_);
  return global_edges_;
}

}  // namespace graph
}  // namespace fkd
