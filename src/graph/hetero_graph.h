#ifndef FKD_GRAPH_HETERO_GRAPH_H_
#define FKD_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace fkd {
namespace graph {

/// Node categories of the news-augmented heterogeneous social network
/// (News-HSN, Definition 2.4): articles N, creators U, subjects S.
enum class NodeType : uint8_t { kArticle = 0, kCreator = 1, kSubject = 2 };
inline constexpr size_t kNumNodeTypes = 3;

/// Edge categories: authorship E_{u,n} (article–creator) and topic
/// indication E_{n,s} (article–subject).
enum class EdgeType : uint8_t { kAuthorship = 0, kSubjectIndication = 1 };
inline constexpr size_t kNumEdgeTypes = 2;

const char* NodeTypeName(NodeType type);
const char* EdgeTypeName(EdgeType type);

/// The news-augmented heterogeneous social network G = (V, E).
///
/// Nodes are addressed by (NodeType, dense per-type index); a "global id"
/// linearisation (articles, then creators, then subjects) serves homogeneous
/// consumers (DeepWalk/LINE walks and embeddings).
///
/// Build protocol: construct with node counts, AddEdge() repeatedly, then
/// Finalize() to produce CSR adjacency. Queries FKD_CHECK that Finalize()
/// ran.
class HeterogeneousGraph {
 public:
  HeterogeneousGraph(size_t num_articles, size_t num_creators,
                     size_t num_subjects);

  /// Adds an authorship (article–creator) or subject-indication
  /// (article–subject) edge. Duplicate edges are rejected at Finalize().
  Status AddEdge(EdgeType type, int32_t article, int32_t other);

  /// Sorts, validates (duplicates are Corruption) and freezes adjacency.
  Status Finalize();

  bool finalized() const { return finalized_; }

  /// Counts ------------------------------------------------------------

  size_t NumNodes(NodeType type) const { return node_counts_[AsIndex(type)]; }
  size_t TotalNodes() const;
  size_t NumEdges(EdgeType type) const;

  /// Typed adjacency (requires Finalize()) -----------------------------

  /// Creators of an article under kAuthorship (the paper: exactly one), or
  /// subjects of an article under kSubjectIndication.
  std::span<const int32_t> ArticleNeighbors(EdgeType type,
                                            int32_t article) const;

  /// Articles adjacent to a creator (kAuthorship) or to a subject
  /// (kSubjectIndication).
  std::span<const int32_t> ReverseNeighbors(EdgeType type,
                                            int32_t other) const;

  /// Homogeneous view ----------------------------------------------------

  /// Global id of (type, index): articles first, then creators, subjects.
  int32_t GlobalId(NodeType type, int32_t index) const;
  NodeType TypeOfGlobal(int32_t global_id) const;
  int32_t LocalIndexOfGlobal(int32_t global_id) const;

  /// All neighbours of a node across both edge types, as global ids
  /// (requires Finalize()).
  std::span<const int32_t> GlobalNeighbors(int32_t global_id) const;

  /// Degree of a node in the homogeneous view.
  size_t GlobalDegree(int32_t global_id) const {
    return GlobalNeighbors(global_id).size();
  }

  /// Edge list of the homogeneous view: (source, target) global-id pairs,
  /// both directions (used by LINE's edge sampler).
  const std::vector<std::pair<int32_t, int32_t>>& GlobalEdges() const;

 private:
  static size_t AsIndex(NodeType type) { return static_cast<size_t>(type); }
  static size_t AsIndex(EdgeType type) { return static_cast<size_t>(type); }

  /// Simple CSR container.
  struct Csr {
    std::vector<int64_t> offsets;  // size n+1
    std::vector<int32_t> targets;
    std::span<const int32_t> Neighbors(int32_t node) const {
      return {targets.data() + offsets[node],
              static_cast<size_t>(offsets[node + 1] - offsets[node])};
    }
  };
  static Csr BuildCsr(size_t num_nodes,
                      const std::vector<std::pair<int32_t, int32_t>>& edges,
                      bool* has_duplicates);

  size_t node_counts_[kNumNodeTypes];
  bool finalized_ = false;
  /// Raw edges per type, as (article, other) pairs.
  std::vector<std::pair<int32_t, int32_t>> raw_edges_[kNumEdgeTypes];

  /// Forward CSR: article -> others; reverse CSR: other -> articles.
  Csr forward_[kNumEdgeTypes];
  Csr reverse_[kNumEdgeTypes];
  Csr global_;
  std::vector<std::pair<int32_t, int32_t>> global_edges_;
};

}  // namespace graph
}  // namespace fkd

#endif  // FKD_GRAPH_HETERO_GRAPH_H_
