#include "graph/random_walk.h"

#include <algorithm>
#include <numeric>

namespace fkd {
namespace graph {

std::vector<std::vector<int32_t>> GenerateRandomWalks(
    const HeterogeneousGraph& graph, const RandomWalkOptions& options,
    Rng* rng) {
  FKD_CHECK(graph.finalized());
  FKD_CHECK(rng != nullptr);
  const size_t n = graph.TotalNodes();
  std::vector<std::vector<int32_t>> walks;
  walks.reserve(n * options.walks_per_node);

  std::vector<int32_t> start_order(n);
  std::iota(start_order.begin(), start_order.end(), 0);

  for (size_t pass = 0; pass < options.walks_per_node; ++pass) {
    rng->Shuffle(&start_order);
    for (int32_t start : start_order) {
      std::vector<int32_t> walk;
      walk.reserve(options.walk_length);
      walk.push_back(start);
      int32_t current = start;
      for (size_t step = 1; step < options.walk_length; ++step) {
        const auto neighbors = graph.GlobalNeighbors(current);
        if (neighbors.empty()) break;
        current = neighbors[rng->UniformInt(neighbors.size())];
        walk.push_back(current);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<int32_t>> GenerateNode2VecWalks(
    const HeterogeneousGraph& graph, const Node2VecOptions& options,
    Rng* rng) {
  FKD_CHECK(graph.finalized());
  FKD_CHECK(rng != nullptr);
  FKD_CHECK_GT(options.return_p, 0.0);
  FKD_CHECK_GT(options.inout_q, 0.0);
  const size_t n = graph.TotalNodes();
  std::vector<std::vector<int32_t>> walks;
  walks.reserve(n * options.walks_per_node);

  std::vector<int32_t> start_order(n);
  std::iota(start_order.begin(), start_order.end(), 0);
  std::vector<double> weights;

  // Neighbour lists are sorted (CSR construction), so adjacency tests are
  // binary searches.
  auto adjacent = [&graph](int32_t a, int32_t b) {
    const auto neighbors = graph.GlobalNeighbors(a);
    return std::binary_search(neighbors.begin(), neighbors.end(), b);
  };

  for (size_t pass = 0; pass < options.walks_per_node; ++pass) {
    rng->Shuffle(&start_order);
    for (int32_t start : start_order) {
      std::vector<int32_t> walk;
      walk.reserve(options.walk_length);
      walk.push_back(start);
      int32_t previous = -1;
      int32_t current = start;
      for (size_t step = 1; step < options.walk_length; ++step) {
        const auto neighbors = graph.GlobalNeighbors(current);
        if (neighbors.empty()) break;
        int32_t next;
        if (previous < 0) {
          next = neighbors[rng->UniformInt(neighbors.size())];
        } else {
          weights.assign(neighbors.size(), 0.0);
          for (size_t i = 0; i < neighbors.size(); ++i) {
            const int32_t candidate = neighbors[i];
            if (candidate == previous) {
              weights[i] = 1.0 / options.return_p;
            } else if (adjacent(candidate, previous)) {
              weights[i] = 1.0;
            } else {
              weights[i] = 1.0 / options.inout_q;
            }
          }
          next = neighbors[rng->Discrete(weights)];
        }
        walk.push_back(next);
        previous = current;
        current = next;
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

}  // namespace graph
}  // namespace fkd
