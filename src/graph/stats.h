#ifndef FKD_GRAPH_STATS_H_
#define FKD_GRAPH_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace fkd {
namespace graph {

/// Histogram of a degree sequence: degree -> number of nodes with that
/// degree (zero-degree nodes included). Fig 1(a) is this histogram with
/// counts normalised to fractions.
std::map<size_t, size_t> DegreeHistogram(const std::vector<size_t>& degrees);

/// Fraction-of-nodes view of a degree histogram (Fig 1(a)'s y-axis).
std::map<size_t, double> DegreeFractionDistribution(
    const std::vector<size_t>& degrees);

/// Result of a discrete power-law fit P(k) ~ k^-alpha for k >= k_min.
struct PowerLawFit {
  double alpha = 0.0;       ///< Estimated exponent.
  size_t k_min = 1;         ///< Lower cutoff used in the fit.
  size_t num_samples = 0;   ///< Degrees >= k_min that entered the fit.
};

/// Maximum-likelihood exponent for a (zeta-approximated) discrete power
/// law, alpha = 1 + n / sum(ln(x_i / (k_min - 0.5))) (Clauset et al. 2009).
/// Degrees below k_min are ignored; requires at least two usable samples.
PowerLawFit FitPowerLaw(const std::vector<size_t>& degrees, size_t k_min = 1);

/// Basic moments of a degree sequence.
struct DegreeSummary {
  double mean = 0.0;
  size_t min = 0;
  size_t max = 0;
  double median = 0.0;
};

DegreeSummary SummarizeDegrees(const std::vector<size_t>& degrees);

}  // namespace graph
}  // namespace fkd

#endif  // FKD_GRAPH_STATS_H_
