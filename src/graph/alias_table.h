#ifndef FKD_GRAPH_ALIAS_TABLE_H_
#define FKD_GRAPH_ALIAS_TABLE_H_

#include <vector>

#include "common/rng.h"

namespace fkd {
namespace graph {

/// Walker's alias method: O(n) preprocessing, O(1) sampling from a fixed
/// discrete distribution. Used for LINE's edge sampling and for unigram^0.75
/// negative sampling in skip-gram.
class AliasTable {
 public:
  /// `weights` are unnormalised and non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<size_t> alias_;
};

}  // namespace graph
}  // namespace fkd

#endif  // FKD_GRAPH_ALIAS_TABLE_H_
