#include "graph/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fkd {
namespace graph {

std::map<size_t, size_t> DegreeHistogram(const std::vector<size_t>& degrees) {
  std::map<size_t, size_t> histogram;
  for (size_t d : degrees) ++histogram[d];
  return histogram;
}

std::map<size_t, double> DegreeFractionDistribution(
    const std::vector<size_t>& degrees) {
  std::map<size_t, double> fractions;
  if (degrees.empty()) return fractions;
  const double n = static_cast<double>(degrees.size());
  for (const auto& [degree, count] : DegreeHistogram(degrees)) {
    fractions[degree] = static_cast<double>(count) / n;
  }
  return fractions;
}

PowerLawFit FitPowerLaw(const std::vector<size_t>& degrees, size_t k_min) {
  FKD_CHECK_GE(k_min, 1u);
  PowerLawFit fit;
  fit.k_min = k_min;
  double log_sum = 0.0;
  for (size_t d : degrees) {
    if (d < k_min) continue;
    log_sum += std::log(static_cast<double>(d) /
                        (static_cast<double>(k_min) - 0.5));
    ++fit.num_samples;
  }
  if (fit.num_samples >= 2 && log_sum > 0.0) {
    fit.alpha = 1.0 + static_cast<double>(fit.num_samples) / log_sum;
  }
  return fit;
}

DegreeSummary SummarizeDegrees(const std::vector<size_t>& degrees) {
  DegreeSummary summary;
  if (degrees.empty()) return summary;
  std::vector<size_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  summary.min = sorted.front();
  summary.max = sorted.back();
  double total = 0.0;
  for (size_t d : sorted) total += static_cast<double>(d);
  summary.mean = total / static_cast<double>(sorted.size());
  const size_t mid = sorted.size() / 2;
  summary.median = sorted.size() % 2 == 1
                       ? static_cast<double>(sorted[mid])
                       : 0.5 * static_cast<double>(sorted[mid - 1] + sorted[mid]);
  return summary;
}

}  // namespace graph
}  // namespace fkd
