#ifndef FKD_SERVE_MODEL_STORE_H_
#define FKD_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/snapshot.h"

namespace fkd {
namespace serve {

/// One immutable, refcounted serving version: a loaded Snapshot plus the
/// identity the router and the score cache key it by. A ServingModel is
/// only ever handed out as shared_ptr<const ServingModel>; whoever holds a
/// reference (the active router generation, in-flight batches draining on
/// a retired version, tests) keeps it alive, and the memory is released
/// the moment the last reference drops — the RCU "grace period" is the
/// refcount draining to zero.
struct ServingModel {
  /// Monotonically increasing per-store id; never reused, so a response
  /// tagged with a version can always be ordered against a publish.
  uint64_t version = 0;
  /// Snapshot directory this version was loaded from (diagnostics only).
  std::string directory;
  std::shared_ptr<const Snapshot> snapshot;
};

/// Point-in-time accounting of a VersionedModelStore.
struct ModelStoreStats {
  uint64_t loads = 0;           ///< Successful Load() calls.
  uint64_t load_failures = 0;   ///< Load() calls rejected (corrupt, missing).
  uint64_t publishes = 0;       ///< Active-version switches.
  uint64_t retired = 0;         ///< Versions dropped from the registry.
  size_t resident = 0;          ///< Versions currently in the registry.
  uint64_t active_version = 0;  ///< 0 = nothing published yet.
  size_t retired_still_alive = 0;  ///< Retired versions pinned by refs.
};

/// Registry of loaded snapshot versions with one atomically published
/// "active" version — the model side of zero-downtime hot-swap.
///
/// Lifecycle: Load() verifies and loads a snapshot directory through the
/// durable path (MANIFEST size+CRC gate, then parse) and registers it
/// under a fresh version id; Publish() atomically makes a loaded version
/// the active one; Active() hands out a refcounted pointer to the current
/// active version. Readers never block writers and vice versa beyond a
/// brief registry mutex — the swap itself is one shared_ptr assignment
/// (RCU-style): in-flight work keeps the old version alive through its
/// reference and drains at its own pace, while every Active() call after
/// Publish() returns observes the new version. Retire() drops a version
/// from the registry; its memory is freed when the last in-flight
/// reference drains (observable via Stats().retired_still_alive, which the
/// drain tests poll to prove old versions actually die).
///
/// Thread-safe: all methods may be called concurrently.
class VersionedModelStore {
 public:
  VersionedModelStore() = default;
  VersionedModelStore(const VersionedModelStore&) = delete;
  VersionedModelStore& operator=(const VersionedModelStore&) = delete;

  /// Loads (and manifest-verifies) a snapshot directory into a new
  /// version. The snapshot is NOT active until Publish(). Returns the
  /// registered refcounted version.
  Result<std::shared_ptr<const ServingModel>> Load(
      const std::string& directory);

  /// Registers an already-loaded snapshot (e.g. exported in-process right
  /// after training, skipping the disk round-trip) as a new version.
  std::shared_ptr<const ServingModel> Register(
      std::shared_ptr<const Snapshot> snapshot, std::string directory = "");

  /// Makes `version` the active one. Fails with NotFound for ids never
  /// registered or already retired. Publishing the already-active version
  /// is a no-op (still counted). After Publish returns, every Active()
  /// call returns the new version.
  Status Publish(uint64_t version);

  /// The active version, or null before the first Publish. The returned
  /// reference keeps the version alive across any concurrent swap.
  std::shared_ptr<const ServingModel> Active() const;

  /// Looks up a resident (non-retired) version by id.
  Result<std::shared_ptr<const ServingModel>> Get(uint64_t version) const;

  /// Drops `version` from the registry so it can drain and die. Retiring
  /// the active version is refused with FailedPrecondition — swap first.
  Status Retire(uint64_t version);

  /// Ids of resident versions, ascending.
  std::vector<uint64_t> ResidentVersions() const;

  ModelStoreStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<const ServingModel> model;
  };

  std::shared_ptr<const ServingModel> RegisterLocked(
      std::shared_ptr<const Snapshot> snapshot, std::string directory);

  mutable std::mutex mutex_;
  uint64_t next_version_ = 1;
  std::vector<Entry> resident_;
  std::shared_ptr<const ServingModel> active_;
  /// Retired versions are watched (not owned): a weak_ptr expires exactly
  /// when the last in-flight reference drains, which is the observable
  /// end of the RCU grace period.
  std::vector<std::weak_ptr<const ServingModel>> retired_watch_;
  uint64_t loads_ = 0;
  uint64_t load_failures_ = 0;
  uint64_t publishes_ = 0;
  uint64_t retired_ = 0;
};

}  // namespace serve
}  // namespace fkd

#endif  // FKD_SERVE_MODEL_STORE_H_
