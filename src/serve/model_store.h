#ifndef FKD_SERVE_MODEL_STORE_H_
#define FKD_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memory_accountant.h"
#include "common/status.h"
#include "serve/snapshot.h"

namespace fkd {
namespace serve {

/// One immutable, refcounted serving version: a loaded Snapshot plus the
/// identity the router and the score cache key it by. A ServingModel is
/// only ever handed out as shared_ptr<const ServingModel>; whoever holds a
/// reference (the active router generation, in-flight batches draining on
/// a retired version, tests) keeps it alive, and the memory is released
/// the moment the last reference drops — the RCU "grace period" is the
/// refcount draining to zero.
struct ServingModel {
  /// Monotonically increasing per-store id; never reused, so a response
  /// tagged with a version can always be ordered against a publish.
  uint64_t version = 0;
  /// Snapshot directory this version was loaded from (diagnostics only).
  std::string directory;
  std::shared_ptr<const Snapshot> snapshot;
};

/// Residency knobs of a VersionedModelStore.
struct ModelStoreOptions {
  /// Hard cap on the bytes of fp32-resident versions; 0 = unlimited.
  /// While the registry is over this budget, least-recently-used
  /// non-active, non-pinned versions are demoted to the on-disk tier.
  size_t memory_budget_bytes = 0;
  /// Where demoted versions spill. Empty picks a unique directory under
  /// the system temp path on first demotion.
  std::string spill_directory;

  /// Defaults plus the FKD_MEMORY_BUDGET_MB environment knob (unset, empty
  /// or unparsable → unlimited). The default-constructed store uses this,
  /// so the knob reaches every store in the process without plumbing.
  static ModelStoreOptions FromEnv();
};

/// Point-in-time accounting of a VersionedModelStore.
struct ModelStoreStats {
  uint64_t loads = 0;           ///< Successful Load() calls.
  uint64_t load_failures = 0;   ///< Load() calls rejected (corrupt, missing).
  uint64_t publishes = 0;       ///< Active-version switches.
  uint64_t retired = 0;         ///< Versions dropped from the registry.
  size_t resident = 0;          ///< Versions currently in the registry.
  uint64_t active_version = 0;  ///< 0 = nothing published yet.
  size_t retired_still_alive = 0;  ///< Retired versions pinned by refs.
  // Memory-budget tier.
  size_t resident_bytes = 0;    ///< Accountant total of in-memory versions.
  size_t budget_bytes = 0;      ///< 0 = unlimited.
  size_t demoted = 0;           ///< Versions currently on the disk tier.
  uint64_t demotions = 0;       ///< Lifetime demote transitions.
  uint64_t promotions = 0;      ///< Lifetime promote transitions.
};

/// Registry of loaded snapshot versions with one atomically published
/// "active" version — the model side of zero-downtime hot-swap.
///
/// Lifecycle: Load() verifies and loads a snapshot directory through the
/// durable path (MANIFEST size+CRC gate, then parse) and registers it
/// under a fresh version id; Publish() atomically makes a loaded version
/// the active one; Active() hands out a refcounted pointer to the current
/// active version. Readers never block writers and vice versa beyond a
/// brief registry mutex — the swap itself is one shared_ptr assignment
/// (RCU-style): in-flight work keeps the old version alive through its
/// reference and drains at its own pace, while every Active() call after
/// Publish() returns observes the new version. Retire() drops a version
/// from the registry; its memory is freed when the last in-flight
/// reference drains (observable via Stats().retired_still_alive, which the
/// drain tests poll to prove old versions actually die).
///
/// Memory budget: every resident version is charged its ResidentBytes()
/// against a MemoryAccountant. While the total exceeds the budget, the
/// least-recently-used version that is neither active nor pinned is
/// demoted — spilled losslessly (fp32 weights, LZ-compressed cold tier) to
/// the store's spill directory via the crash-safe export path, then
/// dropped from memory. A Get() of a demoted version transparently
/// re-promotes it: the spill is parsed back through the mmap-backed
/// loader, bit-identical to the demoted content because both export and
/// load are deterministic. The active version and pinned versions (Pin —
/// canary owners) are never demoted, so serving never faults mid-request.
/// Observable via fkd.store.resident_bytes / fkd.store.demotions /
/// fkd.store.promotions and kModelDemote/kModelPromote flight events.
///
/// Thread-safe: all methods may be called concurrently.
class VersionedModelStore {
 public:
  VersionedModelStore() : VersionedModelStore(ModelStoreOptions::FromEnv()) {}
  explicit VersionedModelStore(ModelStoreOptions options);
  VersionedModelStore(const VersionedModelStore&) = delete;
  VersionedModelStore& operator=(const VersionedModelStore&) = delete;

  /// Loads (and manifest-verifies) a snapshot directory into a new
  /// version. The snapshot is NOT active until Publish(). Returns the
  /// registered refcounted version.
  Result<std::shared_ptr<const ServingModel>> Load(
      const std::string& directory);

  /// Registers an already-loaded snapshot (e.g. exported in-process right
  /// after training, skipping the disk round-trip) as a new version.
  std::shared_ptr<const ServingModel> Register(
      std::shared_ptr<const Snapshot> snapshot, std::string directory = "");

  /// Makes `version` the active one. Fails with NotFound for ids never
  /// registered or already retired. Publishing the already-active version
  /// is a no-op (still counted). After Publish returns, every Active()
  /// call returns the new version. Publishing a demoted version promotes
  /// it first.
  Status Publish(uint64_t version);

  /// The active version, or null before the first Publish. The returned
  /// reference keeps the version alive across any concurrent swap.
  std::shared_ptr<const ServingModel> Active() const;

  /// Looks up a registered (non-retired) version by id, transparently
  /// promoting it from the disk tier when demoted (which is why Get is
  /// non-const).
  Result<std::shared_ptr<const ServingModel>> Get(uint64_t version);

  /// Marks `version` exempt from demotion (a canary in flight). NotFound
  /// for unknown versions. Pinning a demoted version promotes it.
  Status Pin(uint64_t version);
  Status Unpin(uint64_t version);

  /// Drops `version` from the registry so it can drain and die (its spill
  /// files, if any, are deleted). Retiring the active version is refused
  /// with FailedPrecondition — swap first.
  Status Retire(uint64_t version);

  /// Ids of registered versions (resident or demoted), ascending.
  std::vector<uint64_t> ResidentVersions() const;

  ModelStoreStats Stats() const;

 private:
  struct Entry {
    uint64_t version = 0;
    std::string directory;    ///< original load dir (diagnostics)
    /// Null while the version lives on the disk tier.
    std::shared_ptr<const ServingModel> model;
    std::string spill_path;   ///< non-empty once exported to the spill dir
    size_t resident_bytes = 0;
    uint64_t last_use = 0;    ///< LRU tick; bumped by Get/Publish/Register
    bool pinned = false;
    /// A failed spill export disqualifies the entry from demotion until it
    /// is touched again (prevents the budget loop from retrying forever).
    bool spill_failed = false;
  };

  std::shared_ptr<const ServingModel> RegisterLocked(
      std::shared_ptr<const Snapshot> snapshot, std::string directory);
  Entry* FindLocked(uint64_t version);
  void TouchLocked(Entry* entry);
  /// Demotes LRU victims until within budget or nothing is demotable.
  /// `protect` (the entry a promotion is about to hand out) is never a
  /// victim — otherwise a one-entry store over budget would re-demote the
  /// very version Get/Publish/Pin is returning.
  void EnforceBudgetLocked(const Entry* protect = nullptr);
  void DemoteLocked(Entry* entry);
  Status PromoteLocked(Entry* entry);
  /// Resolves (and creates) the spill root on first use.
  Result<std::string> SpillRootLocked();
  void PublishGaugeLocked();

  const ModelStoreOptions options_;
  mutable std::mutex mutex_;
  uint64_t next_version_ = 1;
  uint64_t use_tick_ = 0;
  std::vector<Entry> resident_;
  std::shared_ptr<const ServingModel> active_;
  /// Retired versions are watched (not owned): a weak_ptr expires exactly
  /// when the last in-flight reference drains, which is the observable
  /// end of the RCU grace period.
  std::vector<std::weak_ptr<const ServingModel>> retired_watch_;
  MemoryAccountant accountant_;
  std::string spill_root_;
  uint64_t loads_ = 0;
  uint64_t load_failures_ = 0;
  uint64_t publishes_ = 0;
  uint64_t retired_ = 0;
  uint64_t demotions_ = 0;
  uint64_t promotions_ = 0;
};

}  // namespace serve
}  // namespace fkd

#endif  // FKD_SERVE_MODEL_STORE_H_
