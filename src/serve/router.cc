#include "serve/router.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <future>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/exporter.h"
#include "obs/trace.h"

namespace fkd {
namespace serve {

namespace {

/// Salt separating the canary split from replica placement: without it the
/// canary slice would be a contiguous arc of the placement ring and starve
/// some replicas instead of sampling uniformly across them.
constexpr uint64_t kCanarySalt = 0xca4a12ull;

using obs::FlightEventType;

}  // namespace

uint32_t RouterOptions::CanaryPermilleFromEnvironment() {
  const char* env = std::getenv("FKD_CANARY_PCT");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const double pct = std::strtod(env, &end);
  if (end == env || *end != '\0' || errno == ERANGE || pct < 0.0 ||
      pct > 100.0) {
    FKD_LOG(Warning) << "ignoring invalid FKD_CANARY_PCT=\"" << env
                     << "\" (want a percentage in [0, 100])";
    return 0;
  }
  return static_cast<uint32_t>(pct * 10.0 + 0.5);
}

uint64_t Router::RequestKey(const ArticleRequest& request) {
  uint64_t key = Hash64(request.text);
  // Graph context changes the score, so it is part of the identity: two
  // requests differing only in creator/subjects must not share a cache
  // entry. int32 -> uint64 via int64 keeps -1 distinct from every id.
  key = Hash64Mix(key,
                  static_cast<uint64_t>(
                      static_cast<int64_t>(request.creator_id)));
  for (int32_t subject : request.subject_ids) {
    key = Hash64Mix(key, static_cast<uint64_t>(static_cast<int64_t>(subject)));
  }
  return key;
}

Router::Router(RouterOptions options)
    : options_(std::move(options)), ring_(options_.ring_vnodes) {
  FKD_CHECK_GT(options_.num_replicas, 0u);
  FKD_CHECK_GT(options_.canary_replicas, 0u);
  FKD_CHECK_LE(options_.canary_permille, 1000u);
  canary_permille_ = options_.canary_permille;
  for (size_t r = 0; r < options_.num_replicas; ++r) {
    ring_.AddNode(static_cast<uint64_t>(r));
  }
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ScoreCache>(options_.cache_capacity,
                                          options_.cache_shards);
  }
  recorder_ = &obs::FlightRecorder::Get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  cache_hit_total_ = registry.GetCounter("fkd.serve.cache_hit");
  cache_miss_total_ = registry.GetCounter("fkd.serve.cache_miss");
  requests_cache_hit_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "cache_hit"}});
  canary_total_ = registry.GetCounter("fkd.serve.canary");
  swap_total_ = registry.GetCounter("fkd.serve.swap");
  active_version_gauge_ = registry.GetGauge("fkd.serve.active_version");
  queue_depth_gauge_ = registry.GetGauge("fkd.serve.queue_depth");
  quarantine_total_ = registry.GetCounter("fkd.serve.quarantine");
  reinstate_total_ = registry.GetCounter("fkd.serve.reinstate");
  probe_total_ = registry.GetCounter("fkd.serve.probe");
  quarantined_gauge_ = registry.GetGauge("fkd.serve.quarantined");
  cache_us_ = registry.GetHistogram("fkd.serve.cache_us");
}

Router::~Router() { Stop(); }

Result<std::shared_ptr<Router::Generation>> Router::BuildGeneration(
    std::shared_ptr<const ServingModel> model, size_t replicas) {
  FKD_CHECK(model != nullptr && model->snapshot != nullptr);
  auto generation = std::make_shared<Generation>();
  generation->model = model;
  generation->engines.reserve(replicas);
  generation->quarantined.assign(replicas, 0);
  for (size_t r = 0; r < replicas; ++r) {
    EngineOptions engine_options = options_.engine;
    engine_options.version_tag = model->version;
    // Per-replica fault site so chaos drills can sicken exactly one
    // replica; a caller-provided site wins (it already knows its name).
    if (engine_options.fault_site.empty()) {
      engine_options.fault_site = StrFormat("serve.replica%zu.batch", r);
    }
    if (cache_ != nullptr) {
      // The engine worker fills the score cache before fulfilling each
      // future. The version is bound per generation, so a cached score can
      // never be attributed to a later snapshot.
      const uint64_t version = model->version;
      engine_options.completion_hook =
          [this, version](const ArticleRequest& request,
                          const Classification& result) {
            cache_->Put(CacheKey{version, RequestKey(request)}, result);
          };
    }
    auto engine = std::make_unique<InferenceEngine>(model->snapshot,
                                                    engine_options);
    FKD_RETURN_NOT_OK(engine->Start());
    generation->engines.push_back(std::move(engine));
  }
  return generation;
}

void Router::DrainGeneration(const std::shared_ptr<Generation>& generation) {
  if (generation == nullptr) return;
  for (auto& engine : generation->engines) engine->Stop();
}

Status Router::Start(std::shared_ptr<const ServingModel> initial) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return Status::FailedPrecondition("router already stopped");
    if (started_) return Status::FailedPrecondition("router already started");
  }
  FKD_ASSIGN_OR_RETURN(std::shared_ptr<Generation> generation,
                       BuildGeneration(std::move(initial),
                                       options_.num_replicas));
  // Serving entry point: bring up the periodic stats exporter when
  // FKD_STATS_INTERVAL_MS asks for one (no-op otherwise, idempotent).
  obs::StatsExporter::MaybeStartFromEnvironment();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    primary_ = std::move(generation);
    started_ = true;
    active_version_gauge_->Set(static_cast<double>(primary_->model->version));
  }
  if (options_.quarantine.enabled) {
    monitor_ = std::thread([this] { MonitorMain(); });
  }
  FKD_LOG(Info) << "router started: " << options_.num_replicas
                << " replicas on version " << active_version()
                << (options_.quarantine.enabled ? " (quarantine monitor on)"
                                                : "");
  return Status::OK();
}

Result<ClassificationFuture> Router::Submit(ArticleRequest request) {
  // Birth of the request context: correlation id + deadline budget travel
  // with the request through cache lookup, canary split, engine queue and
  // micro-batch into the Classification's latency breakdown.
  if (request.request_id == 0) request.request_id = NextRequestId();
  const uint64_t request_id = request.request_id;
  const uint64_t key = RequestKey(request);
  const auto submitted_at = std::chrono::steady_clock::now();
  recorder_->Record(FlightEventType::kRequestSubmit, request_id,
                    static_cast<uint64_t>(std::max<int64_t>(
                        0, request.deadline_us)));

  std::lock_guard<std::mutex> lock(mutex_);
  if (!started_ || stopped_ || primary_ == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("router is not serving");
  }
  // Deterministic canary split on the request key: the same article always
  // lands on the same side, so A/B comparisons are apples to apples.
  Generation* target = primary_.get();
  bool is_canary = false;
  if (canary_ != nullptr && canary_permille_ > 0 &&
      Hash64Mix(kCanarySalt, key) % 1000 < canary_permille_) {
    target = canary_.get();
    is_canary = true;
  }

  // Cache lookup is scoped to the version that would serve the request, so
  // a hit can never resurrect scores from a replaced snapshot. The lookup
  // time is part of the breakdown either way: a hit's total is ~all cache,
  // a miss carries it into the engine as ArticleRequest::cache_us.
  if (cache_ != nullptr) {
    Classification cached;
    const bool hit = cache_->Get(CacheKey{target->model->version, key}, &cached);
    const double lookup_us = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - submitted_at)
                                 .count();
    cache_us_->Observe(lookup_us);
    if (hit) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hit_total_->Increment();
      requests_cache_hit_->Increment();
      recorder_->Record(FlightEventType::kCacheHit, request_id,
                        target->model->version);
      cached.from_cache = true;
      cached.batch_size = 0;
      cached.request_id = request_id;
      cached.queue_us = 0.0;
      cached.batch_us = 0.0;
      cached.compute_us = 0.0;
      cached.cache_us = lookup_us;
      cached.total_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - submitted_at)
                            .count();
      std::promise<Result<Classification>> ready;
      ClassificationFuture future = ready.get_future();
      ready.set_value(std::move(cached));
      return future;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    cache_miss_total_->Increment();
    recorder_->Record(FlightEventType::kCacheMiss, request_id, 0);
    request.cache_us = lookup_us;
  }

  // Consistent-hash placement across the generation's replicas. A
  // promoted canary generation may have fewer engines than ring nodes;
  // folding keeps the mapping total either way.
  const uint64_t node = ring_.Pick(key);
  size_t replica = node % target->engines.size();
  // Quarantine re-placement: a sick replica's hash range moves forward to
  // the next healthy peer (deterministic, so repeats of an article keep
  // hitting the same stand-in). With every replica quarantined the
  // original placement stands — degraded service beats refusing outright.
  if (target->quarantined[replica] != 0) {
    for (size_t step = 1; step < target->engines.size(); ++step) {
      const size_t candidate = (replica + step) % target->engines.size();
      if (target->quarantined[candidate] == 0) {
        replica = candidate;
        rerouted_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  InferenceEngine& engine = *target->engines[replica];
  Result<ClassificationFuture> result = engine.Submit(std::move(request));
  if (result.ok()) {
    // Count outcomes only after the engine accepted, so
    // submitted == cache_hits + primary_requests + canary_requests holds
    // even when a replica rejects (queue full / breaker open).
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (is_canary) {
      canary_requests_.fetch_add(1, std::memory_order_relaxed);
      canary_total_->Increment();
    } else {
      primary_requests_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Status Router::Publish(std::shared_ptr<const ServingModel> model) {
  FKD_TRACE_SCOPE("serve/swap");
  recorder_->Record(FlightEventType::kSwapBegin, model->version, 0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) {
      return Status::FailedPrecondition("router is not serving");
    }
  }
  // Build and warm the new fleet while the old one keeps serving — the
  // expensive part of a swap happens entirely off the request path.
  FKD_ASSIGN_OR_RETURN(std::shared_ptr<Generation> fresh,
                       BuildGeneration(model, options_.num_replicas));
  std::shared_ptr<Generation> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      // Lost the race with Stop(); do not resurrect a stopped router.
      DrainGeneration(fresh);
      return Status::Unavailable("router stopped during publish");
    }
    old = std::move(primary_);
    primary_ = std::move(fresh);
    swaps_.fetch_add(1, std::memory_order_relaxed);
    swap_total_->Increment();
    active_version_gauge_->Set(static_cast<double>(model->version));
  }
  // RCU drain: new submissions already go to the new version (the pointer
  // switch above is the linearisation point); the old generation finishes
  // its queued and in-flight work on the old snapshot, then dies with its
  // last reference.
  DrainGeneration(old);
  recorder_->Record(FlightEventType::kSwapEnd, model->version, model->version);
  FKD_LOG(Info) << "router: hot-swapped to version " << model->version;
  return Status::OK();
}

Status Router::StartCanary(std::shared_ptr<const ServingModel> model,
                           int permille_override) {
  if (permille_override > 1000) {
    return Status::InvalidArgument("canary permille must be <= 1000");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) {
      return Status::FailedPrecondition("router is not serving");
    }
  }
  FKD_ASSIGN_OR_RETURN(std::shared_ptr<Generation> fresh,
                       BuildGeneration(model, options_.canary_replicas));
  std::shared_ptr<Generation> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      DrainGeneration(fresh);
      return Status::Unavailable("router stopped during canary start");
    }
    old = std::move(canary_);
    canary_ = std::move(fresh);
    if (permille_override >= 0) {
      canary_permille_ = static_cast<uint32_t>(permille_override);
    }
    recorder_->Record(FlightEventType::kCanaryStart, model->version,
                      canary_permille_);
    FKD_LOG(Info) << "router: canary on version " << model->version << " at "
                  << canary_permille_ << " permille";
  }
  DrainGeneration(old);
  return Status::OK();
}

Status Router::PromoteCanary() {
  FKD_TRACE_SCOPE("serve/swap");
  recorder_->Record(FlightEventType::kSwapBegin, 0, 0);
  std::shared_ptr<Generation> old;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) {
      return Status::FailedPrecondition("router is not serving");
    }
    if (canary_ == nullptr) {
      return Status::FailedPrecondition("no canary to promote");
    }
    old = std::move(primary_);
    primary_ = std::move(canary_);
    canary_.reset();
    version = primary_->model->version;
    swaps_.fetch_add(1, std::memory_order_relaxed);
    swap_total_->Increment();
    active_version_gauge_->Set(static_cast<double>(version));
    recorder_->Record(FlightEventType::kCanaryStop, version, 1);
  }
  DrainGeneration(old);
  recorder_->Record(FlightEventType::kSwapEnd, version, version);
  FKD_LOG(Info) << "router: promoted canary version " << version;
  return Status::OK();
}

Status Router::StopCanary() {
  std::shared_ptr<Generation> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (canary_ == nullptr) {
      return Status::FailedPrecondition("no canary to stop");
    }
    old = std::move(canary_);
    recorder_->Record(FlightEventType::kCanaryStop, old->model->version, 0);
  }
  DrainGeneration(old);
  FKD_LOG(Info) << "router: canary stopped";
  return Status::OK();
}

void Router::Stop() {
  std::shared_ptr<Generation> primary;
  std::shared_ptr<Generation> canary;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    primary = std::move(primary_);
    canary = std::move(canary_);
  }
  // The monitor holds generation shared_ptrs across its pass, so it must
  // be gone before the engines drain away under it.
  {
    std::lock_guard<std::mutex> lock(monitor_mutex_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  DrainGeneration(primary);
  DrainGeneration(canary);
}

// ---- quarantine + self-healing ----------------------------------------------

void Router::MonitorMain() {
  std::unordered_map<const InferenceEngine*, ReplicaHealth> history;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(monitor_mutex_);
      monitor_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.quarantine.interval_ms),
          [this] { return monitor_stop_; });
      if (monitor_stop_) return;
    }
    std::shared_ptr<Generation> primary;
    std::shared_ptr<Generation> canary;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      primary = primary_;
      canary = canary_;
    }
    MonitorGeneration(primary, &history);
    MonitorGeneration(canary, &history);
    // Drop bookkeeping for engines of drained generations: a dangling key
    // is never dereferenced, but a recycled allocation must not inherit a
    // dead replica's history.
    for (auto it = history.begin(); it != history.end();) {
      bool live = false;
      for (const auto& generation : {primary, canary}) {
        if (generation == nullptr) continue;
        for (const auto& engine : generation->engines) {
          live = live || engine.get() == it->first;
        }
      }
      it = live ? std::next(it) : history.erase(it);
    }
    size_t quarantined_now = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& generation : {primary_, canary_}) {
        if (generation == nullptr) continue;
        for (char flag : generation->quarantined) {
          quarantined_now += flag != 0 ? 1 : 0;
        }
      }
    }
    quarantined_gauge_->Set(static_cast<double>(quarantined_now));
  }
}

void Router::MonitorGeneration(
    const std::shared_ptr<Generation>& generation,
    std::unordered_map<const InferenceEngine*, ReplicaHealth>* history) {
  if (generation == nullptr) return;
  for (size_t r = 0; r < generation->engines.size(); ++r) {
    InferenceEngine* engine = generation->engines[r].get();
    ReplicaHealth& health = (*history)[engine];
    const EngineStats now = engine->Stats();
    const EngineHealth liveness = engine->Health();
    if (liveness == EngineHealth::kDraining) {
      health.prev = now;
      health.seeded = true;
      continue;  // a draining engine is being replaced, not sick
    }
    bool quarantined;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      quarantined = generation->quarantined[r] != 0;
    }
    if (!quarantined) {
      // Health scoring over the last interval's deltas. The first pass
      // only seeds the baseline: lifetime totals would blame a replica
      // for failures that predate the monitor.
      if (health.seeded) {
        const uint64_t failures = (now.failed - health.prev.failed) +
                                  (now.deadline_exceeded -
                                   health.prev.deadline_exceeded) +
                                  (now.shed - health.prev.shed);
        const uint64_t total =
            (now.completed - health.prev.completed) + failures;
        const bool ratio_sick =
            total >= options_.quarantine.min_samples &&
            static_cast<double>(failures) >=
                options_.quarantine.failure_threshold *
                    static_cast<double>(total);
        if (liveness == EngineHealth::kDegraded || ratio_sick) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            generation->quarantined[r] = 1;
          }
          health.probe_streak = 0;
          quarantines_.fetch_add(1, std::memory_order_relaxed);
          quarantine_total_->Increment();
          const uint64_t permille =
              total == 0 ? 1000 : (1000 * failures) / total;
          recorder_->Record(FlightEventType::kReplicaQuarantine, r, permille);
          FKD_LOG(Warning) << "router: quarantined replica " << r
                           << " of version " << generation->model->version
                           << " (" << failures << "/" << total
                           << " failures last interval, breaker "
                           << (liveness == EngineHealth::kDegraded
                                   ? "degraded"
                                   : "closed")
                           << ")";
        }
      }
    } else {
      // Probe the quarantined replica directly (bypassing placement and
      // the router counters); consecutive successes reinstate it.
      ArticleRequest probe;
      probe.text = options_.quarantine.probe_text;
      probe.deadline_us = options_.quarantine.probe_deadline_us;
      probes_.fetch_add(1, std::memory_order_relaxed);
      probe_total_->Increment();
      bool success = false;
      Result<ClassificationFuture> submitted = engine->Submit(std::move(probe));
      if (submitted.ok()) {
        success = submitted.value().get().ok();
      }
      recorder_->Record(FlightEventType::kReplicaProbe, r, success ? 1 : 0);
      if (success) {
        ++health.probe_streak;
        if (health.probe_streak >= options_.quarantine.probe_successes) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            generation->quarantined[r] = 0;
          }
          reinstatements_.fetch_add(1, std::memory_order_relaxed);
          reinstate_total_->Increment();
          recorder_->Record(FlightEventType::kReplicaReinstate, r,
                            static_cast<uint64_t>(health.probe_streak));
          FKD_LOG(Info) << "router: reinstated replica " << r
                        << " of version " << generation->model->version
                        << " after " << health.probe_streak
                        << " successful probes";
          health.probe_streak = 0;
        }
      } else {
        health.probe_streak = 0;
      }
    }
    health.prev = now;
    health.seeded = true;
  }
}

uint64_t Router::active_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return primary_ != nullptr ? primary_->model->version : 0;
}

size_t Router::QueueDepth() const {
  std::shared_ptr<Generation> primary;
  std::shared_ptr<Generation> canary;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    primary = primary_;
    canary = canary_;
  }
  size_t depth = 0;
  for (const auto& generation : {primary, canary}) {
    if (generation == nullptr) continue;
    for (const auto& engine : generation->engines) {
      depth += engine->queue_depth();
    }
  }
  queue_depth_gauge_->Set(static_cast<double>(depth));
  return depth;
}

RouterStats Router::Stats() const {
  RouterStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.primary_requests = primary_requests_.load(std::memory_order_relaxed);
  stats.canary_requests = canary_requests_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.quarantines = quarantines_.load(std::memory_order_relaxed);
  stats.reinstatements = reinstatements_.load(std::memory_order_relaxed);
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.rerouted = rerouted_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) stats.cache = cache_->Stats();
  std::lock_guard<std::mutex> lock(mutex_);
  stats.active_version = primary_ != nullptr ? primary_->model->version : 0;
  stats.canary_version = canary_ != nullptr ? canary_->model->version : 0;
  for (const auto& generation : {primary_, canary_}) {
    if (generation == nullptr) continue;
    for (char flag : generation->quarantined) {
      stats.quarantined_now += flag != 0 ? 1 : 0;
    }
  }
  return stats;
}

}  // namespace serve
}  // namespace fkd
