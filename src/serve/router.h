#ifndef FKD_SERVE_ROUTER_H_
#define FKD_SERVE_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/consistent_hash.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/model_store.h"

namespace fkd {
namespace serve {

/// Replica quarantine + self-healing knobs (see Router class comment).
struct QuarantineOptions {
  /// Master switch for the health monitor thread.
  bool enabled = true;
  /// Health-evaluation and probe cadence.
  int64_t interval_ms = 200;
  /// A replica whose failure ratio over one interval reaches this (with at
  /// least `min_samples` resolutions) is quarantined. Breaker-degraded
  /// replicas are quarantined regardless of the ratio.
  double failure_threshold = 0.5;
  uint64_t min_samples = 8;
  /// Consecutive successful probes required to reinstate a replica.
  int probe_successes = 2;
  /// Deadline budget given to each probe request.
  int64_t probe_deadline_us = 250000;
  /// Article text scored by probe requests (content is irrelevant; the
  /// probe only proves the replica can complete a forward pass again).
  std::string probe_text = "router replica health probe";
};

/// Tuning knobs of the serving router.
struct RouterOptions {
  /// InferenceEngine replicas fronting the primary version. Requests are
  /// placed on replicas by consistent hash of the request content, so one
  /// article's repeats land on the same replica (warm batches) and
  /// resizing the fleet remaps only ~1/N of the keys.
  size_t num_replicas = 2;
  /// Replicas fronting a canary version (usually fewer than the primary).
  size_t canary_replicas = 1;
  /// Virtual nodes per replica on the placement ring.
  size_t ring_vnodes = 64;
  /// Per-engine options. `version_tag` and `completion_hook` are owned by
  /// the router and overwritten per engine.
  EngineOptions engine;
  /// Score cache entries across all shards; 0 disables the cache.
  size_t cache_capacity = 4096;
  /// Independently locked cache shards.
  size_t cache_shards = 8;
  /// Canary traffic share in permille (0..1000), decided deterministically
  /// per request key. Defaults from FKD_CANARY_PCT (a percentage, e.g.
  /// "5" or "2.5"); invalid or unset values mean 0.
  uint32_t canary_permille = CanaryPermilleFromEnvironment();
  /// Replica quarantine + self-healing (enabled by default).
  QuarantineOptions quarantine;

  /// Parses FKD_CANARY_PCT into permille; out-of-range/garbage values are
  /// warned about and treated as unset (0).
  static uint32_t CanaryPermilleFromEnvironment();
};

/// Monotone counters describing a router's lifetime so far. Accounting
/// invariant (asserted under hot-swap stress in router_test): every call
/// to Submit() resolves exactly one way, so
///   submitted == cache_hits + primary_requests + canary_requests
/// and `rejected` counts the remaining calls (engine refused / router not
/// serving), disjoint from `submitted`.
struct RouterStats {
  uint64_t submitted = 0;        ///< Requests accepted by Submit().
  uint64_t rejected = 0;         ///< Submit() calls refused (not accepted).
  uint64_t cache_hits = 0;       ///< Served from the score cache.
  uint64_t cache_misses = 0;     ///< Routed to an engine.
  uint64_t primary_requests = 0; ///< Engine-accepted requests on the primary.
  uint64_t canary_requests = 0;  ///< Engine-accepted requests on the canary.
  uint64_t swaps = 0;            ///< Primary publishes (incl. promotions).
  uint64_t active_version = 0;   ///< Current primary version (0 = none).
  uint64_t canary_version = 0;   ///< Current canary version (0 = none).
  uint64_t quarantines = 0;      ///< Replicas taken out of rotation.
  uint64_t reinstatements = 0;   ///< Replicas probed healthy and restored.
  uint64_t probes = 0;           ///< Health probes sent to quarantined replicas.
  uint64_t rerouted = 0;         ///< Submits re-placed off a quarantined replica.
  size_t quarantined_now = 0;    ///< Replicas currently quarantined.
  LruCacheStats cache;           ///< Score-cache accounting.
};

/// Zero-downtime serving front-end: N micro-batching InferenceEngine
/// replicas behind consistent-hash request placement, a sharded LRU score
/// cache, per-version canary traffic splitting, and RCU-style hot-swap of
/// the serving version.
///
///  - **Placement** — each request is hashed over its full content (text +
///    graph ids); the ring maps the hash to a replica. Repeats of an
///    article always hit the same replica and the same cache shard.
///  - **Score cache** — results are cached keyed by (snapshot version,
///    request content hash), filled by the engines' completion hooks.
///    A hit skips tokenisation and the GDU forward pass entirely and
///    resolves the future immediately (`Classification::from_cache`).
///    Versioned keys are the invalidation rule: publishing a new version
///    changes every key, so stale scores are never served — old-version
///    entries simply age out of the LRU.
///  - **Hot swap** — Publish(model) builds and starts fresh replicas on
///    the new version, atomically switches new submissions over, and only
///    then drains the old replicas (queued and in-flight requests finish
///    on the version they were submitted against). After Publish returns,
///    every engine-served response carries the new version. No request is
///    ever rejected because of a swap.
///  - **Canary** — StartCanary(model) routes a deterministic
///    `canary_permille` slice of request keys (FKD_CANARY_PCT) to replicas
///    on the canary version; PromoteCanary() makes it the primary via the
///    same drain-free swap, StopCanary() abandons it.
///  - **Quarantine + self-healing** — a monitor thread scores every
///    replica each interval on its breaker state and its windowed
///    failure + deadline-miss ratio. A sick replica is quarantined:
///    placement walks its hash range forward to the next healthy peer
///    (all-quarantined degrades to the original placement — still serving
///    beats refusing). While quarantined, the replica receives periodic
///    probe requests instead of traffic; `probe_successes` consecutive
///    successes reinstate it and its hash range snaps back. Probes go
///    straight to the engine, so router accounting (`submitted ==
///    cache_hits + primary_requests + canary_requests`) is unaffected.
///    State machine per replica:
///      healthy --(breaker degraded | failure ratio >= threshold)-->
///      quarantined --(N consecutive probe oks)--> healthy
///
/// Instrumentation (obs::MetricsRegistry::Default()): fkd.serve.cache_hit,
/// fkd.serve.cache_miss, fkd.serve.canary and fkd.serve.swap counters, the
/// fkd.serve.active_version gauge, and a "serve/swap" trace span around
/// every publish (FKD_ENABLE_TRACING builds).
///
/// Thread-safe: Submit may race with Publish/StartCanary/PromoteCanary —
/// that is the point.
class Router {
 public:
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Brings up the primary replicas on `initial`. One Start per router.
  Status Start(std::shared_ptr<const ServingModel> initial);

  /// Classifies one article: cache lookup first, then consistent-hash
  /// placement onto a primary (or canary) replica. Returns the engine
  /// error when the chosen replica refuses (queue full / stopped).
  Result<ClassificationFuture> Submit(ArticleRequest request);

  /// Atomically swaps the primary to `model` (see class comment). Blocks
  /// until the previous primary has drained; new submissions are served by
  /// the new version from the moment of the swap, strictly before Publish
  /// returns.
  Status Publish(std::shared_ptr<const ServingModel> model);

  /// Starts a canary on `model`. `permille_override` < 0 keeps the
  /// configured canary_permille. Replaces (and drains) a previous canary.
  Status StartCanary(std::shared_ptr<const ServingModel> model,
                     int permille_override = -1);

  /// Promotes the current canary to primary (drains the old primary).
  Status PromoteCanary();

  /// Drops and drains the canary; its traffic share returns to the primary.
  Status StopCanary();

  /// Drains and joins every replica. Idempotent; Submit afterwards fails
  /// with Unavailable.
  void Stop();

  RouterStats Stats() const;

  /// Aggregate engine queue depth across the primary and canary fleets —
  /// the admission-control signal the network front end sheds on. Reads
  /// each engine's lock-free depth counter; takes the router mutex only to
  /// pin the generation pointers. Also published as the unlabelled
  /// fkd.serve.queue_depth gauge on every call (the per-engine gauge
  /// carries the scope=engine label).
  size_t QueueDepth() const;

  /// Current primary version (0 before Start).
  uint64_t active_version() const;
  const RouterOptions& options() const { return options_; }

  /// Stable 64-bit content hash of a request (text + creator + subjects) —
  /// the placement and cache-key hash, exposed for tests.
  static uint64_t RequestKey(const ArticleRequest& request);

 private:
  /// One serving version's fleet: engines all built on the same snapshot.
  struct Generation {
    std::shared_ptr<const ServingModel> model;
    std::vector<std::unique_ptr<InferenceEngine>> engines;
    /// Per-engine quarantine flags (1 = out of rotation), index-aligned
    /// with `engines`. Guarded by the router mutex_.
    std::vector<char> quarantined;
  };

  /// Cache key: the snapshot version scopes the content hash, so a swap
  /// implicitly invalidates every cached score.
  struct CacheKey {
    uint64_t version = 0;
    uint64_t content = 0;
    bool operator==(const CacheKey& other) const {
      return version == other.version && content == other.content;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      return static_cast<size_t>(Hash64Mix(key.version, key.content));
    }
  };
  using ScoreCache = ShardedLruCache<CacheKey, Classification, CacheKeyHash>;

  /// Builds and starts `replicas` engines on `model`.
  Result<std::shared_ptr<Generation>> BuildGeneration(
      std::shared_ptr<const ServingModel> model, size_t replicas);
  /// Stops every engine of `generation` (drains); null-safe.
  static void DrainGeneration(const std::shared_ptr<Generation>& generation);

  /// Health monitor thread: quarantine scoring + probing (see class
  /// comment). Runs only when options_.quarantine.enabled.
  void MonitorMain();
  /// One monitor pass over `generation`; `history` is the monitor-local
  /// per-engine bookkeeping (previous stats snapshot, probe streak).
  struct ReplicaHealth {
    EngineStats prev;
    int probe_streak = 0;
    bool seeded = false;  ///< prev is a real baseline, not zero-init
  };
  void MonitorGeneration(
      const std::shared_ptr<Generation>& generation,
      std::unordered_map<const InferenceEngine*, ReplicaHealth>* history);

  RouterOptions options_;
  ConsistentHashRing ring_;

  // Destruction order matters: engines (inside the generations) may still
  // run completion hooks into the cache while stopping, so the cache is
  // declared first (destroyed last).
  std::unique_ptr<ScoreCache> cache_;

  /// Guards the generation pointers. Submit holds it across placement AND
  /// the engine Submit so a concurrent swap cannot stop an engine between
  /// the two (the swap's pointer switch happens under this mutex; the old
  /// generation's drain happens outside it).
  mutable std::mutex mutex_;
  std::shared_ptr<Generation> primary_;
  std::shared_ptr<Generation> canary_;
  uint32_t canary_permille_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> primary_requests_{0};
  std::atomic<uint64_t> canary_requests_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> quarantines_{0};
  std::atomic<uint64_t> reinstatements_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> rerouted_{0};

  // Health monitor (quarantine + self-healing).
  std::thread monitor_;
  std::mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;

  obs::FlightRecorder* recorder_;
  obs::Counter* cache_hit_total_;
  obs::Counter* cache_miss_total_;
  obs::Counter* requests_cache_hit_;
  obs::Counter* canary_total_;
  obs::Counter* swap_total_;
  obs::Gauge* active_version_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* quarantine_total_;
  obs::Counter* reinstate_total_;
  obs::Counter* probe_total_;
  obs::Gauge* quarantined_gauge_;
  obs::Histogram* cache_us_;
};

}  // namespace serve
}  // namespace fkd

#endif  // FKD_SERVE_ROUTER_H_
