#ifndef FKD_SERVE_ENGINE_H_
#define FKD_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace fkd {
namespace serve {

/// One incoming article to classify. `creator_id` / `subject_ids` optionally
/// anchor the article in the training graph (ids into the snapshot's frozen
/// state matrices); leaving them unset serves the article text-only with
/// the paper's all-zero missing GDU ports.
struct ArticleRequest {
  std::string text;
  int32_t creator_id = -1;
  std::vector<int32_t> subject_ids;
  /// Per-request deadline in microseconds from Submit(); the future fails
  /// with DeadlineExceeded instead of blocking forever once it lapses.
  /// 0 falls back to EngineOptions::default_deadline_us.
  int64_t deadline_us = 0;

  // --- request context (observability) ---------------------------------
  /// Correlation id carried through cache lookup, queue, batch and trace
  /// spans into Classification::request_id. The Router stamps it at
  /// Submit; the engine assigns one (NextRequestId) if it is still 0.
  uint64_t request_id = 0;
  /// Microseconds the Router spent on its cache lookup before routing here
  /// (0 for direct engine submissions); copied into the breakdown.
  double cache_us = 0.0;
};

/// Process-unique request id (monotone, never 0). Routers and engines use
/// this one sequence so ids stay unique across replicas and generations.
uint64_t NextRequestId();

/// A fulfilled classification.
struct Classification {
  int32_t class_id = -1;
  std::string class_name;
  /// Softmax probabilities, one per class id.
  std::vector<float> probabilities;
  /// Size of the micro-batch this request rode in.
  size_t batch_size = 0;
  /// Correlation id (see ArticleRequest::request_id); never 0 for an
  /// engine-served or cache-served response.
  uint64_t request_id = 0;
  /// Per-stage latency breakdown, all in microseconds. For an engine-served
  /// request: queue_us (submit -> dequeued by a worker) + batch_us
  /// (dequeue -> forward start: straggler wait bookkeeping, deadline
  /// checks, retry backoff) + compute_us (batched forward + softmax) plus
  /// fulfilment overhead add up to total_us - cache_us. A cache hit has
  /// only cache_us ~= total_us and zero engine stages.
  double queue_us = 0.0;
  double batch_us = 0.0;
  double compute_us = 0.0;
  double cache_us = 0.0;
  /// End-to-end microseconds from Submit() to fulfilment.
  double total_us = 0.0;
  /// Snapshot version that produced the scores
  /// (EngineOptions::version_tag; 0 when serving outside a Router).
  uint64_t model_version = 0;
  /// True when a Router fulfilled this from its score cache without any
  /// engine forward pass.
  bool from_cache = false;
};

using ClassificationFuture = std::future<Result<Classification>>;

/// Tuning knobs of the serving engine.
struct EngineOptions {
  /// Fixed worker thread-pool size.
  size_t num_workers = 2;
  /// Upper bound on requests per forward pass.
  size_t max_batch_size = 16;
  /// How long a worker holding one request waits for more to batch with.
  int64_t max_batch_delay_us = 2000;
  /// Bounded queue: Submit() rejects with Unavailable beyond this depth.
  size_t max_queue_depth = 256;
  /// Deadline applied to requests that set none (0 = no deadline).
  int64_t default_deadline_us = 0;
  /// Transient (Status::IsRetryable) batch failures are retried up to this
  /// many times before the batch's futures are failed.
  size_t max_batch_retries = 2;
  /// Backoff before retry k is `retry_backoff_us << k` (exponential).
  int64_t retry_backoff_us = 500;
  /// Circuit breaker: when `breaker_failure_threshold` of the last
  /// `breaker_window` batches failed, the engine sheds all submissions
  /// with Unavailable for `breaker_open_us`, then lets one probe batch
  /// through (half-open) — success closes the breaker, failure re-opens it.
  size_t breaker_window = 8;
  float breaker_failure_threshold = 0.5f;
  int64_t breaker_open_us = 10000;
  /// Stamped into every Classification::model_version this engine fulfils.
  /// A Router sets it to the snapshot version the engine serves, so callers
  /// (and the hot-swap tests) can attribute each response to a version.
  uint64_t version_tag = 0;
  /// Extra FKD_FAULTS site consulted per batch attempt, *in addition to*
  /// the shared "serve.batch" site. A Router names each replica's site
  /// ("serve.replicaN.batch") so chaos drills can make exactly one replica
  /// sick — the quarantine path is unreachable otherwise, since shared
  /// faults sicken the whole fleet at once. Empty (default) = no extra
  /// site, zero cost.
  std::string fault_site;
  /// When runtime tracing is on (Tracer::Enable), requests whose total
  /// latency reaches this threshold are dumped as chrome-trace child spans
  /// (serve/request > queue/batch_form/compute), correlated by request_id.
  /// -1 (default) reads FKD_SLOW_TRACE_US; 0 traces every request.
  int64_t slow_trace_us = -1;
  /// Invoked on the worker thread for every successful classification,
  /// after the result is complete but before its future is fulfilled (a
  /// caller that observes the future also observes the hook's effects).
  /// Must be thread-safe and must not block; the Router uses it to fill
  /// its score cache. Null disables it.
  std::function<void(const ArticleRequest&, const Classification&)>
      completion_hook;
};

/// Coarse liveness summary exposed by InferenceEngine::Health().
enum class EngineHealth {
  kHealthy = 0,   ///< Breaker closed; serving normally.
  kDegraded = 1,  ///< Breaker open or half-open; shedding or probing.
  kDraining = 2,  ///< Stop() begun; queued work finishes, no new intake.
};

/// Monotone counters describing an engine's lifetime so far.
struct EngineStats {
  uint64_t submitted = 0;  ///< Accepted into the queue.
  uint64_t completed = 0;  ///< Futures fulfilled with a Classification.
  uint64_t rejected = 0;   ///< Refused at Submit (queue full / stopped).
  uint64_t expired = 0;    ///< Futures failed with DeadlineExceeded.
  /// Futures failed with DeadlineExceeded, including those that lapsed
  /// while their batch was in retry backoff (superset of `expired`'s
  /// batch-formation path; today the two advance together).
  uint64_t deadline_exceeded = 0;
  uint64_t batches = 0;  ///< Forward passes run (attempts, incl. retries).
  uint64_t retries = 0;  ///< Batch attempts repeated after transient failure.
  uint64_t failed = 0;   ///< Futures failed by an exhausted/fatal batch.
  uint64_t shed = 0;     ///< Submissions refused by the open breaker.
  /// Accepted into the queue but failed with Unavailable because the
  /// engine stopped before a worker could serve them (never-started
  /// engine's orphaned queue). Distinct from `rejected`, which counts
  /// refusals *at* Submit that were never accepted.
  uint64_t unavailable = 0;
  uint64_t breaker_trips = 0;  ///< Closed/half-open -> open transitions.
  size_t queue_depth = 0;      ///< Requests currently queued.
};

/// Every accepted request resolves exactly one way, so for any engine at
/// rest (no in-flight work):
///   submitted == completed + expired + failed + unavailable
/// and refusals (never accepted, futures never created) are disjoint:
///   refused  == rejected + shed
/// router_test asserts these invariants under hot-swap stress.

/// Multi-threaded micro-batching inference server over a frozen Snapshot.
///
/// Callers Submit() ArticleRequests and receive futures; a fixed pool of
/// workers drains the bounded queue into batches of up to `max_batch_size`
/// (waiting at most `max_batch_delay_us` for stragglers), runs one
/// tape-free batched forward per batch, and fulfils the futures with class
/// probabilities. Batch forwards execute their tensor kernels on the shared
/// process-wide intra-op pool (common/thread_pool.h, FKD_NUM_THREADS), so a
/// single batch is parallel across rows and trainer + engine never
/// oversubscribe the machine with private pools. Robustness semantics:
///
///  - backpressure: the queue is bounded; Submit() fails fast with
///    Unavailable when it is full instead of buffering without limit;
///  - deadlines: a request whose deadline lapses before its batch runs has
///    its future failed with DeadlineExceeded rather than served late;
///  - shutdown: Stop() drains — started workers finish every queued
///    request (batch delay waived) before joining; anything still queued
///    on a never-started engine fails with Unavailable;
///  - retries: a batch whose forward fails with a retryable error
///    (Status::IsRetryable — Unavailable/IoError) is retried with
///    exponential backoff up to max_batch_retries times; fatal errors and
///    exhausted retries fail the batch's futures with that error;
///  - circuit breaker: sustained batch failures trip a per-engine breaker
///    that sheds new submissions with Unavailable until a cool-down plus
///    one successful half-open probe batch close it again (graceful
///    degradation instead of queueing doomed work).
///
/// Instrumentation (obs::MetricsRegistry::Default()): fkd.serve.requests
/// (counter, labelled result=ok|rejected|expired|failed|shed|unavailable),
/// fkd.serve.deadline_exceeded and fkd.serve.retries and
/// fkd.serve.breaker_open (counters), fkd.serve.health (gauge: 0 healthy,
/// 1 degraded, 2 draining), fkd.serve.batch_size, fkd.serve.latency_us,
/// fkd.serve.queue_us, fkd.serve.batch_form_us and fkd.serve.compute_us
/// (HDR histograms; read p50/p99/p999 via Histogram::Percentile),
/// fkd.serve.queue_depth{scope=engine} (gauge; the Router publishes the
/// cross-replica aggregate as plain fkd.serve.queue_depth). Every request
/// also leaves lifecycle
/// events in the obs::FlightRecorder, and — with tracing runtime-enabled —
/// slow requests leave per-stage chrome-trace spans (see
/// EngineOptions::slow_trace_us).
class InferenceEngine {
 public:
  explicit InferenceEngine(std::shared_ptr<const Snapshot> snapshot,
                           EngineOptions options = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Launches the worker pool. One Start/Stop cycle per engine.
  Status Start();

  /// Graceful shutdown: refuses new submissions, drains the queue (see
  /// class comment), joins the workers. Idempotent.
  void Stop();

  /// Validates and enqueues one request. On acceptance returns a future
  /// that is eventually fulfilled with the Classification, a
  /// DeadlineExceeded error, or an Unavailable error (engine stopped
  /// before serving it). Returns an error Status directly when the request
  /// is invalid (bad graph ids), the queue is full, or the engine is
  /// stopped.
  Result<ClassificationFuture> Submit(ArticleRequest request);

  EngineStats Stats() const;
  /// Lock-free queue depth, maintained alongside every push/pop. Cheap
  /// enough for per-request admission-control reads (the network front end
  /// polls it on every classify), unlike Stats() which takes the engine
  /// mutex.
  size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  /// Current health: Draining once Stop() begins, Degraded while the
  /// circuit breaker is open or probing, Healthy otherwise.
  EngineHealth Health() const;
  const EngineOptions& options() const { return options_; }
  const Snapshot& snapshot() const { return *snapshot_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  struct Pending {
    ArticleRequest request;
    std::promise<Result<Classification>> promise;
    Clock::time_point submitted_at;
    Clock::time_point dequeued_at;  ///< When a worker took it off the queue.
    Clock::time_point deadline;  ///< time_point::max() = none.
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);
  /// Fails every request in `live` whose deadline is before `now` and
  /// removes it; called at batch formation and again before each retry.
  void FailExpired(std::vector<Pending>* live, Clock::time_point now);
  /// Feeds one batch outcome to the circuit breaker (locks mutex_).
  void RecordBatchOutcome(bool ok);
  /// Emits the per-stage chrome-trace spans for one served request (only
  /// called when tracing is runtime-enabled and total_us >= threshold).
  void TraceSlowRequest(const Classification& result) const;
  /// Health under mutex_ (for use inside locked sections).
  EngineHealth HealthLocked() const;
  void PublishHealthLocked();

  std::shared_ptr<const Snapshot> snapshot_;
  EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  /// Mirrors queue_.size() (updated under mutex_, read lock-free).
  std::atomic<size_t> depth_{0};
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;

  // Circuit breaker, guarded by mutex_. `window_` holds the most recent
  // batch outcomes (true = success) while the breaker is closed.
  BreakerState breaker_ = BreakerState::kClosed;
  std::deque<bool> window_;
  Clock::time_point breaker_open_until_{};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> unavailable_{0};
  std::atomic<uint64_t> breaker_trips_{0};

  /// Resolved slow-trace threshold (options_.slow_trace_us or env).
  int64_t slow_trace_us_ = 0;
  /// Flight recorder, resolved once in the constructor so serving is
  /// always covered by the black box.
  obs::FlightRecorder* recorder_;

  // Cached instruments (pointer-stable for the registry's lifetime).
  obs::Counter* requests_ok_;
  obs::Counter* requests_rejected_;
  obs::Counter* requests_expired_;
  obs::Counter* requests_failed_;
  obs::Counter* requests_shed_;
  obs::Counter* requests_unavailable_;
  obs::Counter* deadline_exceeded_total_;
  obs::Counter* retries_total_;
  obs::Counter* breaker_open_total_;
  obs::Histogram* batch_size_;
  obs::Histogram* latency_us_;
  obs::Histogram* queue_us_;
  obs::Histogram* batch_form_us_;
  obs::Histogram* compute_us_;
  obs::Gauge* queue_depth_;
  obs::Gauge* health_;
};

}  // namespace serve
}  // namespace fkd

#endif  // FKD_SERVE_ENGINE_H_
