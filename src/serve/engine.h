#ifndef FKD_SERVE_ENGINE_H_
#define FKD_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace fkd {
namespace serve {

/// One incoming article to classify. `creator_id` / `subject_ids` optionally
/// anchor the article in the training graph (ids into the snapshot's frozen
/// state matrices); leaving them unset serves the article text-only with
/// the paper's all-zero missing GDU ports.
struct ArticleRequest {
  std::string text;
  int32_t creator_id = -1;
  std::vector<int32_t> subject_ids;
  /// Per-request deadline in microseconds from Submit(); the future fails
  /// with DeadlineExceeded instead of blocking forever once it lapses.
  /// 0 falls back to EngineOptions::default_deadline_us.
  int64_t deadline_us = 0;
};

/// A fulfilled classification.
struct Classification {
  int32_t class_id = -1;
  std::string class_name;
  /// Softmax probabilities, one per class id.
  std::vector<float> probabilities;
  /// Size of the micro-batch this request rode in.
  size_t batch_size = 0;
  /// Microseconds spent queued before its batch formed.
  double queue_us = 0.0;
  /// End-to-end microseconds from Submit() to fulfilment.
  double total_us = 0.0;
};

using ClassificationFuture = std::future<Result<Classification>>;

/// Tuning knobs of the serving engine.
struct EngineOptions {
  /// Fixed worker thread-pool size.
  size_t num_workers = 2;
  /// Upper bound on requests per forward pass.
  size_t max_batch_size = 16;
  /// How long a worker holding one request waits for more to batch with.
  int64_t max_batch_delay_us = 2000;
  /// Bounded queue: Submit() rejects with Unavailable beyond this depth.
  size_t max_queue_depth = 256;
  /// Deadline applied to requests that set none (0 = no deadline).
  int64_t default_deadline_us = 0;
};

/// Monotone counters describing an engine's lifetime so far.
struct EngineStats {
  uint64_t submitted = 0;  ///< Accepted into the queue.
  uint64_t completed = 0;  ///< Futures fulfilled with a Classification.
  uint64_t rejected = 0;   ///< Refused at Submit (queue full / stopped).
  uint64_t expired = 0;    ///< Futures failed with DeadlineExceeded.
  uint64_t batches = 0;    ///< Forward passes run.
  size_t queue_depth = 0;  ///< Requests currently queued.
};

/// Multi-threaded micro-batching inference server over a frozen Snapshot.
///
/// Callers Submit() ArticleRequests and receive futures; a fixed pool of
/// workers drains the bounded queue into batches of up to `max_batch_size`
/// (waiting at most `max_batch_delay_us` for stragglers), runs one
/// tape-free batched forward per batch, and fulfils the futures with class
/// probabilities. Robustness semantics:
///
///  - backpressure: the queue is bounded; Submit() fails fast with
///    Unavailable when it is full instead of buffering without limit;
///  - deadlines: a request whose deadline lapses before its batch runs has
///    its future failed with DeadlineExceeded rather than served late;
///  - shutdown: Stop() drains — started workers finish every queued
///    request (batch delay waived) before joining; anything still queued
///    on a never-started engine fails with Unavailable.
///
/// Instrumentation (obs::MetricsRegistry::Default()): fkd.serve.requests
/// (counter, labelled result=ok|rejected|expired), fkd.serve.batch_size and
/// fkd.serve.latency_us / fkd.serve.queue_us (histograms; read p50/p99 via
/// Histogram::Percentile), fkd.serve.queue_depth (gauge).
class InferenceEngine {
 public:
  explicit InferenceEngine(std::shared_ptr<const Snapshot> snapshot,
                           EngineOptions options = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Launches the worker pool. One Start/Stop cycle per engine.
  Status Start();

  /// Graceful shutdown: refuses new submissions, drains the queue (see
  /// class comment), joins the workers. Idempotent.
  void Stop();

  /// Validates and enqueues one request. On acceptance returns a future
  /// that is eventually fulfilled with the Classification, a
  /// DeadlineExceeded error, or an Unavailable error (engine stopped
  /// before serving it). Returns an error Status directly when the request
  /// is invalid (bad graph ids), the queue is full, or the engine is
  /// stopped.
  Result<ClassificationFuture> Submit(ArticleRequest request);

  EngineStats Stats() const;
  const EngineOptions& options() const { return options_; }
  const Snapshot& snapshot() const { return *snapshot_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ArticleRequest request;
    std::promise<Result<Classification>> promise;
    Clock::time_point submitted_at;
    Clock::time_point deadline;  ///< time_point::max() = none.
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);

  std::shared_ptr<const Snapshot> snapshot_;
  EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> batches_{0};

  // Cached instruments (pointer-stable for the registry's lifetime).
  obs::Counter* requests_ok_;
  obs::Counter* requests_rejected_;
  obs::Counter* requests_expired_;
  obs::Histogram* batch_size_;
  obs::Histogram* latency_us_;
  obs::Histogram* queue_us_;
  obs::Gauge* queue_depth_;
};

}  // namespace serve
}  // namespace fkd

#endif  // FKD_SERVE_ENGINE_H_
