#ifndef FKD_SERVE_SNAPSHOT_H_
#define FKD_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/block_codec.h"
#include "common/status.h"
#include "core/diffusion_model.h"
#include "core/fake_detector.h"
#include "eval/classifier.h"
#include "nn/quantize.h"
#include "tensor/tensor.h"

namespace fkd {
namespace serve {

/// A frozen, servable FakeDetector: everything needed to go from raw
/// article text to class probabilities, reloaded from one snapshot
/// directory. Immutable after LoadSnapshot; all scoring members are const
/// and safe to call concurrently from any number of threads (the model
/// forward is tape-free and the vocabularies are lookup-only).
struct Snapshot {
  /// Architecture configuration the model was rebuilt from (training
  /// hyper-parameters are carried along but unused at serve time).
  core::FakeDetectorConfig config;
  size_t num_classes = 0;
  eval::LabelGranularity granularity = eval::LabelGranularity::kBinary;
  /// Display name per class id, e.g. {"not credible", "credible"}.
  std::vector<std::string> class_names;

  /// The rebuilt parameter tree.
  std::unique_ptr<core::DiffusionModel> model;

  /// Frozen hidden states of the training corpus after the K diffusion
  /// steps: [num_creators x gdu_hidden] / [num_subjects x gdu_hidden].
  /// New articles aggregate these through their creator/subject links.
  Tensor creator_states;
  Tensor subject_states;

  /// Checks that the optional graph context of a request points at rows of
  /// the frozen state matrices. `creator_id` < 0 means "unknown creator".
  Status ValidateIds(int32_t creator_id,
                     const std::vector<int32_t>& subject_ids) const;

  /// Scores a batch of raw article texts: tokenises with the modelling
  /// conventions, featurises against the frozen vocabularies, and runs the
  /// tape-free batched forward. `creator_ids[i]` < 0 and an empty
  /// `subject_ids[i]` degrade to the paper's all-zero missing GDU ports.
  /// Returns raw logits [n x num_classes]. Ids must have been validated.
  Tensor Score(const std::vector<std::string>& texts,
               const std::vector<int32_t>& creator_ids,
               const std::vector<std::vector<int32_t>>& subject_ids) const;

  /// Deterministic estimate of this snapshot's heap footprint once loaded:
  /// parameter and state tensors exactly, vocabularies and label names by
  /// a fixed per-entry model. The memory accountant charges this value, so
  /// it must be a pure function of the snapshot's content.
  size_t ResidentBytes() const;
};

/// Knobs of an export. The defaults reproduce the legacy layout exactly
/// (fp32 FKDW v1 weights, plain-text cold artifacts).
struct SnapshotOptions {
  /// Encoding of weights.fkdw AND states: kFp16/kInt8 write FKDW v2
  /// records dequantised on load through one deterministic path.
  nn::TensorCodec weights_codec = nn::TensorCodec::kFp32;
  /// kRaw keeps the frozen states and vocab TSVs as plain files; any other
  /// codec wraps them into per-block-CRC'd FKDZ containers (*.fkdz).
  BlockCodecId cold_codec = BlockCodecId::kRaw;
};

/// Freezes a trained detector into `directory`: architecture config +
/// label map (config.txt, labels.txt), the six vocabularies (*.tsv), the
/// parameters (weights.fkdw via nn::SaveParameters), the frozen diffusion
/// states (states.fkdw) and a MANIFEST recording every file's size and
/// CRC-32C. Crash-safe: everything is written and fsynced in a staging
/// directory that one atomic rename publishes at the end, so a crash at
/// any step leaves either the previous snapshot or nothing — never a
/// half-written directory. Fails with FailedPrecondition if the detector
/// was not trained.
Status ExportSnapshot(const core::FakeDetector& detector,
                      const std::string& directory);

/// ExportSnapshot with explicit weight/cold-tier encodings. config.txt
/// records both codecs so LoadSnapshot routes each artifact through the
/// matching decoder; the MANIFEST covers the encoded artifacts, so
/// corruption of a quantized or compressed file fails the same loud way.
Status ExportSnapshot(const core::FakeDetector& detector,
                      const std::string& directory,
                      const SnapshotOptions& options);

/// Re-exports an already-loaded snapshot — the spill path of the model
/// store's on-disk tier (there is no FakeDetector to export from once only
/// the servable form is resident). Lossless for fp32 weights: a
/// LoadSnapshot of the result is bit-identical to `snapshot`.
Status ExportSnapshot(const Snapshot& snapshot, const std::string& directory,
                      const SnapshotOptions& options);

/// Rebuilds a servable model from an ExportSnapshot directory. The
/// MANIFEST is verified (existence, size, CRC-32C of every artifact)
/// before anything is parsed — a torn or bit-rotted snapshot fails with
/// Corruption up front. The parameter shapes are then re-derived from the
/// persisted config and vocabularies, so LoadParameters catches any drift
/// by name and shape.
Result<Snapshot> LoadSnapshot(const std::string& directory);

}  // namespace serve
}  // namespace fkd

#endif  // FKD_SERVE_SNAPSHOT_H_
