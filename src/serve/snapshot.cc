#include "serve/snapshot.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <utility>

#include "common/file_io.h"
#include "common/manifest.h"
#include "common/string_util.h"
#include "data/labels.h"
#include "nn/serialize.h"
#include "text/features.h"

namespace fkd {
namespace serve {

namespace {

constexpr uint64_t kFormatVersion = 1;

constexpr const char* kConfigFile = "config.txt";
constexpr const char* kLabelsFile = "labels.txt";
constexpr const char* kWeightsFile = "weights.fkdw";
constexpr const char* kStatesFile = "states.fkdw";

/// Cold-tier artifacts (states + vocabularies) gain this suffix when the
/// snapshot is exported with a compressing cold codec.
constexpr const char* kCompressedSuffix = ".fkdz";

std::string ColdFileName(const char* base, BlockCodecId cold_codec) {
  std::string name = base;
  if (cold_codec != BlockCodecId::kRaw) name += kCompressedSuffix;
  return name;
}

/// The six vocabulary files, in the DiffusionModel constructor's order.
const char* const kVocabularyFiles[] = {
    "article_words.tsv", "creator_words.tsv", "subject_words.tsv",
    "article_latent.tsv", "creator_latent.tsv", "subject_latent.tsv",
};

/// Adapter exposing the frozen diffusion states to the FKDW parameter
/// (de)serialiser — reusing its magic/shape/name validation for free.
struct FrozenStates : nn::Module {
  autograd::Variable creators;
  autograd::Variable subjects;

  FrozenStates(Tensor creator_states, Tensor subject_states)
      : creators(std::move(creator_states), false, "creator_states"),
        subjects(std::move(subject_states), false, "subject_states") {}

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override {
    out->push_back({nn::JoinName(prefix, "creator_states"), creators});
    out->push_back({nn::JoinName(prefix, "subject_states"), subjects});
  }
};

std::string GranularityName(eval::LabelGranularity granularity) {
  return granularity == eval::LabelGranularity::kBinary ? "binary" : "multi";
}

std::vector<std::string> ClassNames(eval::LabelGranularity granularity) {
  if (granularity == eval::LabelGranularity::kBinary) {
    return {"not credible", "credible"};  // BiClassOf: 1 = credible group.
  }
  std::vector<std::string> names;
  for (size_t id = 0; id < data::kNumCredibilityClasses; ++id) {
    names.emplace_back(
        data::LabelName(static_cast<data::CredibilityLabel>(id)));
  }
  return names;
}

Status WriteConfig(const Snapshot& snapshot, size_t num_creators,
                   size_t num_subjects, const SnapshotOptions& options,
                   const std::string& path) {
  std::ostringstream out;
  const core::FakeDetectorConfig& c = snapshot.config;
  out << "format_version=" << kFormatVersion << '\n'
      << "weights_codec=" << nn::TensorCodecName(options.weights_codec) << '\n'
      << "cold_codec=" << GetBlockCodec(options.cold_codec)->name() << '\n'
      << "num_classes=" << snapshot.num_classes << '\n'
      << "granularity=" << GranularityName(snapshot.granularity) << '\n'
      << "hflu.embed_dim=" << c.hflu.embed_dim << '\n'
      << "hflu.gru_hidden=" << c.hflu.gru_hidden << '\n'
      << "hflu.latent_dim=" << c.hflu.latent_dim << '\n'
      << "hflu.max_sequence_length=" << c.hflu.max_sequence_length << '\n'
      << "hflu.cell=" << nn::RnnCellKindName(c.hflu.cell) << '\n'
      << "hflu.use_explicit=" << (c.hflu.use_explicit ? 1 : 0) << '\n'
      << "hflu.use_latent=" << (c.hflu.use_latent ? 1 : 0) << '\n'
      << "explicit_words=" << c.explicit_words << '\n'
      << "latent_vocabulary=" << c.latent_vocabulary << '\n'
      << "gdu_hidden=" << c.gdu_hidden << '\n'
      << "diffusion_steps=" << c.diffusion_steps << '\n'
      << "gdu.disable_forget_gate=" << (c.gdu.disable_forget_gate ? 1 : 0)
      << '\n'
      << "gdu.disable_adjust_gate=" << (c.gdu.disable_adjust_gate ? 1 : 0)
      << '\n'
      << "gdu.plain_unit=" << (c.gdu.plain_unit ? 1 : 0) << '\n'
      << "num_creators=" << num_creators << '\n'
      << "num_subjects=" << num_subjects << '\n';
  return WriteStringToFile(path, out.str());
}

/// Parsed key=value view of config.txt with typed, validated accessors.
class ConfigReader {
 public:
  static Result<ConfigReader> Read(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open for reading: " + path);
    ConfigReader reader;
    reader.path_ = path;
    std::string line;
    size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      const size_t eq = line.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::Corruption(
            StrFormat("%s:%zu: expected key=value", path.c_str(), line_number));
      }
      std::string key = line.substr(0, eq);
      // Duplicate keys would make last-wins pick a value silently; a config
      // with two opinions about the same knob is corrupt, not ambiguous.
      if (reader.values_.count(key) != 0) {
        return Status::Corruption(StrFormat("%s:%zu: duplicate key '%s'",
                                            path.c_str(), line_number,
                                            key.c_str()));
      }
      reader.values_.emplace(std::move(key), line.substr(eq + 1));
    }
    return reader;
  }

  Status GetUint(const std::string& key, size_t* out) const {
    std::string raw;
    FKD_RETURN_NOT_OK(GetRaw(key, &raw));
    uint64_t value = 0;
    if (!ParseUint64(raw, &value)) {
      return Status::Corruption(StrFormat("%s: bad value '%s' for key %s",
                                          path_.c_str(), raw.c_str(),
                                          key.c_str()));
    }
    *out = static_cast<size_t>(value);
    return Status::OK();
  }

  Status GetBool(const std::string& key, bool* out) const {
    size_t value = 0;
    FKD_RETURN_NOT_OK(GetUint(key, &value));
    if (value > 1) {
      return Status::Corruption(
          StrFormat("%s: key %s must be 0 or 1", path_.c_str(), key.c_str()));
    }
    *out = value == 1;
    return Status::OK();
  }

  Status GetRaw(const std::string& key, std::string* out) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::Corruption(
          StrFormat("%s: missing key %s", path_.c_str(), key.c_str()));
    }
    *out = it->second;
    return Status::OK();
  }

  /// Optional keys (codec hints absent from pre-quantization snapshots).
  std::string GetOr(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::string path_;
  std::map<std::string, std::string> values_;
};

}  // namespace

Status Snapshot::ValidateIds(int32_t creator_id,
                             const std::vector<int32_t>& subject_ids) const {
  if (creator_id >= 0 &&
      static_cast<size_t>(creator_id) >= creator_states.rows()) {
    return Status::InvalidArgument(
        StrFormat("creator id %d outside the snapshot's %zu creators",
                  creator_id, creator_states.rows()));
  }
  for (int32_t id : subject_ids) {
    if (id < 0 || static_cast<size_t>(id) >= subject_states.rows()) {
      return Status::InvalidArgument(
          StrFormat("subject id %d outside the snapshot's %zu subjects", id,
                    subject_states.rows()));
    }
  }
  return Status::OK();
}

Tensor Snapshot::Score(
    const std::vector<std::string>& texts,
    const std::vector<int32_t>& creator_ids,
    const std::vector<std::vector<int32_t>>& subject_ids) const {
  FKD_CHECK(model != nullptr);
  FKD_CHECK_EQ(creator_ids.size(), texts.size());
  FKD_CHECK_EQ(subject_ids.size(), texts.size());
  const auto documents = text::TokenizeDocuments(texts);
  const core::HfluInput input = model->article_hflu().PrepareBatch(documents);
  std::vector<std::vector<int32_t>> creator_groups(texts.size());
  for (size_t i = 0; i < creator_ids.size(); ++i) {
    if (creator_ids[i] >= 0) creator_groups[i] = {creator_ids[i]};
  }
  return model->ScoreArticles(input, subject_ids, creator_groups,
                              creator_states, subject_states);
}

namespace {

/// Shared export body for both the trained-detector and loaded-snapshot
/// fronts. `header` supplies config/classes/label names; the model and the
/// frozen states are passed explicitly because the two fronts own them
/// differently.
Status ExportSnapshotImpl(const core::DiffusionModel& model,
                          const Snapshot& header,
                          const Tensor& creator_states,
                          const Tensor& subject_states,
                          const std::string& directory,
                          const SnapshotOptions& options) {
  if (GetBlockCodec(options.cold_codec) == nullptr) {
    return Status::InvalidArgument("unregistered cold codec id");
  }
  // Crash-safe export: every file is written (and fsynced) into a staging
  // directory, the MANIFEST covering all of them goes last, and only then
  // does one atomic rename publish the snapshot. A crash at any earlier
  // step leaves nothing under `directory` for LoadSnapshot to find.
  std::error_code ec;
  const std::string parent =
      std::filesystem::path(directory).parent_path().string();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  FKD_ASSIGN_OR_RETURN(StagedDir staged, StagedDir::Create(directory));
  const std::filesystem::path dir(staged.path());

  FKD_RETURN_NOT_OK(WriteConfig(header, creator_states.rows(),
                                subject_states.rows(), options,
                                (dir / kConfigFile).string()));

  {
    std::string labels;
    for (const auto& name : header.class_names) {
      labels += name;
      labels += '\n';
    }
    FKD_RETURN_NOT_OK(WriteStringToFile((dir / kLabelsFile).string(), labels));
  }

  const text::Vocabulary* vocabularies[] = {
      &model.article_hflu().word_set(),
      &model.creator_hflu().word_set(),
      &model.subject_hflu().word_set(),
      &model.article_hflu().latent_vocabulary(),
      &model.creator_hflu().latent_vocabulary(),
      &model.subject_hflu().latent_vocabulary(),
  };
  for (size_t i = 0; i < std::size(kVocabularyFiles); ++i) {
    const std::string name = ColdFileName(kVocabularyFiles[i],
                                          options.cold_codec);
    if (options.cold_codec == BlockCodecId::kRaw) {
      FKD_RETURN_NOT_OK(vocabularies[i]->Save((dir / name).string()));
    } else {
      FKD_RETURN_NOT_OK(WriteCompressedFile(
          (dir / name).string(), vocabularies[i]->SerializeToString(),
          options.cold_codec));
    }
  }

  FKD_RETURN_NOT_OK(nn::SaveParametersEncoded(
      model, (dir / kWeightsFile).string(), options.weights_codec));

  const std::vector<std::pair<std::string, const Tensor*>> state_tensors = {
      {"creator_states", &creator_states},
      {"subject_states", &subject_states},
  };
  const std::string states_name = ColdFileName(kStatesFile,
                                               options.cold_codec);
  if (options.cold_codec == BlockCodecId::kRaw) {
    FKD_RETURN_NOT_OK(nn::SaveTensorsEncoded(
        state_tensors, (dir / states_name).string(), options.weights_codec));
  } else {
    FKD_RETURN_NOT_OK(WriteCompressedFile(
        (dir / states_name).string(),
        nn::EncodeTensorsImage(state_tensors, options.weights_codec),
        options.cold_codec));
  }

  std::vector<std::string> files = {kConfigFile, kLabelsFile, kWeightsFile,
                                    states_name};
  for (const char* file : kVocabularyFiles) {
    files.push_back(ColdFileName(file, options.cold_codec));
  }
  FKD_RETURN_NOT_OK(WriteManifest(staged.path(), files));
  return staged.Commit();
}

}  // namespace

Status ExportSnapshot(const core::FakeDetector& detector,
                      const std::string& directory) {
  return ExportSnapshot(detector, directory, SnapshotOptions());
}

Status ExportSnapshot(const core::FakeDetector& detector,
                      const std::string& directory,
                      const SnapshotOptions& options) {
  const core::DiffusionModel* model = detector.model();
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "ExportSnapshot needs a trained FakeDetector");
  }
  Snapshot header;
  header.config = detector.config();
  header.num_classes = model->num_classes();
  header.granularity = detector.granularity();
  header.class_names = ClassNames(detector.granularity());
  return ExportSnapshotImpl(*model, header, detector.frozen_creator_states(),
                            detector.frozen_subject_states(), directory,
                            options);
}

Status ExportSnapshot(const Snapshot& snapshot, const std::string& directory,
                      const SnapshotOptions& options) {
  if (snapshot.model == nullptr) {
    return Status::FailedPrecondition(
        "ExportSnapshot needs a loaded Snapshot");
  }
  return ExportSnapshotImpl(*snapshot.model, snapshot,
                            snapshot.creator_states, snapshot.subject_states,
                            directory, options);
}

Result<Snapshot> LoadSnapshot(const std::string& directory) {
  const std::filesystem::path dir(directory);
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::IoError("snapshot directory does not exist: " + directory);
  }
  // Integrity gate before parsing a single byte: the manifest must exist
  // (its absence means the export never reached its commit point) and every
  // listed file must match its recorded size and CRC-32C exactly.
  {
    const Status verified = VerifyManifest(directory);
    if (!verified.ok()) {
      if (verified.code() == StatusCode::kNotFound) {
        return Status::Corruption("snapshot " + directory +
                                  " has no MANIFEST (incomplete export?)");
      }
      return verified;
    }
  }
  FKD_ASSIGN_OR_RETURN(const ConfigReader reader,
                       ConfigReader::Read((dir / kConfigFile).string()));

  size_t format_version = 0;
  FKD_RETURN_NOT_OK(reader.GetUint("format_version", &format_version));
  if (format_version != kFormatVersion) {
    return Status::Corruption(
        StrFormat("unsupported snapshot format_version %zu", format_version));
  }

  // Codec hints default to the legacy encodings when absent (snapshots
  // exported before quantization landed carry neither key).
  nn::TensorCodec weights_codec = nn::TensorCodec::kFp32;
  if (!nn::TensorCodecFromName(reader.GetOr("weights_codec", "fp32"),
                               &weights_codec)) {
    return Status::Corruption("bad weights_codec in " + directory);
  }
  (void)weights_codec;  // recorded per record in FKDW v2; config is a hint
  FKD_ASSIGN_OR_RETURN(const BlockCodecId cold_codec,
                       BlockCodecIdFromName(reader.GetOr("cold_codec", "raw")));

  Snapshot snapshot;
  core::FakeDetectorConfig& c = snapshot.config;
  FKD_RETURN_NOT_OK(reader.GetUint("num_classes", &snapshot.num_classes));
  std::string granularity;
  FKD_RETURN_NOT_OK(reader.GetRaw("granularity", &granularity));
  if (granularity == "binary") {
    snapshot.granularity = eval::LabelGranularity::kBinary;
  } else if (granularity == "multi") {
    snapshot.granularity = eval::LabelGranularity::kMulti;
  } else {
    return Status::Corruption("bad granularity '" + granularity + "'");
  }
  FKD_RETURN_NOT_OK(reader.GetUint("hflu.embed_dim", &c.hflu.embed_dim));
  FKD_RETURN_NOT_OK(reader.GetUint("hflu.gru_hidden", &c.hflu.gru_hidden));
  FKD_RETURN_NOT_OK(reader.GetUint("hflu.latent_dim", &c.hflu.latent_dim));
  FKD_RETURN_NOT_OK(reader.GetUint("hflu.max_sequence_length",
                                   &c.hflu.max_sequence_length));
  std::string cell;
  FKD_RETURN_NOT_OK(reader.GetRaw("hflu.cell", &cell));
  if (cell == "gru") {
    c.hflu.cell = nn::RnnCellKind::kGru;
  } else if (cell == "basic") {
    c.hflu.cell = nn::RnnCellKind::kBasic;
  } else if (cell == "lstm") {
    c.hflu.cell = nn::RnnCellKind::kLstm;
  } else {
    return Status::Corruption("bad hflu.cell '" + cell + "'");
  }
  FKD_RETURN_NOT_OK(reader.GetBool("hflu.use_explicit", &c.hflu.use_explicit));
  FKD_RETURN_NOT_OK(reader.GetBool("hflu.use_latent", &c.hflu.use_latent));
  FKD_RETURN_NOT_OK(reader.GetUint("explicit_words", &c.explicit_words));
  FKD_RETURN_NOT_OK(reader.GetUint("latent_vocabulary", &c.latent_vocabulary));
  FKD_RETURN_NOT_OK(reader.GetUint("gdu_hidden", &c.gdu_hidden));
  FKD_RETURN_NOT_OK(reader.GetUint("diffusion_steps", &c.diffusion_steps));
  FKD_RETURN_NOT_OK(
      reader.GetBool("gdu.disable_forget_gate", &c.gdu.disable_forget_gate));
  FKD_RETURN_NOT_OK(
      reader.GetBool("gdu.disable_adjust_gate", &c.gdu.disable_adjust_gate));
  FKD_RETURN_NOT_OK(reader.GetBool("gdu.plain_unit", &c.gdu.plain_unit));
  size_t num_creators = 0;
  size_t num_subjects = 0;
  FKD_RETURN_NOT_OK(reader.GetUint("num_creators", &num_creators));
  FKD_RETURN_NOT_OK(reader.GetUint("num_subjects", &num_subjects));
  if (snapshot.num_classes == 0) {
    return Status::Corruption("num_classes must be >= 1");
  }

  {
    std::ifstream in(dir / kLabelsFile);
    if (!in) return Status::IoError("cannot read label map");
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) snapshot.class_names.push_back(line);
    }
    if (snapshot.class_names.size() != snapshot.num_classes) {
      return Status::Corruption(
          StrFormat("label map has %zu names, config says %zu classes",
                    snapshot.class_names.size(), snapshot.num_classes));
    }
  }

  std::vector<text::Vocabulary> vocabularies;
  for (const char* file : kVocabularyFiles) {
    const std::string path = (dir / ColdFileName(file, cold_codec)).string();
    if (cold_codec == BlockCodecId::kRaw) {
      FKD_ASSIGN_OR_RETURN(text::Vocabulary vocabulary,
                           text::Vocabulary::Load(path));
      vocabularies.push_back(std::move(vocabulary));
    } else {
      FKD_ASSIGN_OR_RETURN(const std::string bytes, ReadCompressedFile(path));
      FKD_ASSIGN_OR_RETURN(text::Vocabulary vocabulary,
                           text::Vocabulary::Parse(bytes, path));
      vocabularies.push_back(std::move(vocabulary));
    }
  }

  // The initialiser RNG is irrelevant: every parameter is overwritten from
  // the weights file (LoadParameters fails loudly on any name/shape drift).
  Rng rng(0);
  snapshot.model = std::make_unique<core::DiffusionModel>(
      c, snapshot.num_classes, std::move(vocabularies[0]),
      std::move(vocabularies[1]), std::move(vocabularies[2]),
      std::move(vocabularies[3]), std::move(vocabularies[4]),
      std::move(vocabularies[5]), &rng);
  FKD_RETURN_NOT_OK(nn::LoadParameters(snapshot.model.get(),
                                       (dir / kWeightsFile).string()));

  FrozenStates states(Tensor(num_creators, c.gdu_hidden),
                      Tensor(num_subjects, c.gdu_hidden));
  const std::string states_path =
      (dir / ColdFileName(kStatesFile, cold_codec)).string();
  if (cold_codec == BlockCodecId::kRaw) {
    FKD_RETURN_NOT_OK(nn::LoadParameters(&states, states_path));
  } else {
    FKD_ASSIGN_OR_RETURN(const std::string bytes,
                         ReadCompressedFile(states_path));
    FKD_RETURN_NOT_OK(nn::LoadParametersFromImage(&states, bytes.data(),
                                                  bytes.size(), states_path));
  }
  snapshot.creator_states = states.creators.value();
  snapshot.subject_states = states.subjects.value();
  return snapshot;
}

size_t Snapshot::ResidentBytes() const {
  // Fixed per-entry model for the hash-map + string + id bookkeeping a
  // vocabulary entry costs; exact token payloads on top. Constant by
  // content so re-charges after a promote/demote cycle are identical.
  constexpr size_t kVocabularyEntryOverhead = 64;
  size_t bytes = (creator_states.size() + subject_states.size()) *
                 sizeof(float);
  for (const auto& name : class_names) bytes += name.size() + sizeof(name);
  if (model != nullptr) {
    std::vector<nn::NamedParameter> params;
    model->CollectParameters("", &params);
    for (const auto& p : params) {
      bytes += p.variable.value().size() * sizeof(float);
    }
    const text::Vocabulary* vocabularies[] = {
        &model->article_hflu().word_set(),
        &model->creator_hflu().word_set(),
        &model->subject_hflu().word_set(),
        &model->article_hflu().latent_vocabulary(),
        &model->creator_hflu().latent_vocabulary(),
        &model->subject_hflu().latent_vocabulary(),
    };
    for (const text::Vocabulary* vocabulary : vocabularies) {
      for (const auto& token : vocabulary->tokens()) {
        bytes += token.size() + kVocabularyEntryOverhead;
      }
    }
  }
  return bytes;
}

}  // namespace serve
}  // namespace fkd
