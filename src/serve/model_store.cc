#include "serve/model_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace fkd {
namespace serve {

namespace {

std::string VersionNotFound(uint64_t version) {
  return StrFormat("version %llu is not resident in the store",
                   static_cast<unsigned long long>(version));
}

}  // namespace

ModelStoreOptions ModelStoreOptions::FromEnv() {
  ModelStoreOptions options;
  const char* raw = std::getenv("FKD_MEMORY_BUDGET_MB");
  if (raw != nullptr && raw[0] != '\0') {
    uint64_t megabytes = 0;
    if (ParseUint64(raw, &megabytes)) {
      options.memory_budget_bytes =
          static_cast<size_t>(megabytes) * 1024 * 1024;
    } else {
      FKD_LOG(Warning) << "ignoring unparsable FKD_MEMORY_BUDGET_MB='" << raw
                       << "'";
    }
  }
  return options;
}

VersionedModelStore::VersionedModelStore(ModelStoreOptions options)
    : options_(std::move(options)),
      accountant_(options_.memory_budget_bytes) {}

Result<std::shared_ptr<const ServingModel>> VersionedModelStore::Load(
    const std::string& directory) {
  // LoadSnapshot is the PR 3 durable path: the MANIFEST (existence, size,
  // CRC-32C of every artifact) is verified before a byte is parsed, so a
  // torn or bit-rotted snapshot never becomes a version.
  Result<Snapshot> loaded = LoadSnapshot(directory);
  if (!loaded.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++load_failures_;
    return loaded.status();
  }
  auto snapshot =
      std::make_shared<const Snapshot>(std::move(loaded).value());
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterLocked(std::move(snapshot), directory);
}

std::shared_ptr<const ServingModel> VersionedModelStore::Register(
    std::shared_ptr<const Snapshot> snapshot, std::string directory) {
  FKD_CHECK(snapshot != nullptr && snapshot->model != nullptr)
      << "Register needs a loaded snapshot";
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterLocked(std::move(snapshot), std::move(directory));
}

std::shared_ptr<const ServingModel> VersionedModelStore::RegisterLocked(
    std::shared_ptr<const Snapshot> snapshot, std::string directory) {
  auto model = std::make_shared<ServingModel>();
  model->version = next_version_++;
  model->directory = std::move(directory);
  model->snapshot = std::move(snapshot);
  ++loads_;
  Entry entry;
  entry.version = model->version;
  entry.directory = model->directory;
  entry.resident_bytes = model->snapshot->ResidentBytes();
  entry.model = model;
  accountant_.Charge(entry.version, entry.resident_bytes);
  resident_.push_back(std::move(entry));
  TouchLocked(&resident_.back());
  FKD_LOG(Info) << "model store: loaded version " << model->version
                << (model->directory.empty() ? ""
                                             : " from " + model->directory);
  EnforceBudgetLocked();
  PublishGaugeLocked();
  return model;
}

VersionedModelStore::Entry* VersionedModelStore::FindLocked(
    uint64_t version) {
  for (Entry& entry : resident_) {
    if (entry.version == version) return &entry;
  }
  return nullptr;
}

void VersionedModelStore::TouchLocked(Entry* entry) {
  entry->last_use = ++use_tick_;
  entry->spill_failed = false;  // worth retrying once the entry is hot again
}

Result<std::string> VersionedModelStore::SpillRootLocked() {
  if (!spill_root_.empty()) return spill_root_;
  std::string root = options_.spill_directory;
  if (root.empty()) {
    static std::atomic<uint64_t> sequence{0};
    root = (std::filesystem::temp_directory_path() /
            StrFormat("fkd_store_spill_%d_%llu", static_cast<int>(::getpid()),
                      static_cast<unsigned long long>(
                          sequence.fetch_add(1))))
               .string();
  }
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create spill directory " + root + ": " +
                           ec.message());
  }
  spill_root_ = root;
  return spill_root_;
}

void VersionedModelStore::EnforceBudgetLocked(const Entry* protect) {
  while (accountant_.OverBudget()) {
    Entry* victim = nullptr;
    for (Entry& entry : resident_) {
      if (&entry == protect) continue;       // being handed out right now
      if (entry.model == nullptr) continue;  // already on the disk tier
      if (entry.pinned) continue;
      if (entry.spill_failed) continue;
      if (active_ != nullptr && active_->version == entry.version) continue;
      if (victim == nullptr || entry.last_use < victim->last_use) {
        victim = &entry;
      }
    }
    // Only the active/pinned working set remains: the store stays over
    // budget rather than demoting what is being served.
    if (victim == nullptr) break;
    DemoteLocked(victim);
  }
}

void VersionedModelStore::DemoteLocked(Entry* entry) {
  if (entry->spill_path.empty()) {
    Result<std::string> root = SpillRootLocked();
    if (!root.ok()) {
      entry->spill_failed = true;
      FKD_LOG(Warning) << "model store: cannot demote version "
                       << entry->version << ": "
                       << root.status().ToString();
      return;
    }
    const std::string path =
        (std::filesystem::path(root.value()) /
         StrFormat("v%llu", static_cast<unsigned long long>(entry->version)))
            .string();
    // Lossless spill: fp32 weights, LZ-compressed cold tier. The export is
    // the crash-safe staged path, so a kill mid-demotion leaves either a
    // complete spill or nothing — never a half-written tier the next
    // promotion would trip over.
    SnapshotOptions spill_options;
    spill_options.weights_codec = nn::TensorCodec::kFp32;
    spill_options.cold_codec = BlockCodecId::kLz;
    const Status exported =
        ExportSnapshot(*entry->model->snapshot, path, spill_options);
    if (!exported.ok()) {
      entry->spill_failed = true;
      FKD_LOG(Warning) << "model store: spill of version " << entry->version
                       << " failed: " << exported.ToString();
      return;
    }
    entry->spill_path = path;
  }
  const size_t bytes = entry->resident_bytes;
  // Outstanding references (a draining router generation) keep the old
  // object alive; the registry just stops holding it resident.
  entry->model.reset();
  accountant_.Release(entry->version);
  ++demotions_;
  obs::MetricsRegistry::Default().GetCounter("fkd.store.demotions")
      ->Increment();
  obs::FlightRecorder::Get().Record(obs::FlightEventType::kModelDemote,
                                    entry->version, bytes);
  FKD_LOG(Info) << "model store: demoted version " << entry->version << " ("
                << bytes << " bytes) to " << entry->spill_path;
}

Status VersionedModelStore::PromoteLocked(Entry* entry) {
  FKD_CHECK(entry->model == nullptr);
  if (entry->spill_path.empty()) {
    return Status::Internal(
        StrFormat("version %llu is demoted but has no spill",
                  static_cast<unsigned long long>(entry->version)));
  }
  // The spill was exported losslessly and LoadSnapshot is deterministic,
  // so the promoted content is bit-identical to what was demoted.
  FKD_ASSIGN_OR_RETURN(Snapshot loaded, LoadSnapshot(entry->spill_path));
  auto model = std::make_shared<ServingModel>();
  model->version = entry->version;
  model->directory = entry->directory;
  model->snapshot = std::make_shared<const Snapshot>(std::move(loaded));
  entry->model = std::move(model);
  entry->resident_bytes = entry->model->snapshot->ResidentBytes();
  accountant_.Charge(entry->version, entry->resident_bytes);
  ++promotions_;
  obs::MetricsRegistry::Default().GetCounter("fkd.store.promotions")
      ->Increment();
  obs::FlightRecorder::Get().Record(obs::FlightEventType::kModelPromote,
                                    entry->version, entry->resident_bytes);
  FKD_LOG(Info) << "model store: promoted version " << entry->version
                << " from " << entry->spill_path;
  TouchLocked(entry);
  // The promotion itself may push the ledger over budget; someone colder
  // pays for it — never the entry being promoted, which the caller is
  // about to hand out.
  EnforceBudgetLocked(entry);
  PublishGaugeLocked();
  return Status::OK();
}

Status VersionedModelStore::Publish(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(version);
  if (entry == nullptr) return Status::NotFound(VersionNotFound(version));
  if (entry->model == nullptr) {
    FKD_RETURN_NOT_OK(PromoteLocked(entry));
  }
  active_ = entry->model;
  TouchLocked(entry);
  ++publishes_;
  obs::MetricsRegistry::Default()
      .GetGauge("fkd.serve.active_version")
      ->Set(static_cast<double>(version));
  obs::FlightRecorder::Get().Record(obs::FlightEventType::kModelPublish,
                                    version, 0);
  FKD_LOG(Info) << "model store: published version " << version;
  return Status::OK();
}

std::shared_ptr<const ServingModel> VersionedModelStore::Active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

Result<std::shared_ptr<const ServingModel>> VersionedModelStore::Get(
    uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(version);
  if (entry == nullptr) return Status::NotFound(VersionNotFound(version));
  if (entry->model == nullptr) {
    FKD_RETURN_NOT_OK(PromoteLocked(entry));
  } else {
    TouchLocked(entry);
  }
  return entry->model;
}

Status VersionedModelStore::Pin(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(version);
  if (entry == nullptr) return Status::NotFound(VersionNotFound(version));
  if (entry->model == nullptr) {
    FKD_RETURN_NOT_OK(PromoteLocked(entry));
  }
  entry->pinned = true;
  TouchLocked(entry);
  return Status::OK();
}

Status VersionedModelStore::Unpin(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(version);
  if (entry == nullptr) return Status::NotFound(VersionNotFound(version));
  entry->pinned = false;
  EnforceBudgetLocked();
  PublishGaugeLocked();
  return Status::OK();
}

Status VersionedModelStore::Retire(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(resident_.begin(), resident_.end(),
                         [version](const Entry& entry) {
                           return entry.version == version;
                         });
  if (it == resident_.end()) {
    return Status::NotFound(VersionNotFound(version));
  }
  if (active_ != nullptr && active_->version == version) {
    return Status::FailedPrecondition(
        "cannot retire the active version; publish a replacement first");
  }
  if (it->model != nullptr) {
    retired_watch_.emplace_back(it->model);
    accountant_.Release(version);
  }
  if (!it->spill_path.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(it->spill_path, ec);  // best-effort cleanup
  }
  resident_.erase(it);
  ++retired_;
  obs::FlightRecorder::Get().Record(obs::FlightEventType::kModelRetire,
                                    version, 0);
  PublishGaugeLocked();
  FKD_LOG(Info) << "model store: retired version " << version
                << " (frees when its last reference drains)";
  return Status::OK();
}

std::vector<uint64_t> VersionedModelStore::ResidentVersions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> versions;
  versions.reserve(resident_.size());
  for (const Entry& entry : resident_) {
    versions.push_back(entry.version);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

ModelStoreStats VersionedModelStore::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ModelStoreStats stats;
  stats.loads = loads_;
  stats.load_failures = load_failures_;
  stats.publishes = publishes_;
  stats.retired = retired_;
  stats.resident = resident_.size();
  stats.active_version = active_ != nullptr ? active_->version : 0;
  for (const auto& watch : retired_watch_) {
    if (!watch.expired()) ++stats.retired_still_alive;
  }
  stats.resident_bytes = accountant_.total();
  stats.budget_bytes = accountant_.budget();
  for (const Entry& entry : resident_) {
    if (entry.model == nullptr) ++stats.demoted;
  }
  stats.demotions = demotions_;
  stats.promotions = promotions_;
  return stats;
}

void VersionedModelStore::PublishGaugeLocked() {
  obs::MetricsRegistry::Default()
      .GetGauge("fkd.store.resident_bytes")
      ->Set(static_cast<double>(accountant_.total()));
}

}  // namespace serve
}  // namespace fkd
