#include "serve/model_store.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace fkd {
namespace serve {

Result<std::shared_ptr<const ServingModel>> VersionedModelStore::Load(
    const std::string& directory) {
  // LoadSnapshot is the PR 3 durable path: the MANIFEST (existence, size,
  // CRC-32C of every artifact) is verified before a byte is parsed, so a
  // torn or bit-rotted snapshot never becomes a version.
  Result<Snapshot> loaded = LoadSnapshot(directory);
  if (!loaded.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++load_failures_;
    return loaded.status();
  }
  auto snapshot =
      std::make_shared<const Snapshot>(std::move(loaded).value());
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterLocked(std::move(snapshot), directory);
}

std::shared_ptr<const ServingModel> VersionedModelStore::Register(
    std::shared_ptr<const Snapshot> snapshot, std::string directory) {
  FKD_CHECK(snapshot != nullptr && snapshot->model != nullptr)
      << "Register needs a loaded snapshot";
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterLocked(std::move(snapshot), std::move(directory));
}

std::shared_ptr<const ServingModel> VersionedModelStore::RegisterLocked(
    std::shared_ptr<const Snapshot> snapshot, std::string directory) {
  auto model = std::make_shared<ServingModel>();
  model->version = next_version_++;
  model->directory = std::move(directory);
  model->snapshot = std::move(snapshot);
  ++loads_;
  resident_.push_back(Entry{model});
  FKD_LOG(Info) << "model store: loaded version " << model->version
                << (model->directory.empty() ? ""
                                             : " from " + model->directory);
  return model;
}

Status VersionedModelStore::Publish(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : resident_) {
    if (entry.model->version != version) continue;
    active_ = entry.model;
    ++publishes_;
    obs::MetricsRegistry::Default()
        .GetGauge("fkd.serve.active_version")
        ->Set(static_cast<double>(version));
    obs::FlightRecorder::Get().Record(obs::FlightEventType::kModelPublish,
                                      version, 0);
    FKD_LOG(Info) << "model store: published version " << version;
    return Status::OK();
  }
  return Status::NotFound(
      StrFormat("version %llu is not resident in the store",
                static_cast<unsigned long long>(version)));
}

std::shared_ptr<const ServingModel> VersionedModelStore::Active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

Result<std::shared_ptr<const ServingModel>> VersionedModelStore::Get(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : resident_) {
    if (entry.model->version == version) return entry.model;
  }
  return Status::NotFound(
      StrFormat("version %llu is not resident in the store",
                static_cast<unsigned long long>(version)));
}

Status VersionedModelStore::Retire(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(resident_.begin(), resident_.end(),
                         [version](const Entry& entry) {
                           return entry.model->version == version;
                         });
  if (it == resident_.end()) {
    return Status::NotFound(
        StrFormat("version %llu is not resident in the store",
                  static_cast<unsigned long long>(version)));
  }
  if (active_ != nullptr && active_->version == version) {
    return Status::FailedPrecondition(
        "cannot retire the active version; publish a replacement first");
  }
  retired_watch_.emplace_back(it->model);
  resident_.erase(it);
  ++retired_;
  obs::FlightRecorder::Get().Record(obs::FlightEventType::kModelRetire,
                                    version, 0);
  FKD_LOG(Info) << "model store: retired version " << version
                << " (frees when its last reference drains)";
  return Status::OK();
}

std::vector<uint64_t> VersionedModelStore::ResidentVersions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> versions;
  versions.reserve(resident_.size());
  for (const Entry& entry : resident_) {
    versions.push_back(entry.model->version);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

ModelStoreStats VersionedModelStore::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ModelStoreStats stats;
  stats.loads = loads_;
  stats.load_failures = load_failures_;
  stats.publishes = publishes_;
  stats.retired = retired_;
  stats.resident = resident_.size();
  stats.active_version = active_ != nullptr ? active_->version : 0;
  for (const auto& watch : retired_watch_) {
    if (!watch.expired()) ++stats.retired_still_alive;
  }
  return stats;
}

}  // namespace serve
}  // namespace fkd
