#include "serve/engine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace fkd {
namespace serve {

namespace {

using obs::FlightEventType;

int64_t SlowTraceUsFromEnvironment() {
  const char* env = std::getenv("FKD_SLOW_TRACE_US");
  if (env == nullptr || env[0] == '\0') return 0;
  return std::atoll(env);
}

}  // namespace

uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

InferenceEngine::InferenceEngine(std::shared_ptr<const Snapshot> snapshot,
                                 EngineOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  FKD_CHECK(snapshot_ != nullptr && snapshot_->model != nullptr)
      << "InferenceEngine needs a loaded snapshot";
  FKD_CHECK_GT(options_.num_workers, 0u);
  FKD_CHECK_GT(options_.max_batch_size, 0u);
  FKD_CHECK_GT(options_.max_queue_depth, 0u);
  slow_trace_us_ = options_.slow_trace_us >= 0 ? options_.slow_trace_us
                                               : SlowTraceUsFromEnvironment();
  // Resolving the recorder here (not lazily on the hot path) also wires the
  // FaultInjector crash hook before the first batch can hit a fault site.
  recorder_ = &obs::FlightRecorder::Get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  requests_ok_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "ok"}});
  requests_rejected_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "rejected"}});
  requests_expired_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "expired"}});
  requests_failed_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "failed"}});
  requests_shed_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "shed"}});
  requests_unavailable_ =
      registry.GetCounter("fkd.serve.requests", {{"result", "unavailable"}});
  deadline_exceeded_total_ = registry.GetCounter("fkd.serve.deadline_exceeded");
  retries_total_ = registry.GetCounter("fkd.serve.retries");
  breaker_open_total_ = registry.GetCounter("fkd.serve.breaker_open");
  batch_size_ = registry.GetHistogram("fkd.serve.batch_size");
  latency_us_ = registry.GetHistogram("fkd.serve.latency_us");
  queue_us_ = registry.GetHistogram("fkd.serve.queue_us");
  batch_form_us_ = registry.GetHistogram("fkd.serve.batch_form_us");
  compute_us_ = registry.GetHistogram("fkd.serve.compute_us");
  // Engines share one labelled gauge (last writer wins across replicas);
  // the Router owns the unlabelled aggregate identity.
  queue_depth_ =
      registry.GetGauge("fkd.serve.queue_depth", {{"scope", "engine"}});
  health_ = registry.GetGauge("fkd.serve.health");
  health_->Set(static_cast<double>(EngineHealth::kHealthy));
}

InferenceEngine::~InferenceEngine() { Stop(); }

Status InferenceEngine::Start() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return Status::FailedPrecondition("engine already stopped");
  if (started_) return Status::FailedPrecondition("engine already started");
  started_ = true;
  // Warm the shared intra-op pool before the first batch: engine workers
  // submit kernel chunks (Gemm, softmax, SpMM) to the same process-wide
  // pool the trainer uses, so a batch is parallel across rows even when a
  // single worker formed it.
  const size_t kernel_threads = ThreadPool::Global().num_threads();
  FKD_LOG(Info) << "inference engine starting: " << options_.num_workers
                << " workers over a " << kernel_threads
                << "-thread intra-op compute pool";
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  recorder_->Record(FlightEventType::kEngineStart, options_.num_workers,
                    options_.version_tag);
  return Status::OK();
}

void InferenceEngine::Stop() {
  std::vector<Pending> orphaned;
  size_t depth_at_stop = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    depth_at_stop = queue_.size();
    PublishHealthLocked();
    if (!started_) {
      // Never-started engine: there is no worker to drain the queue, so
      // fail every pending future instead of leaving callers blocked.
      while (!queue_.empty()) {
        orphaned.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth_.store(0, std::memory_order_relaxed);
      queue_depth_->Set(0.0);
    }
  }
  queue_cv_.notify_all();
  for (auto& pending : orphaned) {
    // These were accepted (counted in submitted_), so they resolve as
    // `unavailable` — not `rejected`, which would double-count them against
    // the submitted == completed+expired+failed+unavailable invariant.
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    requests_unavailable_->Increment();
    recorder_->Record(FlightEventType::kRequestUnavailable,
                      pending.request.request_id, 0);
    pending.promise.set_value(
        Status::Unavailable("engine stopped before serving this request"));
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  recorder_->Record(FlightEventType::kEngineStop, depth_at_stop,
                    options_.version_tag);
}

Result<ClassificationFuture> InferenceEngine::Submit(ArticleRequest request) {
  FKD_RETURN_NOT_OK(
      snapshot_->ValidateIds(request.creator_id, request.subject_ids));
  if (request.request_id == 0) request.request_id = NextRequestId();
  const uint64_t request_id = request.request_id;

  Pending pending;
  pending.submitted_at = Clock::now();
  const int64_t deadline_us = request.deadline_us > 0
                                  ? request.deadline_us
                                  : options_.default_deadline_us;
  pending.deadline = deadline_us > 0
                         ? pending.submitted_at +
                               std::chrono::microseconds(deadline_us)
                         : Clock::time_point::max();
  pending.request = std::move(request);
  ClassificationFuture future = pending.promise.get_future();

  size_t depth_after = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      requests_rejected_->Increment();
      recorder_->Record(FlightEventType::kEngineReject, request_id, 0);
      return Status::Unavailable("engine is stopped");
    }
    // Open breaker: shed immediately instead of queueing work that recent
    // history says will fail. Once the cool-down lapses, move to half-open
    // and let requests through as the probe.
    if (breaker_ == BreakerState::kOpen) {
      if (Clock::now() >= breaker_open_until_) {
        breaker_ = BreakerState::kHalfOpen;
        PublishHealthLocked();
      } else {
        shed_.fetch_add(1, std::memory_order_relaxed);
        requests_shed_->Increment();
        recorder_->Record(FlightEventType::kEngineShed, request_id, 0);
        return Status::Unavailable("circuit breaker open; shedding load");
      }
    }
    if (queue_.size() >= options_.max_queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      requests_rejected_->Increment();
      recorder_->Record(FlightEventType::kEngineReject, request_id,
                        queue_.size());
      return Status::Unavailable(
          StrFormat("serve queue full (depth %zu)", queue_.size()));
    }
    queue_.push_back(std::move(pending));
    depth_after = queue_.size();
    depth_.store(depth_after, std::memory_order_relaxed);
    queue_depth_->Set(static_cast<double>(depth_after));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  recorder_->Record(FlightEventType::kEngineEnqueue, request_id, depth_after);
  queue_cv_.notify_one();
  return future;
}

void InferenceEngine::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Micro-batch formation: hold the first request at most
      // max_batch_delay_us while stragglers accumulate. During shutdown the
      // delay is waived so the drain finishes promptly.
      if (queue_.size() < options_.max_batch_size && !stopping_ &&
          options_.max_batch_delay_us > 0) {
        const auto batch_deadline =
            Clock::now() + std::chrono::microseconds(options_.max_batch_delay_us);
        queue_cv_.wait_until(lock, batch_deadline, [this] {
          return stopping_ || queue_.size() >= options_.max_batch_size;
        });
      }
      const size_t take = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth_.store(queue_.size(), std::memory_order_relaxed);
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    // Leftover work may remain; let a sibling (or the next loop turn) have
    // it without waiting for another Submit's notify.
    queue_cv_.notify_one();
    const Clock::time_point dequeued = Clock::now();
    for (auto& pending : batch) pending.dequeued_at = dequeued;
    ProcessBatch(std::move(batch));
  }
}

void InferenceEngine::FailExpired(std::vector<Pending>* live,
                                  Clock::time_point now) {
  std::vector<Pending> kept;
  kept.reserve(live->size());
  for (auto& pending : *live) {
    if (pending.deadline < now) {
      const double waited_us = std::chrono::duration<double, std::micro>(
                                   now - pending.submitted_at)
                                   .count();
      expired_.fetch_add(1, std::memory_order_relaxed);
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      requests_expired_->Increment();
      deadline_exceeded_total_->Increment();
      recorder_->Record(FlightEventType::kRequestDeadline,
                        pending.request.request_id,
                        static_cast<uint64_t>(waited_us));
      FKD_LOG_EVERY_N(Warning, 64)
          << "request " << pending.request.request_id << " expired after "
          << StrFormat("%.0f", waited_us)
          << " us in queue (rate-limited: 1 in 64 logged)";
      pending.promise.set_value(Status::DeadlineExceeded(StrFormat(
          "request expired after %.0f us in queue", waited_us)));
    } else {
      kept.push_back(std::move(pending));
    }
  }
  *live = std::move(kept);
}

void InferenceEngine::ProcessBatch(std::vector<Pending> batch) {
  // Fail lapsed deadlines instead of serving them late.
  std::vector<Pending> live = std::move(batch);
  FailExpired(&live, Clock::now());
  if (live.empty()) return;

  std::vector<std::string> texts;
  std::vector<int32_t> creator_ids;
  std::vector<std::vector<int32_t>> subject_ids;
  texts.reserve(live.size());
  creator_ids.reserve(live.size());
  subject_ids.reserve(live.size());
  for (const auto& pending : live) {
    texts.push_back(pending.request.text);
    creator_ids.push_back(pending.request.creator_id);
    subject_ids.push_back(pending.request.subject_ids);
  }

  // Run the forward, retrying transient failures (site "serve.batch" lets
  // tests inject them deterministically) with exponential backoff. A fatal
  // error or exhausted retries fails every future in the batch.
  recorder_->Record(FlightEventType::kBatchStart, live.size(),
                    options_.version_tag);
  Tensor logits;
  Clock::time_point forward_start;
  for (size_t attempt = 0;; ++attempt) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    Status batch_status = FaultInjector::Global().Inject("serve.batch");
    if (batch_status.ok() && !options_.fault_site.empty()) {
      batch_status = FaultInjector::Global().Inject(options_.fault_site);
    }
    if (batch_status.ok()) {
      forward_start = Clock::now();
      logits = snapshot_->Score(texts, creator_ids, subject_ids);
      break;
    }
    if (batch_status.IsRetryable() && attempt < options_.max_batch_retries) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      retries_total_->Increment();
      recorder_->Record(FlightEventType::kBatchRetry, live.size(), attempt + 1);
      FKD_LOG_EVERY_N(Warning, 16)
          << "serve batch of " << live.size() << " retrying (attempt "
          << attempt + 1 << "): " << batch_status.message()
          << " (rate-limited: 1 in 16 logged)";
      if (options_.retry_backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            options_.retry_backoff_us << attempt));
      }
      // Deadlines may have lapsed during the backoff; do not retry those.
      FailExpired(&live, Clock::now());
      if (live.empty()) {
        RecordBatchOutcome(false);
        return;
      }
      continue;
    }
    FKD_LOG_EVERY_N(Warning, 16)
        << "serve batch of " << live.size() << " failed after " << attempt
        << " retries: " << batch_status.message()
        << " (rate-limited: 1 in 16 logged)";
    recorder_->Record(FlightEventType::kBatchFailed, live.size(),
                      options_.version_tag);
    // Record the outcome BEFORE fulfilling the futures: a caller that sees
    // its future fail must also see the breaker's updated state.
    RecordBatchOutcome(false);
    for (auto& pending : live) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      requests_failed_->Increment();
      recorder_->Record(FlightEventType::kRequestFailed,
                        pending.request.request_id, 0);
      pending.promise.set_value(batch_status);
    }
    return;
  }
  RecordBatchOutcome(true);

  const Tensor probabilities = SoftmaxRows(logits);
  const Clock::time_point compute_done = Clock::now();
  const double compute_us = std::chrono::duration<double, std::micro>(
                                compute_done - forward_start)
                                .count();
  batch_size_->Observe(static_cast<double>(live.size()));
  compute_us_->Observe(compute_us);
  recorder_->Record(FlightEventType::kBatchEnd, live.size(),
                    static_cast<uint64_t>(compute_us));

  obs::Tracer& tracer = obs::Tracer::Get();
  const bool trace_slow = tracer.enabled();
  for (size_t r = 0; r < live.size(); ++r) {
    Classification result;
    result.probabilities.assign(probabilities.Row(r),
                                probabilities.Row(r) + probabilities.cols());
    result.class_id = 0;
    for (size_t c = 1; c < probabilities.cols(); ++c) {
      if (probabilities.At(r, c) > probabilities.At(r, result.class_id)) {
        result.class_id = static_cast<int32_t>(c);
      }
    }
    if (static_cast<size_t>(result.class_id) < snapshot_->class_names.size()) {
      result.class_name = snapshot_->class_names[result.class_id];
    }
    result.batch_size = live.size();
    result.model_version = options_.version_tag;
    result.request_id = live[r].request.request_id;
    result.cache_us = live[r].request.cache_us;
    result.queue_us = std::chrono::duration<double, std::micro>(
                          live[r].dequeued_at - live[r].submitted_at)
                          .count();
    result.batch_us = std::chrono::duration<double, std::micro>(
                          forward_start - live[r].dequeued_at)
                          .count();
    result.compute_us = compute_us;
    result.total_us = std::chrono::duration<double, std::micro>(
                          compute_done - live[r].submitted_at)
                          .count();
    queue_us_->Observe(result.queue_us);
    batch_form_us_->Observe(result.batch_us);
    latency_us_->Observe(result.total_us);
    completed_.fetch_add(1, std::memory_order_relaxed);
    requests_ok_->Increment();
    recorder_->Record(FlightEventType::kRequestComplete, result.request_id,
                      static_cast<uint64_t>(result.total_us));
    if (trace_slow &&
        result.total_us >= static_cast<double>(slow_trace_us_)) {
      TraceSlowRequest(result);
    }
    if (options_.completion_hook) {
      options_.completion_hook(live[r].request, result);
    }
    live[r].promise.set_value(std::move(result));
  }
}

void InferenceEngine::TraceSlowRequest(const Classification& result) const {
  // Reconstruct the lifecycle as chrome-trace spans from the breakdown:
  // one anchor NowMicros() read at fulfilment, stages laid out backwards
  // from it. The parent serve/request span plus one child per stage, all
  // correlated by args.request_id.
  obs::Tracer& tracer = obs::Tracer::Get();
  const int64_t done_us = tracer.NowMicros();
  const int64_t compute_start = done_us - static_cast<int64_t>(result.compute_us);
  const int64_t batch_start =
      compute_start - static_cast<int64_t>(result.batch_us);
  const int64_t queue_start = batch_start - static_cast<int64_t>(result.queue_us);
  const uint64_t thread_id = static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const auto span = [&](const char* name, int64_t start, int64_t duration,
                        int32_t depth) {
    obs::TraceEvent event;
    event.name = name;
    event.thread_id = thread_id;
    event.start_us = start;
    event.duration_us = duration;
    event.depth = depth;
    event.id = result.request_id;
    tracer.Record(event);
  };
  span("serve/request", queue_start, done_us - queue_start, 0);
  span("serve/queue", queue_start, batch_start - queue_start, 1);
  span("serve/batch_form", batch_start, compute_start - batch_start, 1);
  span("serve/compute", compute_start, done_us - compute_start, 1);
}

void InferenceEngine::RecordBatchOutcome(bool ok) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (breaker_ == BreakerState::kHalfOpen) {
    // The probe batch decides: recovery closes the breaker with a clean
    // window, another failure re-opens it for a fresh cool-down.
    if (ok) {
      breaker_ = BreakerState::kClosed;
      window_.clear();
      recorder_->Record(FlightEventType::kBreakerClose, 0, 0);
    } else {
      breaker_ = BreakerState::kOpen;
      breaker_open_until_ =
          Clock::now() + std::chrono::microseconds(options_.breaker_open_us);
      breaker_trips_.fetch_add(1, std::memory_order_relaxed);
      breaker_open_total_->Increment();
      recorder_->Record(FlightEventType::kBreakerOpen, 1, 0);
    }
    PublishHealthLocked();
    return;
  }
  if (breaker_ != BreakerState::kClosed) return;
  window_.push_back(ok);
  while (window_.size() > options_.breaker_window) window_.pop_front();
  if (window_.size() < options_.breaker_window) return;
  size_t failures = 0;
  for (bool outcome : window_) failures += outcome ? 0 : 1;
  const float failure_rate =
      static_cast<float>(failures) / static_cast<float>(window_.size());
  if (failure_rate >= options_.breaker_failure_threshold) {
    breaker_ = BreakerState::kOpen;
    breaker_open_until_ =
        Clock::now() + std::chrono::microseconds(options_.breaker_open_us);
    window_.clear();
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    breaker_open_total_->Increment();
    recorder_->Record(FlightEventType::kBreakerOpen, failures, 0);
    FKD_LOG_EVERY_N(Warning, 8)
        << "serve circuit breaker opened (" << failures << "/"
        << options_.breaker_window << " recent batches failed); shedding for "
        << options_.breaker_open_us
        << " us (rate-limited: 1 in 8 logged)";
    PublishHealthLocked();
  }
}

EngineHealth InferenceEngine::HealthLocked() const {
  if (stopping_) return EngineHealth::kDraining;
  if (breaker_ != BreakerState::kClosed) return EngineHealth::kDegraded;
  return EngineHealth::kHealthy;
}

void InferenceEngine::PublishHealthLocked() {
  health_->Set(static_cast<double>(HealthLocked()));
}

EngineHealth InferenceEngine::Health() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return HealthLocked();
}

EngineStats InferenceEngine::Stats() const {
  EngineStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.unavailable = unavailable_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mutex_);
  stats.queue_depth = queue_.size();
  return stats;
}

}  // namespace serve
}  // namespace fkd
