#include "common/block_codec.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {

namespace {

// ---- LZ-style codec ----------------------------------------------------
//
// Token stream:
//   control c < 0x80  → literal run: the next (c + 1) bytes are copied
//                       verbatim (runs of 1..128);
//   control c >= 0x80 → match: length (c & 0x7f) + kMinMatch, followed by
//                       a little-endian u16 distance in [1, 65535] back
//                       into the already-decoded output.
//
// The compressor is a greedy single-pass hash matcher (last position per
// 4-byte prefix hash), which is deterministic by construction: no
// randomised probing, no thread-dependent state.

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 0x7f + kMinMatch;   // 131
constexpr size_t kMaxLiteralRun = 0x80;          // 128
constexpr size_t kMaxDistance = 65535;
constexpr size_t kHashBits = 15;

inline uint32_t HashPrefix(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(const uint8_t* from, size_t count, std::string* out) {
  while (count > 0) {
    const size_t run = count < kMaxLiteralRun ? count : kMaxLiteralRun;
    out->push_back(static_cast<char>(run - 1));
    out->append(reinterpret_cast<const char*>(from), run);
    from += run;
    count -= run;
  }
}

class LzCodec : public BlockCodec {
 public:
  BlockCodecId id() const override { return BlockCodecId::kLz; }
  std::string name() const override { return "lz"; }

  void Compress(std::string_view input, std::string* out) const override {
    const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
    const size_t n = input.size();
    if (n < kMinMatch + 1) {
      if (n > 0) FlushLiterals(data, n, out);
      return;
    }
    // Last seen position of each prefix hash; n marks "never seen".
    std::vector<size_t> table(size_t{1} << kHashBits, n);
    size_t pos = 0;
    size_t literal_start = 0;
    const size_t last_hashable = n - kMinMatch;
    while (pos <= last_hashable) {
      const uint32_t hash = HashPrefix(data + pos);
      const size_t candidate = table[hash];
      table[hash] = pos;
      if (candidate < pos && pos - candidate <= kMaxDistance &&
          std::memcmp(data + candidate, data + pos, kMinMatch) == 0) {
        size_t length = kMinMatch;
        const size_t limit =
            (n - pos) < kMaxMatch ? (n - pos) : kMaxMatch;
        while (length < limit &&
               data[candidate + length] == data[pos + length]) {
          ++length;
        }
        FlushLiterals(data + literal_start, pos - literal_start, out);
        out->push_back(static_cast<char>(0x80 | (length - kMinMatch)));
        const uint16_t distance = static_cast<uint16_t>(pos - candidate);
        out->push_back(static_cast<char>(distance & 0xff));
        out->push_back(static_cast<char>(distance >> 8));
        pos += length;
        literal_start = pos;
      } else {
        ++pos;
      }
    }
    FlushLiterals(data + literal_start, n - literal_start, out);
  }

  Status Decompress(std::string_view input, size_t expected_size,
                    std::string* out) const override {
    const size_t base = out->size();
    const uint8_t* in = reinterpret_cast<const uint8_t*>(input.data());
    size_t pos = 0;
    const size_t n = input.size();
    while (pos < n) {
      const uint8_t control = in[pos++];
      if (control < 0x80) {
        const size_t run = static_cast<size_t>(control) + 1;
        if (pos + run > n) {
          return Status::Corruption("lz block: literal run past input end");
        }
        if (out->size() - base + run > expected_size) {
          return Status::Corruption("lz block: output overruns declared size");
        }
        out->append(reinterpret_cast<const char*>(in + pos), run);
        pos += run;
      } else {
        if (pos + 2 > n) {
          return Status::Corruption("lz block: truncated match token");
        }
        const size_t length = static_cast<size_t>(control & 0x7f) + kMinMatch;
        const size_t distance =
            static_cast<size_t>(in[pos]) | (static_cast<size_t>(in[pos + 1]) << 8);
        pos += 2;
        const size_t decoded = out->size() - base;
        if (distance == 0 || distance > decoded) {
          return Status::Corruption("lz block: match reaches before the block");
        }
        if (decoded + length > expected_size) {
          return Status::Corruption("lz block: output overruns declared size");
        }
        // Byte-by-byte: overlapping matches (distance < length) replicate
        // the just-written bytes, RLE-style.
        for (size_t i = 0; i < length; ++i) {
          out->push_back((*out)[out->size() - distance]);
        }
      }
    }
    if (out->size() - base != expected_size) {
      return Status::Corruption(
          StrFormat("lz block: decoded %zu bytes, expected %zu",
                    out->size() - base, expected_size));
    }
    return Status::OK();
  }
};

class RawCodec : public BlockCodec {
 public:
  BlockCodecId id() const override { return BlockCodecId::kRaw; }
  std::string name() const override { return "raw"; }

  void Compress(std::string_view input, std::string* out) const override {
    out->append(input);
  }

  Status Decompress(std::string_view input, size_t expected_size,
                    std::string* out) const override {
    if (input.size() != expected_size) {
      return Status::Corruption(
          StrFormat("raw block: %zu stored bytes, expected %zu", input.size(),
                    expected_size));
    }
    out->append(input);
    return Status::OK();
  }
};

// ---- FKDZ framing ------------------------------------------------------

constexpr uint32_t kFkdzMagic = 0x5A444B46;  // "FKDZ" little-endian
constexpr uint32_t kFkdzVersion = 1;
constexpr uint8_t kBlockCompressed = 0x01;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view data, size_t* pos, T* value) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(value, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

const BlockCodec* GetBlockCodec(BlockCodecId id) {
  static const RawCodec* raw = new RawCodec;
  static const LzCodec* lz = new LzCodec;
  switch (id) {
    case BlockCodecId::kRaw:
      return raw;
    case BlockCodecId::kLz:
      return lz;
  }
  return nullptr;
}

Result<BlockCodecId> BlockCodecIdFromName(const std::string& name) {
  if (name == "raw") return BlockCodecId::kRaw;
  if (name == "lz") return BlockCodecId::kLz;
  return Status::Corruption("unknown block codec '" + name + "'");
}

Status WriteCompressedFile(const std::string& path, std::string_view data,
                           BlockCodecId codec_id, size_t block_bytes) {
  const BlockCodec* codec = GetBlockCodec(codec_id);
  FKD_CHECK(codec != nullptr) << "unregistered codec id";
  FKD_CHECK_GT(block_bytes, 0u);
  const size_t num_blocks = (data.size() + block_bytes - 1) / block_bytes;

  FKD_ASSIGN_OR_RETURN(FileWriter out, FileWriter::Open(path));
  std::string header;
  AppendPod(&header, kFkdzMagic);
  AppendPod(&header, kFkdzVersion);
  AppendPod(&header, static_cast<uint32_t>(codec_id));
  AppendPod(&header, static_cast<uint32_t>(block_bytes));
  AppendPod(&header, static_cast<uint64_t>(data.size()));
  AppendPod(&header, static_cast<uint32_t>(num_blocks));
  FKD_RETURN_NOT_OK(out.Append(header));

  std::string compressed;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t offset = b * block_bytes;
    const size_t raw_len =
        (data.size() - offset) < block_bytes ? (data.size() - offset)
                                             : block_bytes;
    const std::string_view raw = data.substr(offset, raw_len);
    compressed.clear();
    codec->Compress(raw, &compressed);
    // Incompressible block (random floats, already-compressed text): store
    // it raw so the cold tier never inflates data.
    const bool use_compressed = compressed.size() < raw.size();
    const std::string_view stored =
        use_compressed ? std::string_view(compressed) : raw;

    std::string block_header;
    AppendPod(&block_header, static_cast<uint32_t>(raw_len));
    AppendPod(&block_header, static_cast<uint32_t>(stored.size()));
    AppendPod(&block_header,
              static_cast<uint8_t>(use_compressed ? kBlockCompressed : 0));
    AppendPod(&block_header, Crc32c(stored));
    FKD_RETURN_NOT_OK(out.Append(block_header));
    FKD_RETURN_NOT_OK(out.Append(stored));
  }
  return out.Close();
}

Result<std::string> ReadCompressedFile(const std::string& path) {
  FKD_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  size_t pos = 0;
  uint32_t magic = 0, version = 0, codec_raw = 0, block_bytes = 0;
  uint64_t raw_size = 0;
  uint32_t num_blocks = 0;
  if (!ReadPod(bytes, &pos, &magic) || magic != kFkdzMagic) {
    return Status::Corruption("bad FKDZ magic in " + path);
  }
  if (!ReadPod(bytes, &pos, &version) || version != kFkdzVersion) {
    return Status::Corruption(
        StrFormat("unsupported FKDZ version %u in %s", version, path.c_str()));
  }
  if (!ReadPod(bytes, &pos, &codec_raw) || !ReadPod(bytes, &pos, &block_bytes) ||
      !ReadPod(bytes, &pos, &raw_size) || !ReadPod(bytes, &pos, &num_blocks)) {
    return Status::Corruption("truncated FKDZ header in " + path);
  }
  const BlockCodec* codec =
      GetBlockCodec(static_cast<BlockCodecId>(codec_raw));
  if (codec == nullptr) {
    return Status::Corruption(
        StrFormat("unknown FKDZ codec id %u in %s", codec_raw, path.c_str()));
  }
  if (block_bytes == 0) {
    return Status::Corruption("FKDZ block size 0 in " + path);
  }
  const uint64_t expected_blocks =
      (raw_size + block_bytes - 1) / block_bytes;
  if (num_blocks != expected_blocks) {
    return Status::Corruption(
        StrFormat("FKDZ block count %u does not cover %llu bytes in %s",
                  num_blocks, static_cast<unsigned long long>(raw_size),
                  path.c_str()));
  }

  std::string out;
  out.reserve(raw_size);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    uint32_t raw_len = 0, stored_len = 0, crc = 0;
    uint8_t flags = 0;
    if (!ReadPod(bytes, &pos, &raw_len) || !ReadPod(bytes, &pos, &stored_len) ||
        !ReadPod(bytes, &pos, &flags) || !ReadPod(bytes, &pos, &crc)) {
      return Status::Corruption(
          StrFormat("truncated FKDZ block %u header in %s", b, path.c_str()));
    }
    // The CRC covers the stored bytes, not this header byte — reject any
    // undefined flag bit instead of silently decoding around it.
    if (flags & ~kBlockCompressed) {
      return Status::Corruption(
          StrFormat("FKDZ block %u has unknown flags 0x%02x in %s", b, flags,
                    path.c_str()));
    }
    if (pos + stored_len > bytes.size()) {
      return Status::Corruption(
          StrFormat("truncated FKDZ block %u payload in %s", b, path.c_str()));
    }
    const std::string_view stored(bytes.data() + pos, stored_len);
    pos += stored_len;
    // The per-block CRC gate: a flipped byte is detected here, before any
    // codec parses the block.
    if (Crc32c(stored) != crc) {
      return Status::Corruption(
          StrFormat("FKDZ block %u CRC mismatch in %s", b, path.c_str()));
    }
    if (flags & kBlockCompressed) {
      FKD_RETURN_NOT_OK(codec->Decompress(stored, raw_len, &out));
    } else {
      if (stored_len != raw_len) {
        return Status::Corruption(
            StrFormat("FKDZ stored block %u length mismatch in %s", b,
                      path.c_str()));
      }
      out.append(stored);
    }
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes after last FKDZ block in " +
                              path);
  }
  if (out.size() != raw_size) {
    return Status::Corruption(
        StrFormat("FKDZ decoded %zu bytes, header declared %llu in %s",
                  out.size(), static_cast<unsigned long long>(raw_size),
                  path.c_str()));
  }
  return out;
}

}  // namespace fkd
