#ifndef FKD_COMMON_MMAP_FILE_H_
#define FKD_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fkd {

/// Read-only memory-mapped view of a whole file — the access path of the
/// on-disk storage tier.
///
/// A demoted model version's bytes stay on disk; promotion parses them
/// straight out of the kernel page cache through this mapping instead of
/// double-buffering the file into a heap string first. Pages are faulted
/// in on access and can be reclaimed by the kernel under memory pressure,
/// which is exactly the behaviour a budget-capped box wants from its cold
/// tier.
///
/// The mapping is private and read-only; the view stays valid for the
/// lifetime of the object. Move-only (the destructor unmaps).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. IoError when the file cannot be opened,
  /// stat'ed, or mapped. An empty file maps to a valid zero-length view.
  static Result<MappedFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }
  const std::string& path() const { return path_; }
  bool is_open() const { return data_ != nullptr || mapped_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  ///< true once Open succeeded (even zero-length)
  std::string path_;
};

}  // namespace fkd

#endif  // FKD_COMMON_MMAP_FILE_H_
