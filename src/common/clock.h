#ifndef FKD_COMMON_CLOCK_H_
#define FKD_COMMON_CLOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace fkd {

/// Time source abstraction so retry/backoff/deadline logic is testable
/// without real sleeps.
///
/// Two timescales, deliberately separate:
///  - NowUs()  — monotonic (steady_clock) microseconds; the only clock
///    allowed in timeout/backoff arithmetic, immune to NTP steps.
///  - WallUs() — wall-clock (system_clock) microseconds since the Unix
///    epoch; the clock the FKDN deadline-propagation contract uses so a
///    client-stamped absolute deadline means the same instant on the
///    server (same box or NTP-disciplined fleet).
///
/// Production code uses Clock::Real(); tests inject a FakeClock and drive
/// time by hand — a "sleep" then completes instantly and deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds (arbitrary epoch; differences only).
  virtual int64_t NowUs() = 0;

  /// Wall-clock microseconds since the Unix epoch.
  virtual int64_t WallUs() = 0;

  /// Blocks the caller for `us` microseconds (no-op when us <= 0).
  virtual void SleepUs(int64_t us) = 0;

  /// Process-wide real clock (steady_clock / system_clock / sleep_for).
  static Clock* Real();
};

/// Deterministic manual-advance clock for unit tests. SleepUs() does not
/// block: it advances the fake time and returns, recording the request so
/// tests can assert exactly how long a backoff loop *would* have slept.
/// Thread-safe; a sleeper blocked in SleepUs on one thread is released by
/// Advance() from another (time only moves when a test moves it).
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t now_us = 0, int64_t wall_us = 0)
      : now_us_(now_us), wall_us_(wall_us) {}

  int64_t NowUs() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_us_;
  }
  int64_t WallUs() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return wall_us_;
  }

  /// Advances both timescales and returns immediately — the test, not the
  /// scheduler, decides when time passes.
  void SleepUs(int64_t us) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (us <= 0) return;
    total_slept_us_ += us;
    ++sleep_calls_;
    now_us_ += us;
    wall_us_ += us;
  }

  /// Moves both clocks forward by `us`.
  void Advance(int64_t us) {
    std::lock_guard<std::mutex> lock(mutex_);
    now_us_ += us;
    wall_us_ += us;
  }

  /// Microseconds of sleep requested so far (what real time would have
  /// cost) and the number of SleepUs calls.
  int64_t total_slept_us() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_slept_us_;
  }
  int64_t sleep_calls() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sleep_calls_;
  }

 private:
  mutable std::mutex mutex_;
  int64_t now_us_;
  int64_t wall_us_;
  int64_t total_slept_us_ = 0;
  int64_t sleep_calls_ = 0;
};

}  // namespace fkd

#endif  // FKD_COMMON_CLOCK_H_
