#ifndef FKD_COMMON_STATUS_H_
#define FKD_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace fkd {

/// Machine-readable category of a `Status`.
///
/// The set is deliberately small (Arrow/RocksDB idiom): callers branch on
/// ok() / code(), humans read message().
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,  ///< Caller passed a value violating the contract.
  kNotFound = 2,         ///< Lookup failed (file, key, node id, ...).
  kOutOfRange = 3,       ///< Index or numeric value outside the valid range.
  kFailedPrecondition = 4,  ///< Object not in the required state.
  kAlreadyExists = 5,    ///< Insertion collided with an existing entry.
  kIoError = 6,          ///< Filesystem / stream failure.
  kCorruption = 7,       ///< Persisted data failed validation while loading.
  kUnimplemented = 8,    ///< Feature intentionally not available.
  kInternal = 9,         ///< Invariant violation that is a library bug.
  kUnavailable = 10,     ///< Transient overload/shutdown; retrying may work.
  kDeadlineExceeded = 11,  ///< Operation missed its caller-set deadline.
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a value to return.
///
/// `Status` is cheap to copy in the OK case (empty message string) and is
/// used on every fallible public API in this library instead of exceptions.
/// Typical use:
///
///   Status s = LoadDataset(path, &dataset);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for failures a caller may sensibly retry: transient overload or
  /// shutdown (kUnavailable) and filesystem/stream hiccups (kIoError).
  /// Everything else — bad input, corruption, contract violations — will
  /// fail identically on retry. The serving engine's batch-retry path and
  /// any backoff loop should gate on this instead of matching codes.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable || code_ == StatusCode::kIoError;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Accessing the value of a
/// failed result aborts via FKD_CHECK semantics (it is a programmer error;
/// callers must test ok() first).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return std::move(v);`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  /// The error (OK iff ok()).
  const Status& status() const { return status_; }

  /// Value accessors; valid only when ok().
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    return ok() ? std::move(value_).value() : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK Status to the caller: `FKD_RETURN_NOT_OK(DoThing());`
#define FKD_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::fkd::Status _fkd_status = (expr);     \
    if (!_fkd_status.ok()) return _fkd_status; \
  } while (false)

/// Unwraps a Result<T> into `lhs`, propagating the error on failure:
///   FKD_ASSIGN_OR_RETURN(auto graph, BuildGraph(dataset));
#define FKD_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  FKD_ASSIGN_OR_RETURN_IMPL(                             \
      FKD_STATUS_CONCAT(_fkd_result_, __LINE__), lhs, rexpr)

#define FKD_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

#define FKD_STATUS_CONCAT(a, b) FKD_STATUS_CONCAT_IMPL(a, b)
#define FKD_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace fkd

#endif  // FKD_COMMON_STATUS_H_
