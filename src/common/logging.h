#ifndef FKD_COMMON_LOGGING_H_
#define FKD_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fkd {

/// Severity levels for the lightweight logger. kFatal aborts the process
/// after emitting the message.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Minimum severity that is actually emitted; configurable at runtime and
/// initialised once from the FKD_LOG_LEVEL environment variable (a name
/// like "debug"/"warning" or a digit 0-4) before the first message.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Parses a level name ("debug", "info", "warn"/"warning", "error",
/// "fatal", case-insensitive) or digit; false on unrecognised input.
bool ParseLogLevel(const char* text, LogLevel* level);

/// Stream-style log message. Emits on destruction; aborts for kFatal.
/// Each line carries an ISO-8601 UTC timestamp + severity prefix and is
/// written under a process-wide mutex, so concurrent threads never
/// interleave within a line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Sink that swallows everything (for disabled debug logging).
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

/// True on the 1st, (n+1)th, (2n+1)th... call against `counter` — the
/// sampling gate behind FKD_LOG_EVERY_N. One relaxed fetch_add per call.
inline bool ShouldLogEveryN(std::atomic<uint64_t>* counter, uint64_t n) {
  if (n <= 1) return true;
  return counter->fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal

/// Runtime-configurable global log verbosity.
inline void SetLogLevel(LogLevel level) { internal::SetMinLogLevel(level); }

#define FKD_LOG(level)                                                      \
  ::fkd::internal::LogMessage(::fkd::LogLevel::k##level, __FILE__, __LINE__)

/// Rate-limited logging for hot paths: emits the 1st, (n+1)th, (2n+1)th...
/// occurrence *at this call site* and swallows the rest, so a retry storm
/// or breaker flap cannot flood the sink. The per-site counter lives in a
/// lambda-local static, making this a single statement usable anywhere
/// FKD_LOG is. Emitted lines keep the ISO-8601 + mutex contract of FKD_LOG.
#define FKD_LOG_EVERY_N(level, n)                                            \
  if (::fkd::internal::ShouldLogEveryN(                                      \
          [] {                                                               \
            static ::std::atomic<uint64_t> fkd_log_site_counter{0};          \
            return &fkd_log_site_counter;                                    \
          }(),                                                               \
          (n)))                                                              \
  FKD_LOG(level)

/// Invariant check: aborts with a diagnostic when `condition` is false.
/// Use for programmer errors only; recoverable failures return Status.
#define FKD_CHECK(condition)                                              \
  if (!(condition))                                                       \
  ::fkd::internal::LogMessage(::fkd::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #condition " "

#define FKD_CHECK_OK(expr)                                                 \
  do {                                                                     \
    ::fkd::Status _fkd_check_status = (expr);                              \
    FKD_CHECK(_fkd_check_status.ok()) << _fkd_check_status.ToString();     \
  } while (false)

#define FKD_CHECK_EQ(a, b) FKD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define FKD_CHECK_NE(a, b) FKD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define FKD_CHECK_LT(a, b) FKD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define FKD_CHECK_LE(a, b) FKD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define FKD_CHECK_GT(a, b) FKD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define FKD_CHECK_GE(a, b) FKD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define FKD_DCHECK(condition) FKD_CHECK(condition)
#else
#define FKD_DCHECK(condition) \
  while (false) ::fkd::internal::NullLog()
#endif

}  // namespace fkd

#endif  // FKD_COMMON_LOGGING_H_
