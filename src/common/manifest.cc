#include "common/manifest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/crc32c.h"
#include "common/file_io.h"
#include "common/string_util.h"

namespace fkd {

namespace {

constexpr const char* kHeader = "fkd-manifest v1";

std::string ManifestPath(const std::string& directory) {
  return (std::filesystem::path(directory) / kManifestFileName).string();
}

}  // namespace

Result<uint32_t> Crc32cOfFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  uint32_t crc = 0;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    crc = Crc32cExtend(crc, buffer, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return crc;
}

Status WriteManifest(const std::string& directory,
                     const std::vector<std::string>& files) {
  const std::filesystem::path dir(directory);
  std::ostringstream body;
  body << kHeader << '\n';
  for (const std::string& file : files) {
    const std::string path = (dir / file).string();
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::IoError("cannot stat " + path + ": " + ec.message());
    }
    FKD_ASSIGN_OR_RETURN(const uint32_t crc, Crc32cOfFile(path));
    body << size << ' ' << StrFormat("%08x", crc) << ' ' << file << '\n';
  }
  return WriteStringToFile(ManifestPath(directory), body.str());
}

Result<std::vector<ManifestEntry>> ReadManifest(const std::string& directory) {
  const std::string path = ManifestPath(directory);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("no MANIFEST in " + directory);
  }
  FKD_ASSIGN_OR_RETURN(const std::string contents, ReadFileToString(path));

  std::istringstream in(contents);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::Corruption(path + ": bad manifest header '" + line + "'");
  }
  std::vector<ManifestEntry> entries;
  std::set<std::string> seen;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, ' ');
    if (fields.size() != 3 || fields[2].empty()) {
      return Status::Corruption(StrFormat(
          "%s:%zu: expected '<size> <crc> <name>'", path.c_str(), line_number));
    }
    ManifestEntry entry;
    if (!ParseUint64(fields[0], &entry.size)) {
      return Status::Corruption(StrFormat("%s:%zu: bad size '%s'", path.c_str(),
                                          line_number, fields[0].c_str()));
    }
    uint64_t crc = 0;
    if (fields[1].size() != 8 ||
        std::sscanf(fields[1].c_str(), "%8lx", &crc) != 1) {
      return Status::Corruption(StrFormat("%s:%zu: bad crc '%s'", path.c_str(),
                                          line_number, fields[1].c_str()));
    }
    entry.crc32c = static_cast<uint32_t>(crc);
    entry.file = fields[2];
    if (entry.file.find('/') != std::string::npos || entry.file == "..") {
      return Status::Corruption(StrFormat("%s:%zu: bad file name '%s'",
                                          path.c_str(), line_number,
                                          entry.file.c_str()));
    }
    if (!seen.insert(entry.file).second) {
      return Status::Corruption(StrFormat("%s:%zu: duplicate entry '%s'",
                                          path.c_str(), line_number,
                                          entry.file.c_str()));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status VerifyManifest(const std::string& directory) {
  FKD_ASSIGN_OR_RETURN(const std::vector<ManifestEntry> entries,
                       ReadManifest(directory));
  const std::filesystem::path dir(directory);
  for (const ManifestEntry& entry : entries) {
    const std::string path = (dir / entry.file).string();
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::Corruption("manifest file missing or unreadable: " +
                                path);
    }
    if (size != entry.size) {
      return Status::Corruption(
          StrFormat("%s: size %llu does not match manifest (%llu)",
                    path.c_str(), static_cast<unsigned long long>(size),
                    static_cast<unsigned long long>(entry.size)));
    }
    FKD_ASSIGN_OR_RETURN(const uint32_t crc, Crc32cOfFile(path));
    if (crc != entry.crc32c) {
      return Status::Corruption(
          StrFormat("%s: crc32c %08x does not match manifest (%08x)",
                    path.c_str(), crc, entry.crc32c));
    }
  }
  return Status::OK();
}

}  // namespace fkd
