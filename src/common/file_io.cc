#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"

namespace fkd {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Full write with EINTR/partial-write handling.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write failed:", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string ParentOf(const std::string& path) {
  const std::string parent = std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

}  // namespace

FileWriter::~FileWriter() {
  if (fd_ >= 0) ::close(fd_);  // abandoned: close without durability
}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
  }
  return *this;
}

Result<FileWriter> FileWriter::Open(const std::string& path) {
  if (FaultInjector::Global().Hit("io.open") != FaultAction::kNone) {
    return Status::IoError("injected fault at io.open: " + path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot open for writing:", path);
  FileWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  return writer;
}

Status FileWriter::Append(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed: " + path_);
  const FaultAction action = FaultInjector::Global().Hit("io.write");
  if (action == FaultAction::kFail) {
    return Status::IoError("injected fault at io.write: " + path_);
  }
  if (action == FaultAction::kFatal) {
    return Status::Internal("injected fatal fault at io.write: " + path_);
  }
  if (action == FaultAction::kTorn) {
    // Torn write: half the payload lands on disk, then the "device" fails —
    // the on-disk state a crash between sector writes leaves behind.
    const size_t half = size / 2;
    (void)WriteAll(fd_, static_cast<const char*>(data), half, path_);
    bytes_written_ += half;
    return Status::IoError("injected torn write at io.write: " + path_);
  }
  FKD_RETURN_NOT_OK(WriteAll(fd_, static_cast<const char*>(data), size, path_));
  bytes_written_ += size;
  return Status::OK();
}

Status FileWriter::Append(std::string_view data) {
  return Append(data.data(), data.size());
}

Status FileWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;  // closed in every branch below
  if (FaultInjector::Global().Hit("io.fsync") != FaultAction::kNone) {
    ::close(fd);
    return Status::IoError("injected fault at io.fsync: " + path_);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync failed:", path_);
  }
  if (::close(fd) != 0) return ErrnoStatus("close failed:", path_);
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  FKD_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path));
  FKD_RETURN_NOT_OK(writer.Append(data));
  return writer.Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return std::move(buffer).str();
}

Status AtomicRename(const std::string& from, const std::string& to) {
  FKD_RETURN_NOT_OK(FaultInjector::Global().Inject("io.rename"));
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename failed: " + from + " ->", to);
  }
  return SyncDir(ParentOf(to));
}

Status SyncDir(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("cannot open directory:", directory);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync failed on directory:", directory);
  return Status::OK();
}

Result<StagedDir> StagedDir::Create(const std::string& final_path) {
  const std::string staged =
      final_path + ".tmp-" + std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::remove_all(staged, ec);  // leftover of a crashed attempt
  std::filesystem::create_directories(staged, ec);
  if (ec) {
    return Status::IoError("cannot create staging directory " + staged + ": " +
                           ec.message());
  }
  return StagedDir(staged, final_path);
}

StagedDir::~StagedDir() {
  if (!committed_ && !staged_path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(staged_path_, ec);  // best-effort cleanup
  }
}

StagedDir::StagedDir(StagedDir&& other) noexcept
    : staged_path_(std::move(other.staged_path_)),
      final_path_(std::move(other.final_path_)),
      committed_(other.committed_) {
  other.staged_path_.clear();
  other.committed_ = true;
}

StagedDir& StagedDir::operator=(StagedDir&& other) noexcept {
  if (this != &other) {
    if (!committed_ && !staged_path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(staged_path_, ec);
    }
    staged_path_ = std::move(other.staged_path_);
    final_path_ = std::move(other.final_path_);
    committed_ = other.committed_;
    other.staged_path_.clear();
    other.committed_ = true;
  }
  return *this;
}

Status StagedDir::Commit() {
  if (committed_) return Status::FailedPrecondition("already committed");
  // Replacing an existing directory: remove it first (rename(2) cannot
  // replace a non-empty directory). The window where neither exists is the
  // price of replacement; first-time publishes are fully atomic.
  std::error_code ec;
  if (std::filesystem::exists(final_path_, ec)) {
    std::filesystem::remove_all(final_path_, ec);
    if (ec) {
      return Status::IoError("cannot remove old " + final_path_ + ": " +
                             ec.message());
    }
  }
  FKD_RETURN_NOT_OK(AtomicRename(staged_path_, final_path_));
  committed_ = true;
  return Status::OK();
}

}  // namespace fkd
