#ifndef FKD_COMMON_FAULT_INJECTION_H_
#define FKD_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace fkd {

/// What an armed fault rule does when its site is hit.
enum class FaultAction {
  kNone = 0,   ///< No rule matched this hit; proceed normally.
  kFail,       ///< Fail the operation with IoError (e.g. simulated ENOSPC).
  kFatal,      ///< Fail with a non-retryable Internal error.
  kTorn,       ///< Perform the operation partially, then fail (torn write).
  kCrash,      ///< _exit(kCrashExitCode) mid-operation (simulated kill -9).
};

/// Process exit code used by FaultAction::kCrash, so harnesses can tell an
/// injected crash apart from a genuine abort.
inline constexpr int kFaultCrashExitCode = 134;

/// Deterministic fault injector for exercising failure paths.
///
/// Production code consults named *sites* ("io.write", "io.fsync",
/// "serve.batch", ...) through `Hit()`/`Inject()`; tests and drills arm
/// rules against those sites, either programmatically via `Configure()` or
/// through the `FKD_FAULTS` environment variable. With no rules armed every
/// hit is a branch-predicted map lookup miss, so the shim is safe to leave
/// in release builds.
///
/// Rule grammar (comma-separated list):
///
///   spec   := rule ("," rule)*
///   rule   := site ":" action ["@" N] ["*" K]
///   action := "fail" | "fatal" | "torn" | "crash"
///
/// `@N` arms the rule starting at the Nth hit of the site (1-based,
/// default 1); `*K` limits it to K consecutive triggering hits (default:
/// unbounded). Examples:
///
///   FKD_FAULTS=io.write:fail@3        every io.write from the 3rd on fails
///   FKD_FAULTS=io.fsync:torn*1        the first fsync'd file is torn
///   FKD_FAULTS=serve.batch:fail@2*3   batches 2-4 fail, then recovery
///   FKD_FAULTS=io.rename:crash        the process dies at the first rename
///
/// Thread-safe: sites may be hit concurrently (serving workers do).
class FaultInjector {
 public:
  /// Called right before a kCrash _exit and on every kFatal hit, with the
  /// site name and the FaultAction as an int. Lets higher layers (the
  /// obs::FlightRecorder) dump diagnostic state without this low-level
  /// library depending on them.
  using CrashHook = void (*)(const char* site, int action);

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-wide injector, pre-configured from FKD_FAULTS (if set) on
  /// first access. Invalid env specs abort: a drill that silently runs
  /// without its faults armed would report false confidence.
  static FaultInjector& Global();

  /// Replaces all rules with the parsed `spec` and resets hit counters.
  /// An empty spec clears everything.
  Status Configure(const std::string& spec);

  /// Removes every rule and resets hit counters.
  void Clear();

  /// True if any rule is armed (cheap pre-check for hot paths).
  bool enabled() const;

  /// Records one hit of `site` and returns the action the caller must
  /// simulate. kCrash never returns: the process exits immediately, which
  /// models a kill mid-operation better than any cooperative unwind.
  FaultAction Hit(const std::string& site);

  /// Convenience for sites with nothing to tear: maps kFail/kTorn to
  /// IoError and kFatal to Internal, naming the site.
  Status Inject(const std::string& site);

  /// Times `site` was hit since the last Configure/Clear (for tests).
  uint64_t HitCount(const std::string& site) const;

  /// Registers the crash/fatal observer (nullptr to clear). The hook is
  /// invoked outside the injector lock; it must not call back into Hit().
  void SetCrashHook(CrashHook hook) {
    crash_hook_.store(hook, std::memory_order_release);
  }

 private:
  struct Rule {
    FaultAction action = FaultAction::kNone;
    uint64_t first_hit = 1;       ///< 1-based ordinal the rule arms at.
    uint64_t max_triggers = 0;    ///< 0 = unbounded.
  };

  mutable std::mutex mutex_;
  std::map<std::string, Rule> rules_;
  std::map<std::string, uint64_t> hits_;
  std::atomic<CrashHook> crash_hook_{nullptr};
};

}  // namespace fkd

#endif  // FKD_COMMON_FAULT_INJECTION_H_
