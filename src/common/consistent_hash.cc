#include "common/consistent_hash.h"

#include <algorithm>

#include "common/logging.h"

namespace fkd {

uint64_t Hash64(const void* data, size_t size) {
  // FNV-1a, 64-bit.
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t Hash64Mix(uint64_t seed, uint64_t value) {
  // splitmix64 finalizer over the xor'd pair: cheap, well-distributed, and
  // (unlike a plain xor) sensitive to the order of mixed-in values.
  uint64_t z = seed ^ (value + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

uint64_t VnodePosition(uint64_t node_id, size_t replica) {
  return Hash64Mix(Hash64Mix(0x5ca1ab1eull, node_id),
                   static_cast<uint64_t>(replica));
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(size_t vnodes_per_node)
    : vnodes_per_node_(vnodes_per_node == 0 ? 1 : vnodes_per_node) {}

void ConsistentHashRing::AddNode(uint64_t node_id) {
  if (HasNode(node_id)) return;
  for (size_t r = 0; r < vnodes_per_node_; ++r) {
    uint64_t position = VnodePosition(node_id, r);
    // Collisions between distinct nodes' points are astronomically rare
    // but would silently drop a vnode; probe to the next free position so
    // every node keeps exactly vnodes_per_node_ points.
    while (ring_.count(position) != 0) ++position;
    ring_.emplace(position, node_id);
  }
  ++num_nodes_;
}

void ConsistentHashRing::RemoveNode(uint64_t node_id) {
  if (!HasNode(node_id)) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node_id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  --num_nodes_;
}

bool ConsistentHashRing::HasNode(uint64_t node_id) const {
  for (const auto& [position, node] : ring_) {
    if (node == node_id) return true;
  }
  return false;
}

uint64_t ConsistentHashRing::Pick(uint64_t key_hash) const {
  FKD_CHECK(!ring_.empty()) << "Pick on an empty consistent-hash ring";
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<uint64_t> ConsistentHashRing::Nodes() const {
  std::vector<uint64_t> nodes;
  for (const auto& [position, node] : ring_) {
    if (nodes.empty() || nodes.back() != node) nodes.push_back(node);
  }
  // Ring order interleaves nodes; dedupe via sort.
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace fkd
