#ifndef FKD_COMMON_FLAGS_H_
#define FKD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fkd {

/// Minimal `--name=value` command-line flag parser for the bench and
/// example binaries. Flags are registered with defaults, then `Parse`
/// validates that every `--flag` on the command line was registered.
///
///   FlagParser flags;
///   flags.AddInt("articles", 2000, "number of synthetic articles");
///   flags.AddString("out", "", "optional CSV output path");
///   FKD_CHECK_OK(flags.Parse(argc, argv));
///   int n = flags.GetInt("articles");
class FlagParser {
 public:
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv; accepts `--name=value` and bare `--name` for bools.
  /// `--help` prints usage and reports kFailedPrecondition so callers can
  /// exit cleanly.
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  /// Usage text listing all registered flags with defaults.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };
  const Flag& Lookup(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace fkd

#endif  // FKD_COMMON_FLAGS_H_
