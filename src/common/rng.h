#ifndef FKD_COMMON_RNG_H_
#define FKD_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fkd {

/// Deterministic pseudo-random number generator (xoshiro256**) with
/// convenience distributions used across the library.
///
/// Every stochastic component in the library (initialisers, samplers,
/// generators, SGD shuffles) takes an explicit `Rng&` or seed so that runs
/// are reproducible bit-for-bit. The engine is seeded through SplitMix64 so
/// that small consecutive seeds give well-decorrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the engine deterministically.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from an (unnormalised, non-negative) weight vector.
  /// Requires at least one strictly positive weight. O(n); for repeated
  /// sampling from the same weights use `AliasTable` (graph module).
  size_t Discrete(const std::vector<double>& weights);

  /// Geometric-like sample from a discrete power law P(k) ~ k^-alpha on
  /// {1, ..., max_value} via inverse transform on the continuous Pareto,
  /// clamped. Used to plant Zipf/power-law degree distributions.
  uint64_t PowerLaw(double alpha, uint64_t max_value);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    FKD_CHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Opaque serialisable engine state (the four xoshiro words plus the
  /// Box-Muller cache). Restoring a dumped state resumes the exact stream,
  /// which is what makes checkpointed training bit-for-bit reproducible.
  std::vector<uint64_t> DumpState() const;

  /// Restores a DumpState() snapshot; false (state unchanged) when `words`
  /// is not a valid dump.
  bool RestoreState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fkd

#endif  // FKD_COMMON_RNG_H_
