#ifndef FKD_COMMON_MEMORY_ACCOUNTANT_H_
#define FKD_COMMON_MEMORY_ACCOUNTANT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace fkd {

/// Byte-level residency ledger behind a hard memory budget.
///
/// Tracks the bytes charged per key (a model version, a corpus shard) and
/// answers the one question a budget-enforcing cache hierarchy asks on
/// every admit: "who must be evicted for this charge to fit?". The
/// accountant itself never evicts — it is pure bookkeeping; the owning
/// store drives demotion until `OverBudget()` clears (or only undemotable
/// entries remain) and keeps the invariant `total() <= budget()` observable
/// through its metrics.
///
/// Not internally synchronised: the owner serialises access under its own
/// mutex (the model store charges/releases while holding the registry
/// lock).
class MemoryAccountant {
 public:
  /// `budget_bytes` == 0 means unlimited (never over budget).
  explicit MemoryAccountant(size_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  /// Charges `bytes` against `key`, replacing any previous charge for the
  /// same key (an entry is re-charged when its resident form changes).
  void Charge(uint64_t key, size_t bytes) {
    auto it = charges_.find(key);
    if (it != charges_.end()) {
      total_ -= it->second;
      it->second = bytes;
    } else {
      charges_.emplace(key, bytes);
    }
    total_ += bytes;
  }

  /// Drops the charge for `key` (no-op when absent). Returns the bytes
  /// released.
  size_t Release(uint64_t key) {
    auto it = charges_.find(key);
    if (it == charges_.end()) return 0;
    const size_t bytes = it->second;
    total_ -= bytes;
    charges_.erase(it);
    return bytes;
  }

  /// Bytes currently charged for `key` (0 when absent).
  size_t ChargeOf(uint64_t key) const {
    auto it = charges_.find(key);
    return it == charges_.end() ? 0 : it->second;
  }

  size_t total() const { return total_; }
  size_t budget() const { return budget_bytes_; }
  bool unlimited() const { return budget_bytes_ == 0; }
  bool OverBudget() const {
    return budget_bytes_ != 0 && total_ > budget_bytes_;
  }
  /// Bytes that must be released for the ledger to fit the budget.
  size_t Excess() const {
    return OverBudget() ? total_ - budget_bytes_ : 0;
  }
  size_t entries() const { return charges_.size(); }

 private:
  size_t budget_bytes_;
  size_t total_ = 0;
  std::unordered_map<uint64_t, size_t> charges_;
};

}  // namespace fkd

#endif  // FKD_COMMON_MEMORY_ACCOUNTANT_H_
