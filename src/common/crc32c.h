#ifndef FKD_COMMON_CRC32C_H_
#define FKD_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fkd {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum RocksDB,
/// LevelDB and gRPC use for on-disk integrity. Software table
/// implementation; plenty for the MB-scale artifacts this library writes.
///
/// `Crc32cExtend(crc, ...)` continues a running checksum, so large files
/// can be checksummed in streaming chunks.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

}  // namespace fkd

#endif  // FKD_COMMON_CRC32C_H_
