#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace fkd {

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr && size_ > 0) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot open %s for mapping: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(StrFormat("cannot stat %s: %s", path.c_str(),
                                     std::strerror(err)));
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<size_t>(st.st_size);
  file.mapped_ = true;
  if (file.size_ > 0) {
    void* addr =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError(StrFormat("cannot mmap %s (%zu bytes): %s",
                                       path.c_str(), file.size_,
                                       std::strerror(err)));
    }
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping keeps its own reference to the file; the descriptor is not
  // needed once mmap returned.
  ::close(fd);
  return file;
}

}  // namespace fkd
