#ifndef FKD_COMMON_FILE_IO_H_
#define FKD_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fkd {

/// Durable, fault-injectable file writing.
///
/// Every artifact writer in this library (snapshot, checkpoint, FKDW
/// serialisation, dataset TSVs) goes through this shim instead of raw
/// streams, which buys two things at once:
///
///  1. durability — `Close()` flushes AND fsyncs, so a committed file
///     survives power loss, and `AtomicRename` + `SyncDir` give the
///     write-temp/rename-publish idiom a torn-write-free commit point;
///  2. testability — each operation consults `FaultInjector::Global()`
///     (sites "io.open", "io.write", "io.fsync", "io.rename"), so tests
///     deterministically simulate ENOSPC, torn writes and crashes at any
///     step without touching the filesystem driver.
///
/// POSIX-fd based: `std::ofstream` offers no way to fsync.
class FileWriter {
 public:
  FileWriter() = default;
  ~FileWriter();

  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Creates/truncates `path` for writing. Site "io.open".
  static Result<FileWriter> Open(const std::string& path);

  /// Appends `size` bytes. Site "io.write"; an injected torn fault writes
  /// only the first half of this call's bytes before failing, an injected
  /// crash kills the process at this call (nothing of it lands).
  Status Append(const void* data, size_t size);
  Status Append(std::string_view data);

  /// Flushes to stable storage (fsync, site "io.fsync") and closes. A file
  /// is durable only after Close() returned OK. Idempotent; the destructor
  /// closes WITHOUT syncing (abandoned writers need no durability).
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// One-shot durable write: Open + Append + Close.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Reads a whole (binary) file. IoError when unreadable.
Result<std::string> ReadFileToString(const std::string& path);

/// rename(2) with the parent directory fsynced afterwards, so the new name
/// survives a crash. The atomic publish step of every artifact directory.
/// Site "io.rename".
Status AtomicRename(const std::string& from, const std::string& to);

/// fsyncs a directory's entry list (needed after create/rename/unlink for
/// the metadata to be durable).
Status SyncDir(const std::string& directory);

/// Write-temp/rename-publish for whole directories.
///
///   FKD_ASSIGN_OR_RETURN(StagedDir staged, StagedDir::Create(final_path));
///   ... write files under staged.path() via FileWriter ...
///   FKD_RETURN_NOT_OK(WriteManifest(staged.path(), files));
///   FKD_RETURN_NOT_OK(staged.Commit());
///
/// Until Commit() renames the staging directory over `final_path`, readers
/// either see the complete old directory or none at all — a crash at ANY
/// earlier step leaves only a `.tmp-<pid>` directory that loaders never
/// look at (and the destructor removes on the error path).
class StagedDir {
 public:
  /// Creates `<final_path>.tmp-<pid>` afresh (removing any leftover from a
  /// previous crashed attempt with this pid).
  static Result<StagedDir> Create(const std::string& final_path);

  ~StagedDir();
  StagedDir(StagedDir&& other) noexcept;
  StagedDir& operator=(StagedDir&& other) noexcept;
  StagedDir(const StagedDir&) = delete;
  StagedDir& operator=(const StagedDir&) = delete;

  /// The staging directory to write into.
  const std::string& path() const { return staged_path_; }

  /// Atomically publishes the staging directory as `final_path`, replacing
  /// any existing directory of that name, and fsyncs the parent.
  Status Commit();

 private:
  StagedDir(std::string staged_path, std::string final_path)
      : staged_path_(std::move(staged_path)),
        final_path_(std::move(final_path)) {}

  std::string staged_path_;
  std::string final_path_;
  bool committed_ = false;
};

}  // namespace fkd

#endif  // FKD_COMMON_FILE_IO_H_
