#include "common/crc32c.h"

#include <array>

namespace fkd {

namespace {

/// Byte-at-a-time lookup table for the reflected Castagnoli polynomial,
/// built once at first use (constexpr-buildable, but a function-local
/// static keeps the header free of the table).
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    constexpr uint32_t kReflectedPoly = 0x82F63B78u;
    std::array<uint32_t, 256> t{};
    for (uint32_t byte = 0; byte < 256; ++byte) {
      uint32_t crc = byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kReflectedPoly : 0u);
      }
      t[byte] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace fkd
