#ifndef FKD_COMMON_BLOCK_CODEC_H_
#define FKD_COMMON_BLOCK_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fkd {

/// Identifies a block-compression codec in the FKDZ container. Values are
/// persisted on disk; append only.
enum class BlockCodecId : uint32_t {
  kRaw = 0,  ///< Identity (stored) — framing + CRC without compression.
  kLz = 1,   ///< LZ-style byte codec (greedy hash-chain LZSS).
};

/// Lossless byte-block compressor behind the cold storage tier.
///
/// Implementations must be deterministic (same input bytes → same output
/// bytes on every run and platform: compressed artifacts are covered by
/// manifest CRCs) and must never read outside the given input span.
/// Decompress validates every token against the output bounds and fails
/// with Corruption instead of over-reading — the compressed tier treats
/// its input as hostile, exactly like the wire decoder does.
class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  virtual BlockCodecId id() const = 0;
  virtual std::string name() const = 0;

  /// Compresses `input` appending to `*out` (not cleared). The result may
  /// be larger than the input for incompressible data; the FKDZ framing
  /// stores such blocks raw instead.
  virtual void Compress(std::string_view input, std::string* out) const = 0;

  /// Reverses Compress. `expected_size` is the exact decoded size recorded
  /// by the framing; any mismatch, bad token, or out-of-window reference is
  /// Corruption. Appends to `*out`.
  virtual Status Decompress(std::string_view input, size_t expected_size,
                            std::string* out) const = 0;
};

/// Codec registry keyed by the persisted id. Returns nullptr for unknown
/// ids (loader turns that into Corruption, naming the id).
const BlockCodec* GetBlockCodec(BlockCodecId id);

/// Parses a codec name ("raw", "lz") as written into snapshot configs.
Result<BlockCodecId> BlockCodecIdFromName(const std::string& name);

/// ---- FKDZ container ---------------------------------------------------
///
/// A compressed file is a sequence of independently-checksummed blocks:
///
///   magic "FKDZ" | version u32 | codec u32 | block_size u32
///   raw_size u64 | num_blocks u32
///   per block: raw_len u32 | stored_len u32 | flags u8 | crc32c u32 | bytes
///
/// `flags` bit 0 set means the block is codec-compressed; clear means it is
/// stored raw (the codec expanded it). The CRC-32C covers the block's
/// stored bytes, so a byte flip is caught before the codec ever parses the
/// block — corruption is detected per block, not discovered as a garbled
/// decode. Written through the durable fault-injectable FileWriter, so
/// ENOSPC/torn-write/crash tests cover the cold tier like every other
/// artifact.

/// Default block granularity (64 KiB): big enough to amortise per-block
/// headers, small enough that corruption is localised per block.
inline constexpr size_t kDefaultBlockBytes = 64 * 1024;

/// Compresses `data` into `path` as an FKDZ container.
Status WriteCompressedFile(const std::string& path, std::string_view data,
                           BlockCodecId codec,
                           size_t block_bytes = kDefaultBlockBytes);

/// Reads back a full FKDZ container, verifying the header, every block's
/// CRC-32C, and the total decoded size. Corruption on any mismatch.
Result<std::string> ReadCompressedFile(const std::string& path);

}  // namespace fkd

#endif  // FKD_COMMON_BLOCK_CODEC_H_
