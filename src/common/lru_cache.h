#ifndef FKD_COMMON_LRU_CACHE_H_
#define FKD_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fkd {

/// Point-in-time accounting of a cache (aggregated over shards for
/// ShardedLruCache). `hits + misses` equals the number of Get() calls.
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;  ///< Put() calls that added a new key.
  uint64_t updates = 0;     ///< Put() calls that overwrote an existing key.
  uint64_t evictions = 0;   ///< Entries displaced by capacity pressure.
  size_t size = 0;          ///< Entries currently resident.
  size_t capacity = 0;      ///< Maximum resident entries.
};

/// Bounded least-recently-used map. Get() promotes the entry to
/// most-recently-used; Put() beyond capacity evicts the least-recently-used
/// entry. Not thread-safe — this is the single-shard building block;
/// concurrent callers want ShardedLruCache below.
///
/// Invariants (what the randomized property tests pin down):
///  - size() never exceeds capacity;
///  - every Get() is accounted as exactly one hit or one miss;
///  - an entry is evicted only when a Put() of a *new* key arrives at
///    capacity, and the victim is always the least-recently-used key.
template <typename Key, typename Value, typename HashFn = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    FKD_CHECK_GT(capacity, 0u) << "LruCache needs capacity >= 1";
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;
  LruCache(LruCache&&) = default;
  LruCache& operator=(LruCache&&) = default;

  /// Copies the value into `*value` and promotes the entry on hit.
  bool Get(const Key& key, Value* value) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    *value = it->second->second;
    return true;
  }

  /// Inserts or overwrites; either way the key becomes most-recently-used.
  void Put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++updates_;
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    ++insertions_;
    if (order_.size() >= capacity_) {
      ++evictions_;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  /// Removes the key if present; no-op (false) otherwise.
  bool Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  bool Contains(const Key& key) const { return index_.count(key) != 0; }
  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  LruCacheStats Stats() const {
    LruCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.insertions = insertions_;
    stats.updates = updates_;
    stats.evictions = evictions_;
    stats.size = order_.size();
    stats.capacity = capacity_;
    return stats;
  }

 private:
  size_t capacity_;
  /// Front = most recently used. The index maps keys to list nodes so both
  /// lookup and promotion are O(1).
  std::list<std::pair<Key, Value>> order_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     HashFn>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t updates_ = 0;
  uint64_t evictions_ = 0;
};

/// Thread-safe LRU built from independently locked LruCache shards. A key
/// is pinned to shard `HashFn(key) % num_shards`, so two threads touching
/// different keys rarely contend on the same mutex, and the LRU order is
/// exact *within* each shard (global recency is approximate — the standard
/// sharded-cache trade-off).
///
/// Capacity is divided evenly across shards (each shard gets at least 1
/// slot), so total residency never exceeds ~capacity.
template <typename Key, typename Value, typename HashFn = std::hash<Key>>
class ShardedLruCache {
 public:
  ShardedLruCache(size_t capacity, size_t num_shards)
      : hash_(HashFn()) {
    FKD_CHECK_GT(capacity, 0u);
    FKD_CHECK_GT(num_shards, 0u);
    // No point in shards holding zero entries: cap the shard count at the
    // capacity so every shard owns at least one slot.
    const size_t shards = num_shards > capacity ? capacity : num_shards;
    const size_t per_shard = (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  bool Get(const Key& key, Value* value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.cache.Get(key, value);
  }

  void Put(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.Put(key, std::move(value));
  }

  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.cache.Erase(key);
  }

  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->cache.Clear();
    }
  }

  size_t num_shards() const { return shards_.size(); }

  /// Sums per-shard accounting. Coherent per shard; the totals are a
  /// consistent snapshot only when no writers are active.
  LruCacheStats Stats() const {
    LruCacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      const LruCacheStats s = shard->cache.Stats();
      total.hits += s.hits;
      total.misses += s.misses;
      total.insertions += s.insertions;
      total.updates += s.updates;
      total.evictions += s.evictions;
      total.size += s.size;
      total.capacity += s.capacity;
    }
    return total;
  }

 private:
  struct Shard {
    explicit Shard(size_t capacity) : cache(capacity) {}
    mutable std::mutex mutex;
    LruCache<Key, Value, HashFn> cache;
  };

  Shard& ShardFor(const Key& key) const {
    return *shards_[hash_(key) % shards_.size()];
  }

  HashFn hash_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fkd

#endif  // FKD_COMMON_LRU_CACHE_H_
