#ifndef FKD_COMMON_CONSISTENT_HASH_H_
#define FKD_COMMON_CONSISTENT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace fkd {

/// 64-bit FNV-1a over raw bytes — a fast, dependency-free string hash whose
/// output is stable across platforms and runs (unlike std::hash), so cache
/// keys and ring placements survive process restarts and are reproducible
/// in tests.
uint64_t Hash64(const void* data, size_t size);

inline uint64_t Hash64(std::string_view data) {
  return Hash64(data.data(), data.size());
}

/// Mixes an integer into an existing hash (splitmix64 finalizer). Used both
/// to fold request ids into a cache key and to derive virtual-node
/// positions from (node, replica) pairs.
uint64_t Hash64Mix(uint64_t seed, uint64_t value);

/// Consistent-hash ring over integer node ids (replica indices, shard
/// numbers, ...). Each node owns `vnodes_per_node` pseudo-random points on
/// a 2^64 ring; a key is placed on the first node point at or clockwise
/// after its hash. Properties the tests pin down:
///
///  - balance: with enough virtual nodes, keys spread across nodes within
///    a small factor of perfectly even;
///  - minimal remapping: adding or removing one of N nodes moves only
///    ~1/N of the keys — every other key keeps its placement, which is what
///    keeps per-replica batching and caches warm when a serving fleet
///    resizes.
///
/// Not thread-safe for mutation; Pick() is const and safe to call
/// concurrently once the membership is built.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(size_t vnodes_per_node = 64);

  /// Adds a node; no-op if already present.
  void AddNode(uint64_t node_id);

  /// Removes a node and all its ring points; no-op if absent.
  void RemoveNode(uint64_t node_id);

  bool HasNode(uint64_t node_id) const;
  size_t num_nodes() const { return num_nodes_; }
  size_t vnodes_per_node() const { return vnodes_per_node_; }

  /// Node owning `key_hash`. The ring must be non-empty (FKD_CHECK).
  uint64_t Pick(uint64_t key_hash) const;

  /// Node ids currently on the ring, ascending.
  std::vector<uint64_t> Nodes() const;

 private:
  const size_t vnodes_per_node_;
  size_t num_nodes_ = 0;
  /// ring position -> node id, ordered; lower_bound gives the clockwise
  /// successor in O(log n).
  std::map<uint64_t, uint64_t> ring_;
};

}  // namespace fkd

#endif  // FKD_COMMON_CONSISTENT_HASH_H_
