#ifndef FKD_COMMON_THREAD_POOL_H_
#define FKD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fkd {

/// Process-wide intra-op worker pool for the tensor kernels.
///
/// Design constraints, in priority order:
///
///  1. **Bitwise determinism.** Chunk boundaries are a pure function of
///     `(end - begin, grain)` — never of the thread count, the scheduler, or
///     runtime load. A kernel that writes disjoint outputs per index (or
///     combines fixed per-chunk partials in chunk order) therefore produces
///     bitwise-identical results at any `FKD_NUM_THREADS`, which the
///     checkpoint-resume suites rely on.
///  2. **Sharing.** One lazily-created global pool serves every caller —
///     the trainer and all serving workers submit kernel chunks to the same
///     threads instead of oversubscribing the machine per subsystem.
///  3. **Simplicity over stealing.** Chunks are claimed from a FIFO region
///     queue under one mutex; chunks are sized (by the kernels' grain
///     choices) to amortise that. There is no work stealing and no per-thread
///     deque, so the scheduler itself cannot introduce ordering effects.
///
/// Callers participate: `ParallelFor` runs chunks on the calling thread too,
/// so a pool of N threads means N-1 background workers. A `ParallelFor`
/// issued from inside a pool worker (nested parallelism) runs inline
/// serially — the contract above makes that a scheduling-only difference.
class ThreadPool {
 public:
  /// A pool executing on `num_threads` threads total (the caller plus
  /// `num_threads - 1` background workers). `num_threads` is clamped to
  /// [1, 256].
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The shared process-wide pool, created on first use. Sizing:
  /// `FKD_NUM_THREADS` if set to a positive integer, otherwise
  /// `std::thread::hardware_concurrency()` (minimum 1).
  static ThreadPool& Global();

  /// Replaces the global pool with a fresh one of `num_threads` threads
  /// (0 = re-derive from FKD_NUM_THREADS / hardware_concurrency). Testing
  /// and bench hook; the caller must guarantee no kernels are in flight.
  static void ResetGlobal(size_t num_threads);

  /// True on a pool worker thread (used to run nested regions inline).
  static bool InWorker();

  /// Number of chunks `[begin, end)` is split into at the given grain:
  /// `ceil(range / max(grain, 1))`. Depends only on the range and grain —
  /// this is the determinism contract callers build reductions on.
  static size_t NumChunks(size_t range, size_t grain);

  /// Cost-aware grain: elements per chunk such that one chunk touches
  /// roughly kTargetChunkBytes of memory-equivalent work, given
  /// `cost_hint` bytes touched (or byte-equivalent arithmetic cost) per
  /// element. Cheap elementwise kernels used to over-chunk — hundreds of
  /// ~10 us chunks whose per-chunk mutex claims and worker wakeups cost
  /// more than the work — because the old fixed grains ignored how little
  /// each element cost. The result is a pure function of the arguments
  /// (never of thread count or load), so chunk bounds stay deterministic.
  static size_t CostAwareGrain(size_t cost_hint, size_t min_grain = 1);

  /// Target per-chunk cost for CostAwareGrain: big enough (~100 us at
  /// DRAM bandwidth) that chunk-claim overhead is noise, small enough
  /// that mid-size kernels still split across a pool.
  static constexpr size_t kTargetChunkBytes = size_t{1} << 22;  // 4 MiB

  size_t num_threads() const { return num_threads_; }

  /// Invokes `fn(chunk_begin, chunk_end)` over disjoint subranges covering
  /// `[begin, end)`, concurrently when the pool has spare threads and the
  /// range splits into more than one chunk (see NumChunks). `fn` must be
  /// safe to call concurrently on disjoint ranges and must not depend on
  /// chunk invocation order. Blocks until every chunk has finished.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Lifetime counters: parallel regions dispatched and chunks executed
  /// through them (serial fallbacks are not counted).
  uint64_t regions() const { return regions_.load(std::memory_order_relaxed); }
  uint64_t tasks() const { return tasks_.load(std::memory_order_relaxed); }

 private:
  /// One ParallelFor call in flight. Lives on the submitting thread's
  /// stack; chunk claiming and completion are guarded by the pool mutex
  /// (chunks are coarse, so this is not a contention point).
  struct Region {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t num_chunks = 0;
    size_t next_chunk = 0;  ///< Next unclaimed chunk index.
    size_t completed = 0;   ///< Chunks finished.
  };

  void WorkerLoop();
  /// Runs one chunk of `region`; returns false when none were left.
  /// `lock` must hold mutex_ on entry and holds it again on return.
  bool RunOneChunk(Region* region, std::unique_lock<std::mutex>* lock);

  const size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Workers: a region has chunks.
  std::condition_variable done_cv_;  ///< Submitters: a chunk completed.
  std::deque<Region*> queue_;        ///< Regions with unclaimed chunks.
  bool stop_ = false;

  std::atomic<uint64_t> regions_{0};
  std::atomic<uint64_t> tasks_{0};
};

}  // namespace fkd

#endif  // FKD_COMMON_THREAD_POOL_H_
