#ifndef FKD_COMMON_TIMER_H_
#define FKD_COMMON_TIMER_H_

#include <chrono>

namespace fkd {

/// Monotonic wall-clock stopwatch for coarse experiment timing.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fkd

#endif  // FKD_COMMON_TIMER_H_
