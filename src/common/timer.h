#ifndef FKD_COMMON_TIMER_H_
#define FKD_COMMON_TIMER_H_

#include <chrono>

namespace fkd {

/// Monotonic wall-clock stopwatch for coarse experiment timing.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer that reports its lifetime in microseconds into a sink with an
/// `Observe(double)` method — in practice an obs::Histogram:
///
///   {
///     ScopedTimer timer(registry.GetHistogram("fkd.gdu.forward_us"));
///     ...hot path...
///   }  // histogram records elapsed microseconds here
///
/// Templated on the sink so common/ does not depend on obs/. A null sink
/// disables reporting (the elapsed accessors keep working).
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->Observe(timer_.ElapsedMicros());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }
  double ElapsedMicros() const { return timer_.ElapsedMicros(); }

 private:
  Sink* sink_;
  WallTimer timer_;
};

}  // namespace fkd

#endif  // FKD_COMMON_TIMER_H_
