#include "common/fault_injection.h"

#include <unistd.h>

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {

namespace {

bool ParseAction(std::string_view token, FaultAction* action) {
  if (token == "fail") {
    *action = FaultAction::kFail;
  } else if (token == "fatal") {
    *action = FaultAction::kFatal;
  } else if (token == "torn") {
    *action = FaultAction::kTorn;
  } else if (token == "crash") {
    *action = FaultAction::kCrash;
  } else {
    return false;
  }
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    if (const char* spec = std::getenv("FKD_FAULTS")) {
      FKD_CHECK_OK(created->Configure(spec));
    }
    return created;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  std::map<std::string, Rule> rules;
  const std::string_view trimmed = Trim(spec);
  if (!trimmed.empty()) {
    for (const std::string& part : Split(trimmed, ',')) {
      const std::string rule_text(Trim(part));
      const size_t colon = rule_text.find(':');
      if (colon == std::string::npos || colon == 0) {
        return Status::InvalidArgument("fault rule '" + rule_text +
                                       "' is not site:action[@N][*K]");
      }
      const std::string site = rule_text.substr(0, colon);
      std::string action_text = rule_text.substr(colon + 1);

      Rule rule;
      // Optional suffixes, in either order of appearance after the action.
      const size_t star = action_text.find('*');
      if (star != std::string::npos) {
        if (!ParseUint64(action_text.substr(star + 1), &rule.max_triggers) ||
            rule.max_triggers == 0) {
          return Status::InvalidArgument("fault rule '" + rule_text +
                                         "': bad *K repeat count");
        }
        action_text.erase(star);
      }
      const size_t at = action_text.find('@');
      if (at != std::string::npos) {
        if (!ParseUint64(action_text.substr(at + 1), &rule.first_hit) ||
            rule.first_hit == 0) {
          return Status::InvalidArgument("fault rule '" + rule_text +
                                         "': bad @N ordinal");
        }
        action_text.erase(at);
      }
      if (!ParseAction(action_text, &rule.action)) {
        return Status::InvalidArgument(
            "fault rule '" + rule_text + "': unknown action '" + action_text +
            "' (want fail|fatal|torn|crash)");
      }
      if (rules.count(site) != 0) {
        return Status::InvalidArgument("duplicate fault site '" + site + "'");
      }
      rules.emplace(site, rule);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(rules);
  hits_.clear();
  return Status::OK();
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  hits_.clear();
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !rules_.empty();
}

FaultAction FaultInjector::Hit(const std::string& site) {
  FaultAction action = FaultAction::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t ordinal = ++hits_[site];
    auto it = rules_.find(site);
    if (it != rules_.end() && ordinal >= it->second.first_hit &&
        (it->second.max_triggers == 0 ||
         ordinal < it->second.first_hit + it->second.max_triggers)) {
      action = it->second.action;
    }
  }
  if (action == FaultAction::kCrash || action == FaultAction::kFatal) {
    // Give the flight recorder (or any registered observer) a last chance
    // to dump diagnostic state. Outside the lock: the hook may Record().
    if (CrashHook hook = crash_hook_.load(std::memory_order_acquire)) {
      hook(site.c_str(), static_cast<int>(action));
    }
  }
  if (action == FaultAction::kCrash) {
    // Simulated kill: no stream flushing, no atexit handlers — exactly the
    // state a SIGKILL mid-write leaves on disk.
    FKD_LOG(Warning) << "fault injection: crashing at site " << site;
    ::_exit(kFaultCrashExitCode);
  }
  return action;
}

Status FaultInjector::Inject(const std::string& site) {
  switch (Hit(site)) {
    case FaultAction::kNone:
      return Status::OK();
    case FaultAction::kFatal:
      return Status::Internal("injected fatal fault at " + site);
    case FaultAction::kFail:
    case FaultAction::kTorn:
      return Status::IoError("injected fault at " + site);
    case FaultAction::kCrash:
      break;  // unreachable: Hit() exited
  }
  return Status::Internal("unreachable");
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

}  // namespace fkd
