#include "common/flags.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = help;
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument(
          StrFormat("unexpected positional argument '%s'", argv[i]));
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      std::fputs(Usage(argv[0]).c_str(), stderr);
      return Status::FailedPrecondition("--help requested");
    }
    std::string name;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      name = std::string(arg);
    } else {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument(StrFormat("unknown flag --%s", name.c_str()));
    }
    Flag& flag = it->second;
    switch (flag.type) {
      case Type::kBool: {
        if (!has_value) {
          flag.bool_value = true;
        } else if (value == "true" || value == "1") {
          flag.bool_value = true;
        } else if (value == "false" || value == "0") {
          flag.bool_value = false;
        } else {
          return Status::InvalidArgument(
              StrFormat("bad boolean for --%s: '%s'", name.c_str(), value.c_str()));
        }
        break;
      }
      case Type::kInt: {
        if (!has_value) {
          return Status::InvalidArgument(StrFormat("--%s needs a value", name.c_str()));
        }
        bool negative = !value.empty() && value[0] == '-';
        uint64_t magnitude = 0;
        if (!ParseUint64(negative ? value.substr(1) : value, &magnitude)) {
          return Status::InvalidArgument(
              StrFormat("bad integer for --%s: '%s'", name.c_str(), value.c_str()));
        }
        flag.int_value = negative ? -static_cast<int64_t>(magnitude)
                                  : static_cast<int64_t>(magnitude);
        break;
      }
      case Type::kDouble: {
        double parsed = 0.0;
        if (!has_value || !ParseDouble(value, &parsed)) {
          return Status::InvalidArgument(
              StrFormat("bad double for --%s: '%s'", name.c_str(), value.c_str()));
        }
        flag.double_value = parsed;
        break;
      }
      case Type::kString: {
        if (!has_value) {
          return Status::InvalidArgument(StrFormat("--%s needs a value", name.c_str()));
        }
        flag.string_value = value;
        break;
      }
    }
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::Lookup(const std::string& name,
                                           Type type) const {
  auto it = flags_.find(name);
  FKD_CHECK(it != flags_.end()) << "flag --" << name << " not registered";
  FKD_CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return Lookup(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).bool_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).string_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [--flag=value ...]\n";
  for (const auto& [name, flag] : flags_) {
    std::string default_text;
    switch (flag.type) {
      case Type::kInt:
        default_text = StrFormat("%lld", static_cast<long long>(flag.int_value));
        break;
      case Type::kDouble:
        default_text = StrFormat("%g", flag.double_value);
        break;
      case Type::kBool:
        default_text = flag.bool_value ? "true" : "false";
        break;
      case Type::kString:
        default_text = "'" + flag.string_value + "'";
        break;
    }
    out += StrFormat("  --%-24s %s (default %s)\n", name.c_str(),
                     flag.help.c_str(), default_text.c_str());
  }
  return out;
}

}  // namespace fkd
