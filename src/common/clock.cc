#include "common/clock.h"

#include <chrono>
#include <thread>

namespace fkd {
namespace {

class RealClock : public Clock {
 public:
  int64_t NowUs() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  int64_t WallUs() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }

  void SleepUs(int64_t us) override {
    if (us <= 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* real = new RealClock();
  return real;
}

}  // namespace fkd
