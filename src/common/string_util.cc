#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fkd {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty() || out == nullptr) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty() || out == nullptr) return false;
  std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

}  // namespace fkd
