#ifndef FKD_COMMON_MANIFEST_H_
#define FKD_COMMON_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fkd {

/// Name of the per-directory integrity manifest file.
inline constexpr const char* kManifestFileName = "MANIFEST";

/// One checksummed file of an artifact directory.
struct ManifestEntry {
  std::string file;      ///< Name relative to the directory (no slashes).
  uint64_t size = 0;     ///< Exact byte size.
  uint32_t crc32c = 0;   ///< CRC-32C of the full contents.
};

/// Streaming CRC-32C of a file's contents. IoError when unreadable.
Result<uint32_t> Crc32cOfFile(const std::string& path);

/// Writes `directory/MANIFEST` covering `files` (names relative to
/// `directory`), recording each file's current size and CRC-32C. Written
/// through the durable fault-injectable FileWriter, so it participates in
/// the same crash simulation as the files it covers. Format:
///
///   fkd-manifest v1
///   <size> <crc32c-8hex> <name>
///   ...
///
/// The manifest must be the LAST file written before an atomic publish: its
/// presence asserts that everything it lists was completely written.
Status WriteManifest(const std::string& directory,
                     const std::vector<std::string>& files);

/// Parses `directory/MANIFEST` without touching the listed files.
/// NotFound when the manifest itself is missing; Corruption on any
/// syntax error or duplicate entry.
Result<std::vector<ManifestEntry>> ReadManifest(const std::string& directory);

/// Reads the manifest and verifies every listed file exists with exactly
/// the recorded size and CRC-32C. The cheap gate a loader runs before
/// parsing anything: a directory that fails here was torn by a crash or
/// corrupted at rest, and the error names the first offending file.
Status VerifyManifest(const std::string& directory);

}  // namespace fkd

#endif  // FKD_COMMON_MANIFEST_H_
