#include "common/rng.h"

#include <cmath>
#include <cstring>
#include <numeric>

namespace fkd {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  FKD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FKD_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    FKD_CHECK_GE(w, 0.0);
    total += w;
  }
  FKD_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // Floating-point slack: last positive bucket.
}

uint64_t Rng::PowerLaw(double alpha, uint64_t max_value) {
  FKD_CHECK_GT(alpha, 1.0);
  FKD_CHECK_GE(max_value, 1u);
  // Continuous Pareto on [1, max+1), floored; inverse-CDF sampling.
  const double exponent = 1.0 - alpha;
  const double hi = std::pow(static_cast<double>(max_value) + 1.0, exponent);
  const double u = Uniform();
  const double x = std::pow(1.0 + u * (hi - 1.0), 1.0 / exponent);
  uint64_t k = static_cast<uint64_t>(x);
  if (k < 1) k = 1;
  if (k > max_value) k = max_value;
  return k;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  FKD_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::vector<uint64_t> Rng::DumpState() const {
  // Layout: 4 engine words, has_cached_normal flag, cached normal bits.
  uint64_t normal_bits = 0;
  static_assert(sizeof(normal_bits) == sizeof(cached_normal_));
  std::memcpy(&normal_bits, &cached_normal_, sizeof(normal_bits));
  return {state_[0], state_[1],
          state_[2], state_[3],
          has_cached_normal_ ? 1ULL : 0ULL, normal_bits};
}

bool Rng::RestoreState(const std::vector<uint64_t>& words) {
  if (words.size() != 6 || words[4] > 1) return false;
  for (size_t i = 0; i < 4; ++i) state_[i] = words[i];
  has_cached_normal_ = words[4] == 1;
  std::memcpy(&cached_normal_, &words[5], sizeof(cached_normal_));
  return true;
}

}  // namespace fkd
