#ifndef FKD_COMMON_STRING_UTIL_H_
#define FKD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fkd {

/// Splits `text` on the single character `sep`. Adjacent separators yield
/// empty fields (TSV semantics). An empty input yields one empty field.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace; never yields empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a non-negative decimal integer; returns false on any non-digit,
/// empty input, or overflow.
bool ParseUint64(std::string_view text, uint64_t* out);

/// Parses a double via strtod over the full token; returns false on
/// trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace fkd

#endif  // FKD_COMMON_STRING_UTIL_H_
