#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace fkd {
namespace internal {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel GetMinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_min_level.load() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace fkd
