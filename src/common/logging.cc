#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace fkd {
namespace internal {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Serialises writes to stderr so concurrent threads stay line-atomic.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// One-time FKD_LOG_LEVEL environment override of the minimum level.
void InitFromEnvironmentOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("FKD_LOG_LEVEL");
    LogLevel level;
    if (env != nullptr && ParseLogLevel(env, &level)) {
      g_min_level.store(static_cast<int>(level));
    }
  });
}

/// "2026-08-06T12:34:56.789Z" (UTC).
void FormatTimestamp(char* buffer, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buffer, size, "%s.%03dZ", date, static_cast<int>(millis));
}

}  // namespace

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr || level == nullptr) return false;
  std::string lower;
  for (const char* c = text; *c != '\0'; ++c) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*c)));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else if (lower == "fatal" || lower == "4") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

LogLevel GetMinLogLevel() {
  InitFromEnvironmentOnce();
  return static_cast<LogLevel>(g_min_level.load());
}

void SetMinLogLevel(LogLevel level) {
  InitFromEnvironmentOnce();  // An explicit call always wins over the env.
  g_min_level.store(static_cast<int>(level));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  InitFromEnvironmentOnce();
  enabled_ = static_cast<int>(level) >= g_min_level.load() ||
             level == LogLevel::kFatal;
  if (enabled_) {
    char timestamp[40];
    FormatTimestamp(timestamp, sizeof(timestamp));
    stream_ << "[" << timestamp << " " << LevelName(level) << " "
            << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    const std::string message = stream_.str();
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr << message;
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace fkd
