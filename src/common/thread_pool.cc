#include "common/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/logging.h"

namespace fkd {

namespace {

thread_local bool t_in_pool_worker = false;

constexpr size_t kMaxThreads = 256;

size_t ThreadsFromEnvironment() {
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t fallback = hw > 0 ? static_cast<size_t>(hw) : 1;
  if (const char* env = std::getenv("FKD_NUM_THREADS")) {
    // Accept only a complete, in-range positive decimal integer. Anything
    // else — garbage ("auto", "4x"), negatives, zero, or values that
    // overflow strtol (errno == ERANGE, where `parsed` would still look
    // positive) — falls back to hardware_concurrency with a warning rather
    // than silently mis-sizing the pool.
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    const bool complete = end != env && *end == '\0';
    if (complete && errno != ERANGE && parsed > 0) {
      if (static_cast<unsigned long>(parsed) > kMaxThreads) {
        FKD_LOG(Warning) << "FKD_NUM_THREADS=" << env << " exceeds the "
                         << kMaxThreads << "-thread cap; clamping";
        return kMaxThreads;
      }
      return static_cast<size_t>(parsed);
    }
    FKD_LOG(Warning) << "ignoring invalid FKD_NUM_THREADS=\"" << env
                     << "\"; using hardware_concurrency (" << fallback << ")";
  }
  return fallback;
}

// The global pool pointer. Reads on the kernel hot path use the lock-free
// acquire load; creation and ResetGlobal serialise on the mutex.
std::atomic<ThreadPool*> g_global_pool{nullptr};
std::mutex g_global_mutex;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::clamp<size_t>(num_threads, 1, kMaxThreads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    FKD_CHECK(queue_.empty()) << "ThreadPool destroyed with regions in flight";
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::unique_lock<std::mutex> lock(g_global_mutex);
  pool = g_global_pool.load(std::memory_order_acquire);
  if (pool == nullptr) {
    pool = new ThreadPool(ThreadsFromEnvironment());
    g_global_pool.store(pool, std::memory_order_release);
  }
  return *pool;
}

void ThreadPool::ResetGlobal(size_t num_threads) {
  std::unique_lock<std::mutex> lock(g_global_mutex);
  ThreadPool* fresh = new ThreadPool(
      num_threads > 0 ? num_threads : ThreadsFromEnvironment());
  ThreadPool* old = g_global_pool.exchange(fresh, std::memory_order_acq_rel);
  delete old;
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

size_t ThreadPool::NumChunks(size_t range, size_t grain) {
  if (range == 0) return 0;
  grain = std::max<size_t>(grain, 1);
  return (range + grain - 1) / grain;
}

size_t ThreadPool::CostAwareGrain(size_t cost_hint, size_t min_grain) {
  const size_t per_element = std::max<size_t>(cost_hint, 1);
  return std::max(std::max<size_t>(min_grain, 1),
                  kTargetChunkBytes / per_element);
}

bool ThreadPool::RunOneChunk(Region* region,
                             std::unique_lock<std::mutex>* lock) {
  if (region->next_chunk >= region->num_chunks) return false;
  const size_t chunk = region->next_chunk++;
  if (region->next_chunk >= region->num_chunks) {
    // Last chunk claimed: the region offers no further work, drop it from
    // the queue so workers stop considering it.
    auto it = std::find(queue_.begin(), queue_.end(), region);
    if (it != queue_.end()) queue_.erase(it);
  }
  lock->unlock();
  const size_t chunk_begin = region->begin + chunk * region->grain;
  const size_t chunk_end =
      std::min(region->end, chunk_begin + region->grain);
  (*region->fn)(chunk_begin, chunk_end);
  lock->lock();
  ++region->completed;
  if (region->completed == region->num_chunks) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Region* region = queue_.front();
    RunOneChunk(region, &lock);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<size_t>(grain, 1);
  const size_t num_chunks = NumChunks(end - begin, grain);
  // Serial fallbacks (single chunk, no spare threads, or nested inside a
  // pool worker) run the whole range as one call. The chunking contract in
  // the header makes this a scheduling-only difference: results are
  // bitwise-identical either way.
  if (num_chunks <= 1 || num_threads_ == 1 || t_in_pool_worker) {
    fn(begin, end);
    return;
  }

  Region region;
  region.fn = &fn;
  region.begin = begin;
  region.end = end;
  region.grain = grain;
  region.num_chunks = num_chunks;

  regions_.fetch_add(1, std::memory_order_relaxed);
  tasks_.fetch_add(num_chunks, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&region);
  // Wake only as many workers as could usefully claim a chunk (the
  // submitter takes chunks too). notify_all here woke the whole pool for
  // every region; on an oversubscribed host the futile wakeups turned
  // into context switches that made small parallel regions slower than
  // serial. Scheduling-only change: chunk bounds are untouched.
  const size_t wakeups =
      std::min(num_chunks - 1, workers_.size());
  for (size_t i = 0; i < wakeups; ++i) work_cv_.notify_one();
  // The submitter participates until the chunks run out, then waits for the
  // stragglers claimed by workers.
  while (RunOneChunk(&region, &lock)) {
  }
  done_cv_.wait(lock, [&region] {
    return region.completed == region.num_chunks;
  });
}

}  // namespace fkd
