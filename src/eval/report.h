#ifndef FKD_EVAL_REPORT_H_
#define FKD_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eval/experiment.h"

namespace fkd {
namespace eval {

/// Column-aligned plain-text table builder for bench output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header underline and right-padded columns.
  std::string Render() const;

  /// RFC-4180-ish CSV (no quoting; callers keep cells comma-free).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The node type a figure row group refers to.
enum class EntityKind { kArticle = 0, kCreator = 1, kSubject = 2 };
const char* EntityKindName(EntityKind kind);

/// Renders one figure panel group (e.g. Fig 4(a)-(d): articles) as four
/// metric series — one row per method, one column per theta — matching the
/// paper's plot layout. `granularity` picks the metric names.
std::string FormatFigureSeries(const std::vector<SweepResult>& results,
                               EntityKind kind, LabelGranularity granularity);

/// Writes the full sweep to CSV at `path`
/// (method,theta,entity,accuracy,precision,recall,f1).
Status WriteSweepCsv(const std::vector<SweepResult>& results,
                     const std::string& path);

/// Writes the full sweep as JSONL at `path`: one object per
/// (method, theta, entity) with accuracy/precision/recall/f1 plus the
/// cell's fold count and total wall time in seconds. This is the metrics
/// artifact ExperimentRunner emits when `metrics_jsonl_path` is set.
Status WriteSweepJsonl(const std::vector<SweepResult>& results,
                       const std::string& path);

}  // namespace eval
}  // namespace fkd

#endif  // FKD_EVAL_REPORT_H_
