#ifndef FKD_EVAL_METRICS_H_
#define FKD_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace fkd {
namespace eval {

/// K x K confusion matrix accumulated one (actual, predicted) pair at a
/// time; the source of every metric the paper reports.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes);

  void Add(int32_t actual, int32_t predicted);

  /// Adds a whole batch (vectors must be the same length).
  void AddAll(const std::vector<int32_t>& actual,
              const std::vector<int32_t>& predicted);

  size_t num_classes() const { return num_classes_; }
  size_t total() const { return total_; }
  int64_t Count(int32_t actual, int32_t predicted) const;

  int64_t TruePositives(int32_t cls) const;
  int64_t FalsePositives(int32_t cls) const;
  int64_t FalseNegatives(int32_t cls) const;

  /// Fraction of correct predictions (0 when empty).
  double Accuracy() const;

  /// Per-class precision/recall/F1. A class never predicted has precision
  /// 0; a class never occurring has recall 0 (sklearn's zero_division=0
  /// convention, which also yields the paper's near-zero macro scores for
  /// weak baselines).
  double Precision(int32_t cls) const;
  double Recall(int32_t cls) const;
  double F1(int32_t cls) const;

  /// Unweighted means over all classes.
  double MacroPrecision() const;
  double MacroRecall() const;
  double MacroF1() const;

  std::string ToString() const;

 private:
  size_t num_classes_;
  size_t total_ = 0;
  std::vector<int64_t> counts_;  // counts_[actual * k + predicted]
};

/// The four binary-classification numbers of Fig 4 (positive class = 1).
struct BinaryMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes Fig 4's metrics from a 2-class confusion matrix.
BinaryMetrics ComputeBinaryMetrics(const ConfusionMatrix& matrix);

/// The four multi-class numbers of Fig 5.
struct MultiClassMetrics {
  double accuracy = 0.0;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
};

/// Computes Fig 5's metrics from a K-class confusion matrix.
MultiClassMetrics ComputeMultiClassMetrics(const ConfusionMatrix& matrix);

}  // namespace eval
}  // namespace fkd

#endif  // FKD_EVAL_METRICS_H_
