#include "eval/metrics.h"

#include <sstream>

namespace fkd {
namespace eval {

ConfusionMatrix::ConfusionMatrix(size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
  FKD_CHECK_GE(num_classes, 2u);
}

void ConfusionMatrix::Add(int32_t actual, int32_t predicted) {
  FKD_CHECK_GE(actual, 0);
  FKD_CHECK_LT(static_cast<size_t>(actual), num_classes_);
  FKD_CHECK_GE(predicted, 0);
  FKD_CHECK_LT(static_cast<size_t>(predicted), num_classes_);
  ++counts_[static_cast<size_t>(actual) * num_classes_ +
            static_cast<size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::AddAll(const std::vector<int32_t>& actual,
                             const std::vector<int32_t>& predicted) {
  FKD_CHECK_EQ(actual.size(), predicted.size());
  for (size_t i = 0; i < actual.size(); ++i) Add(actual[i], predicted[i]);
}

int64_t ConfusionMatrix::Count(int32_t actual, int32_t predicted) const {
  FKD_CHECK_GE(actual, 0);
  FKD_CHECK_LT(static_cast<size_t>(actual), num_classes_);
  FKD_CHECK_GE(predicted, 0);
  FKD_CHECK_LT(static_cast<size_t>(predicted), num_classes_);
  return counts_[static_cast<size_t>(actual) * num_classes_ +
                 static_cast<size_t>(predicted)];
}

int64_t ConfusionMatrix::TruePositives(int32_t cls) const {
  return Count(cls, cls);
}

int64_t ConfusionMatrix::FalsePositives(int32_t cls) const {
  int64_t fp = 0;
  for (size_t actual = 0; actual < num_classes_; ++actual) {
    if (actual != static_cast<size_t>(cls)) {
      fp += Count(static_cast<int32_t>(actual), cls);
    }
  }
  return fp;
}

int64_t ConfusionMatrix::FalseNegatives(int32_t cls) const {
  int64_t fn = 0;
  for (size_t predicted = 0; predicted < num_classes_; ++predicted) {
    if (predicted != static_cast<size_t>(cls)) {
      fn += Count(cls, static_cast<int32_t>(predicted));
    }
  }
  return fn;
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  int64_t correct = 0;
  for (size_t c = 0; c < num_classes_; ++c) {
    correct += Count(static_cast<int32_t>(c), static_cast<int32_t>(c));
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int32_t cls) const {
  const int64_t tp = TruePositives(cls);
  const int64_t denominator = tp + FalsePositives(cls);
  return denominator == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(denominator);
}

double ConfusionMatrix::Recall(int32_t cls) const {
  const int64_t tp = TruePositives(cls);
  const int64_t denominator = tp + FalseNegatives(cls);
  return denominator == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(denominator);
}

double ConfusionMatrix::F1(int32_t cls) const {
  const double p = Precision(cls);
  const double r = Recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroPrecision() const {
  double total = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) {
    total += Precision(static_cast<int32_t>(c));
  }
  return total / static_cast<double>(num_classes_);
}

double ConfusionMatrix::MacroRecall() const {
  double total = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) {
    total += Recall(static_cast<int32_t>(c));
  }
  return total / static_cast<double>(num_classes_);
}

double ConfusionMatrix::MacroF1() const {
  double total = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) {
    total += F1(static_cast<int32_t>(c));
  }
  return total / static_cast<double>(num_classes_);
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "confusion (rows=actual, cols=predicted):\n";
  for (size_t a = 0; a < num_classes_; ++a) {
    for (size_t p = 0; p < num_classes_; ++p) {
      os << Count(static_cast<int32_t>(a), static_cast<int32_t>(p))
         << (p + 1 == num_classes_ ? "\n" : "\t");
    }
  }
  return os.str();
}

BinaryMetrics ComputeBinaryMetrics(const ConfusionMatrix& matrix) {
  FKD_CHECK_EQ(matrix.num_classes(), 2u);
  BinaryMetrics metrics;
  metrics.accuracy = matrix.Accuracy();
  metrics.precision = matrix.Precision(1);
  metrics.recall = matrix.Recall(1);
  metrics.f1 = matrix.F1(1);
  return metrics;
}

MultiClassMetrics ComputeMultiClassMetrics(const ConfusionMatrix& matrix) {
  MultiClassMetrics metrics;
  metrics.accuracy = matrix.Accuracy();
  metrics.macro_precision = matrix.MacroPrecision();
  metrics.macro_recall = matrix.MacroRecall();
  metrics.macro_f1 = matrix.MacroF1();
  return metrics;
}

}  // namespace eval
}  // namespace fkd
