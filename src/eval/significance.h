#ifndef FKD_EVAL_SIGNIFICANCE_H_
#define FKD_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fkd {
namespace eval {

/// Result of McNemar's paired test between two classifiers evaluated on
/// the same instances.
struct McNemarResult {
  /// Instances only classifier A got right / only B got right.
  int64_t only_a_correct = 0;
  int64_t only_b_correct = 0;
  /// Continuity-corrected chi-square statistic (0 when the discordant
  /// count is too small to test).
  double statistic = 0.0;
  /// Two-sided p-value under the chi-square(1) null (1.0 when untestable).
  double p_value = 1.0;
};

/// McNemar's test with continuity correction:
///   chi^2 = (|b - c| - 1)^2 / (b + c)
/// where b and c count the discordant pairs. Use to check whether the
/// accuracy difference between two methods on one test fold is
/// statistically meaningful rather than split luck.
Result<McNemarResult> McNemarTest(const std::vector<int32_t>& actual,
                                  const std::vector<int32_t>& predictions_a,
                                  const std::vector<int32_t>& predictions_b);

/// Survival function of the chi-square distribution with one degree of
/// freedom: P(X >= x) = erfc(sqrt(x / 2)).
double ChiSquare1SurvivalFunction(double x);

}  // namespace eval
}  // namespace fkd

#endif  // FKD_EVAL_SIGNIFICANCE_H_
