#ifndef FKD_EVAL_EXPERIMENT_H_
#define FKD_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/split.h"
#include "eval/classifier.h"
#include "eval/metrics.h"

namespace fkd {
namespace eval {

/// Configuration of one figure-style sweep (methods x sample ratios x CV
/// folds), mirroring §5.1.1.
struct ExperimentOptions {
  /// Cross-validation folds (paper: 10).
  size_t k_folds = 10;
  /// How many of the k folds to actually run (0 = all); benches run fewer
  /// folds at default scale to stay fast.
  size_t folds_to_run = 0;
  /// Training sample ratios theta (paper: 0.1 .. 1.0).
  std::vector<double> sample_ratios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  LabelGranularity granularity = LabelGranularity::kBinary;
  uint64_t seed = 7;
  /// Emit one INFO log line per completed (method, theta, fold) run.
  bool verbose = false;
};

/// The four figure metrics for one node type. For binary granularity these
/// are Accuracy/Precision/Recall/F1 on the positive class (Fig 4); for
/// multi granularity they are Accuracy/Macro-Precision/Macro-Recall/
/// Macro-F1 (Fig 5).
struct MetricsRow {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Fold-averaged result of one (method, theta) cell of a figure.
struct SweepResult {
  std::string method;
  double theta = 0.0;
  MetricsRow articles;
  MetricsRow creators;
  MetricsRow subjects;
  size_t folds = 0;
};

/// Runs registered methods through the paper's evaluation protocol on one
/// dataset: k-fold CV per node type, theta-subsampled training sets, test
/// evaluation of articles/creators/subjects separately.
class ExperimentRunner {
 public:
  /// The dataset must outlive the runner.
  ExperimentRunner(const data::Dataset& dataset, ExperimentOptions options);

  /// Registers a method; `factory` is invoked once per (theta, fold) run.
  void RegisterMethod(ClassifierFactory factory);

  /// Executes the full sweep. Results are ordered method-major, theta
  /// ascending within a method.
  Result<std::vector<SweepResult>> Run();

 private:
  const data::Dataset& dataset_;
  ExperimentOptions options_;
  std::vector<ClassifierFactory> factories_;
};

}  // namespace eval
}  // namespace fkd

#endif  // FKD_EVAL_EXPERIMENT_H_
