#ifndef FKD_EVAL_EXPERIMENT_H_
#define FKD_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/split.h"
#include "eval/classifier.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/observer.h"

namespace fkd {
namespace eval {

/// Configuration of one figure-style sweep (methods x sample ratios x CV
/// folds), mirroring §5.1.1.
struct ExperimentOptions {
  /// Cross-validation folds (paper: 10).
  size_t k_folds = 10;
  /// How many of the k folds to actually run (0 = all); benches run fewer
  /// folds at default scale to stay fast.
  size_t folds_to_run = 0;
  /// Training sample ratios theta (paper: 0.1 .. 1.0).
  std::vector<double> sample_ratios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  LabelGranularity granularity = LabelGranularity::kBinary;
  uint64_t seed = 7;
  /// Emit one INFO log line per completed (method, theta, fold) run.
  bool verbose = false;

  /// Emit one INFO progress line per completed (method, theta) cell with
  /// fold-averaged accuracy and wall time (coarser than `verbose`).
  bool progress = false;
  /// Forwarded to every classifier's TrainContext for per-epoch telemetry.
  /// Not owned; may be null.
  obs::TrainObserver* observer = nullptr;
  /// Registry receiving sweep counters and run-time histograms
  /// (fkd.experiment.runs, fkd.experiment.run_seconds, per method). Null
  /// means obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;
  /// When non-empty, Run() writes the sweep results as JSONL to this path
  /// (one row per method x theta x entity; see WriteSweepJsonl).
  std::string metrics_jsonl_path;
};

/// The four figure metrics for one node type. For binary granularity these
/// are Accuracy/Precision/Recall/F1 on the positive class (Fig 4); for
/// multi granularity they are Accuracy/Macro-Precision/Macro-Recall/
/// Macro-F1 (Fig 5).
struct MetricsRow {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Fold-averaged result of one (method, theta) cell of a figure.
struct SweepResult {
  std::string method;
  double theta = 0.0;
  MetricsRow articles;
  MetricsRow creators;
  MetricsRow subjects;
  size_t folds = 0;
  /// Total train+eval wall time across the cell's folds, seconds.
  double seconds = 0.0;
};

/// Runs registered methods through the paper's evaluation protocol on one
/// dataset: k-fold CV per node type, theta-subsampled training sets, test
/// evaluation of articles/creators/subjects separately.
class ExperimentRunner {
 public:
  /// The dataset must outlive the runner.
  ExperimentRunner(const data::Dataset& dataset, ExperimentOptions options);

  /// Registers a method; `factory` is invoked once per (theta, fold) run.
  void RegisterMethod(ClassifierFactory factory);

  /// Executes the full sweep. Results are ordered method-major, theta
  /// ascending within a method.
  Result<std::vector<SweepResult>> Run();

 private:
  const data::Dataset& dataset_;
  ExperimentOptions options_;
  std::vector<ClassifierFactory> factories_;
};

}  // namespace eval
}  // namespace fkd

#endif  // FKD_EVAL_EXPERIMENT_H_
