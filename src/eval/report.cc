#include "eval/report.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FKD_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  FKD_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t underline_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    underline_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(underline_width, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream os;
  os << Join(headers_, ",") << "\n";
  for (const auto& row : rows_) os << Join(row, ",") << "\n";
  return os.str();
}

const char* EntityKindName(EntityKind kind) {
  switch (kind) {
    case EntityKind::kArticle:
      return "article";
    case EntityKind::kCreator:
      return "creator";
    case EntityKind::kSubject:
      return "subject";
  }
  return "?";
}

namespace {

const MetricsRow& RowFor(const SweepResult& result, EntityKind kind) {
  switch (kind) {
    case EntityKind::kArticle:
      return result.articles;
    case EntityKind::kCreator:
      return result.creators;
    case EntityKind::kSubject:
      return result.subjects;
  }
  FKD_CHECK(false);
  return result.articles;
}

double MetricValue(const MetricsRow& row, size_t metric) {
  switch (metric) {
    case 0:
      return row.accuracy;
    case 1:
      return row.f1;
    case 2:
      return row.precision;
    default:
      return row.recall;
  }
}

}  // namespace

std::string FormatFigureSeries(const std::vector<SweepResult>& results,
                               EntityKind kind,
                               LabelGranularity granularity) {
  // Group by method, theta ascending.
  std::vector<std::string> method_order;
  std::map<std::string, std::vector<const SweepResult*>> by_method;
  std::set<double> thetas;
  for (const auto& result : results) {
    if (by_method.find(result.method) == by_method.end()) {
      method_order.push_back(result.method);
    }
    by_method[result.method].push_back(&result);
    thetas.insert(result.theta);
  }

  const bool binary = granularity == LabelGranularity::kBinary;
  const char* metric_names[4] = {
      "Accuracy", binary ? "F1" : "Macro-F1",
      binary ? "Precision" : "Macro-Precision",
      binary ? "Recall" : "Macro-Recall"};

  std::ostringstream os;
  for (size_t metric = 0; metric < 4; ++metric) {
    os << EntityKindName(kind) << " " << metric_names[metric]
       << " vs sample ratio\n";
    std::vector<std::string> headers = {"method"};
    for (double theta : thetas) headers.push_back(StrFormat("%g", theta));
    TextTable table(std::move(headers));
    for (const auto& method : method_order) {
      std::map<double, const SweepResult*> by_theta;
      for (const SweepResult* result : by_method[method]) {
        by_theta[result->theta] = result;
      }
      std::vector<std::string> cells = {method};
      for (double theta : thetas) {
        const auto it = by_theta.find(theta);
        cells.push_back(it == by_theta.end()
                            ? "-"
                            : StrFormat("%.3f", MetricValue(
                                                    RowFor(*it->second, kind),
                                                    metric)));
      }
      table.AddRow(std::move(cells));
    }
    os << table.Render() << "\n";
  }
  return os.str();
}

Status WriteSweepCsv(const std::vector<SweepResult>& results,
                     const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "method,theta,entity,accuracy,precision,recall,f1\n";
  for (const auto& result : results) {
    for (EntityKind kind : {EntityKind::kArticle, EntityKind::kCreator,
                            EntityKind::kSubject}) {
      const MetricsRow& row = RowFor(result, kind);
      out << result.method << ',' << StrFormat("%.2f", result.theta) << ','
          << EntityKindName(kind) << ',' << StrFormat("%.6f", row.accuracy)
          << ',' << StrFormat("%.6f", row.precision) << ','
          << StrFormat("%.6f", row.recall) << ','
          << StrFormat("%.6f", row.f1) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteSweepJsonl(const std::vector<SweepResult>& results,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const auto& result : results) {
    for (EntityKind kind : {EntityKind::kArticle, EntityKind::kCreator,
                            EntityKind::kSubject}) {
      const MetricsRow& row = RowFor(result, kind);
      out << StrFormat(
          "{\"method\":\"%s\",\"theta\":%.4g,\"entity\":\"%s\","
          "\"accuracy\":%.6f,\"precision\":%.6f,\"recall\":%.6f,"
          "\"f1\":%.6f,\"folds\":%zu,\"seconds\":%.6f}\n",
          result.method.c_str(), result.theta, EntityKindName(kind),
          row.accuracy, row.precision, row.recall, row.f1, result.folds,
          result.seconds);
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace eval
}  // namespace fkd
