#include "eval/significance.h"

#include <cmath>

namespace fkd {
namespace eval {

double ChiSquare1SurvivalFunction(double x) {
  if (x <= 0.0) return 1.0;
  return std::erfc(std::sqrt(x / 2.0));
}

Result<McNemarResult> McNemarTest(const std::vector<int32_t>& actual,
                                  const std::vector<int32_t>& predictions_a,
                                  const std::vector<int32_t>& predictions_b) {
  if (actual.size() != predictions_a.size() ||
      actual.size() != predictions_b.size()) {
    return Status::InvalidArgument("prediction vectors must align");
  }
  if (actual.empty()) {
    return Status::InvalidArgument("empty evaluation set");
  }

  McNemarResult result;
  for (size_t i = 0; i < actual.size(); ++i) {
    const bool a_correct = predictions_a[i] == actual[i];
    const bool b_correct = predictions_b[i] == actual[i];
    if (a_correct && !b_correct) ++result.only_a_correct;
    if (b_correct && !a_correct) ++result.only_b_correct;
  }

  const double discordant =
      static_cast<double>(result.only_a_correct + result.only_b_correct);
  if (discordant < 1.0) {
    // No disagreement: methods are indistinguishable on this fold.
    result.statistic = 0.0;
    result.p_value = 1.0;
    return result;
  }
  const double difference = std::fabs(
      static_cast<double>(result.only_a_correct - result.only_b_correct));
  const double corrected = std::max(0.0, difference - 1.0);
  result.statistic = corrected * corrected / discordant;
  result.p_value = ChiSquare1SurvivalFunction(result.statistic);
  return result;
}

}  // namespace eval
}  // namespace fkd
