#include "eval/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "eval/report.h"
#include "obs/trace.h"

namespace fkd {
namespace eval {

namespace {

/// Evaluates the test subset of one node type against predictions and
/// returns the four figure metrics.
MetricsRow EvaluateNodeType(const std::vector<int32_t>& test_ids,
                            const std::vector<int32_t>& actual_targets,
                            const std::vector<int32_t>& predicted,
                            LabelGranularity granularity) {
  ConfusionMatrix matrix(NumClasses(granularity));
  for (int32_t id : test_ids) {
    matrix.Add(actual_targets[id], predicted[id]);
  }
  MetricsRow row;
  if (granularity == LabelGranularity::kBinary) {
    const BinaryMetrics m = ComputeBinaryMetrics(matrix);
    row = {m.accuracy, m.precision, m.recall, m.f1};
  } else {
    const MultiClassMetrics m = ComputeMultiClassMetrics(matrix);
    row = {m.accuracy, m.macro_precision, m.macro_recall, m.macro_f1};
  }
  return row;
}

void Accumulate(MetricsRow* total, const MetricsRow& row) {
  total->accuracy += row.accuracy;
  total->precision += row.precision;
  total->recall += row.recall;
  total->f1 += row.f1;
}

void Scale(MetricsRow* total, double factor) {
  total->accuracy *= factor;
  total->precision *= factor;
  total->recall *= factor;
  total->f1 *= factor;
}

}  // namespace

ExperimentRunner::ExperimentRunner(const data::Dataset& dataset,
                                   ExperimentOptions options)
    : dataset_(dataset), options_(std::move(options)) {}

void ExperimentRunner::RegisterMethod(ClassifierFactory factory) {
  factories_.push_back(std::move(factory));
}

Result<std::vector<SweepResult>> ExperimentRunner::Run() {
  FKD_TRACE_SCOPE("experiment/run");
  if (factories_.empty()) {
    return Status::FailedPrecondition("no methods registered");
  }
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Default();
  FKD_RETURN_NOT_OK(dataset_.Validate());
  FKD_ASSIGN_OR_RETURN(auto graph, dataset_.BuildGraph());

  // Ground-truth targets, precomputed per granularity.
  std::vector<int32_t> article_targets(dataset_.articles.size());
  std::vector<int32_t> creator_targets(dataset_.creators.size());
  std::vector<int32_t> subject_targets(dataset_.subjects.size());
  for (const auto& a : dataset_.articles) {
    article_targets[a.id] = TargetOf(a.label, options_.granularity);
  }
  for (const auto& c : dataset_.creators) {
    creator_targets[c.id] = TargetOf(c.label, options_.granularity);
  }
  for (const auto& s : dataset_.subjects) {
    subject_targets[s.id] = TargetOf(s.label, options_.granularity);
  }

  Rng split_rng(options_.seed);
  FKD_ASSIGN_OR_RETURN(
      auto splits,
      data::KFoldTriSplits(dataset_.articles.size(), dataset_.creators.size(),
                           dataset_.subjects.size(), options_.k_folds,
                           &split_rng));
  size_t folds_to_run = options_.folds_to_run == 0
                            ? splits.size()
                            : std::min(options_.folds_to_run, splits.size());

  std::vector<SweepResult> results;
  for (size_t m = 0; m < factories_.size(); ++m) {
    for (double theta : options_.sample_ratios) {
      SweepResult cell;
      cell.theta = theta;
      cell.folds = folds_to_run;
      WallTimer cell_timer;
      for (size_t fold = 0; fold < folds_to_run; ++fold) {
        FKD_TRACE_SCOPE("experiment/fold");
        const data::TriSplit& split = splits[fold];
        // Deterministic per-(method, theta, fold) randomness.
        const uint64_t run_seed =
            options_.seed * 1000003ULL + m * 10007ULL + fold * 101ULL +
            static_cast<uint64_t>(theta * 100.0);
        Rng run_rng(run_seed);

        TrainContext context;
        context.dataset = &dataset_;
        context.graph = &graph;
        context.granularity = options_.granularity;
        context.seed = run_seed;
        context.train_articles =
            data::SubsampleTraining(split.articles.train, theta, &run_rng);
        context.train_creators =
            data::SubsampleTraining(split.creators.train, theta, &run_rng);
        context.train_subjects =
            data::SubsampleTraining(split.subjects.train, theta, &run_rng);
        context.observer = options_.observer;

        std::unique_ptr<CredibilityClassifier> classifier = factories_[m]();
        FKD_CHECK(classifier != nullptr);
        if (cell.method.empty()) cell.method = classifier->Name();

        WallTimer timer;
        FKD_RETURN_NOT_OK(classifier->Train(context));
        FKD_ASSIGN_OR_RETURN(Predictions predictions, classifier->Predict());
        if (predictions.articles.size() != dataset_.articles.size() ||
            predictions.creators.size() != dataset_.creators.size() ||
            predictions.subjects.size() != dataset_.subjects.size()) {
          return Status::Internal(classifier->Name() +
                                  ": prediction vector size mismatch");
        }

        Accumulate(&cell.articles,
                   EvaluateNodeType(split.articles.test, article_targets,
                                    predictions.articles,
                                    options_.granularity));
        Accumulate(&cell.creators,
                   EvaluateNodeType(split.creators.test, creator_targets,
                                    predictions.creators,
                                    options_.granularity));
        Accumulate(&cell.subjects,
                   EvaluateNodeType(split.subjects.test, subject_targets,
                                    predictions.subjects,
                                    options_.granularity));
        const double run_seconds = timer.ElapsedSeconds();
        registry.GetCounter("fkd.experiment.runs", {{"method", cell.method}})
            ->Increment();
        registry
            .GetHistogram("fkd.experiment.run_seconds",
                          {{"method", cell.method}})
            ->Observe(run_seconds);
        if (options_.verbose) {
          FKD_LOG(Info) << cell.method << " theta=" << theta
                        << " fold=" << fold << " done in " << run_seconds
                        << "s";
        }
      }
      cell.seconds = cell_timer.ElapsedSeconds();
      const double inverse_folds = 1.0 / static_cast<double>(folds_to_run);
      Scale(&cell.articles, inverse_folds);
      Scale(&cell.creators, inverse_folds);
      Scale(&cell.subjects, inverse_folds);
      if (options_.progress) {
        FKD_LOG(Info) << StrFormat(
            "[%zu/%zu] %s theta=%.2f: article_acc=%.3f (%zu folds, %.2fs)",
            results.size() + 1,
            factories_.size() * options_.sample_ratios.size(),
            cell.method.c_str(), theta, cell.articles.accuracy, cell.folds,
            cell.seconds);
      }
      results.push_back(std::move(cell));
    }
  }
  if (!options_.metrics_jsonl_path.empty()) {
    FKD_RETURN_NOT_OK(WriteSweepJsonl(results, options_.metrics_jsonl_path));
    FKD_LOG(Info) << "sweep metrics written to "
                  << options_.metrics_jsonl_path;
  }
  return results;
}

}  // namespace eval
}  // namespace fkd
