#ifndef FKD_EVAL_CLASSIFIER_H_
#define FKD_EVAL_CLASSIFIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "graph/hetero_graph.h"
#include "obs/observer.h"

namespace fkd {
namespace eval {

/// Whether an experiment runs the bi-class grouping (Fig 4) or the raw
/// 6-class problem (Fig 5).
enum class LabelGranularity { kBinary = 0, kMulti = 1 };

inline size_t NumClasses(LabelGranularity granularity) {
  return granularity == LabelGranularity::kBinary
             ? data::kNumBiClasses
             : data::kNumCredibilityClasses;
}

/// Maps a ground-truth label to the experiment's target class id.
inline int32_t TargetOf(data::CredibilityLabel label,
                        LabelGranularity granularity) {
  return granularity == LabelGranularity::kBinary ? data::BiClassOf(label)
                                                  : data::MultiClassOf(label);
}

/// Everything a method may use for training one run: the full dataset and
/// graph (the setting is transductive — texts and structure of every node
/// are visible) plus the indices whose labels are revealed.
struct TrainContext {
  const data::Dataset* dataset = nullptr;
  const graph::HeterogeneousGraph* graph = nullptr;
  std::vector<int32_t> train_articles;
  std::vector<int32_t> train_creators;
  std::vector<int32_t> train_subjects;
  LabelGranularity granularity = LabelGranularity::kBinary;
  uint64_t seed = 0;

  /// Optional training telemetry sink (per-epoch loss/timing callbacks).
  /// Not owned; may be null. Trainers report through
  /// obs::NotifyTrainBegin/NotifyEpochEnd/NotifyTrainEnd.
  obs::TrainObserver* observer = nullptr;

  /// Revealed target of a training node.
  int32_t ArticleTarget(int32_t id) const {
    return TargetOf(dataset->articles[id].label, granularity);
  }
  int32_t CreatorTarget(int32_t id) const {
    return TargetOf(dataset->creators[id].label, granularity);
  }
  int32_t SubjectTarget(int32_t id) const {
    return TargetOf(dataset->subjects[id].label, granularity);
  }
};

/// Predicted class ids for every node of each type (indexed by node id).
struct Predictions {
  std::vector<int32_t> articles;
  std::vector<int32_t> creators;
  std::vector<int32_t> subjects;
};

/// Common interface of FakeDetector and every baseline, so the experiment
/// harness can sweep methods x sample-ratios x folds uniformly.
///
/// Protocol: one Train() per instance, then Predict(). Instances are
/// single-use (the harness constructs a fresh one per run via a factory).
class CredibilityClassifier {
 public:
  virtual ~CredibilityClassifier() = default;

  /// Short method name as it appears in the paper's legends
  /// ("FakeDetector", "deepwalk", "line", "lp", "rnn", "svm").
  virtual std::string Name() const = 0;

  virtual Status Train(const TrainContext& context) = 0;

  /// Predicts all nodes (the harness evaluates the test subset).
  virtual Result<Predictions> Predict() = 0;
};

/// Constructs a fresh classifier for one (fold, theta) run.
using ClassifierFactory =
    std::function<std::unique_ptr<CredibilityClassifier>()>;

}  // namespace eval
}  // namespace fkd

#endif  // FKD_EVAL_CLASSIFIER_H_
