#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace obs {

namespace {

/// Minimal JSON string escaping: instrument names and label values are
/// plain identifiers in practice, but quotes/backslashes must not break
/// the exporter output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "null";
  // %.17g round-trips doubles; trim the common integer case for readability.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string Identity(const std::string& name, const Labels& canonical) {
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (i > 0) key += ',';
    key += canonical[i].first;
    key += '=';
    key += canonical[i].second;
  }
  key += '}';
  return key;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(labels[i].first);
    out += "\":\"";
    out += JsonEscape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

size_t NumExponents(const HistogramOptions& options) {
  return static_cast<size_t>(
      std::max(1.0, std::ceil(std::log2(options.max_value))));
}

size_t NumBucketsFor(const HistogramOptions& options) {
  // underflow (< 1) + log-linear range + overflow (>= 2^E).
  return 1 + NumExponents(options) * options.sub_buckets + 1;
}

/// Percentile over a raw bucket array — shared by live histograms and
/// snapshots. Linear interpolation within the owning bucket, clamped to
/// the exact observed [min, max].
double PercentileImpl(const HistogramOptions& options,
                      const std::vector<uint64_t>& counts, uint64_t count,
                      double min, double max, double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const std::vector<double> bounds = BucketBoundsFor(options);
  const double rank = p * static_cast<double>(count);
  uint64_t seen = 0;
  double lower = 0.0;
  for (size_t bucket = 0; bucket < counts.size(); ++bucket) {
    const double upper = std::isinf(bounds[bucket]) ? max : bounds[bucket];
    if (counts[bucket] > 0) {
      if (static_cast<double>(seen + counts[bucket]) >= rank) {
        const double lo = std::max(lower, min);
        const double hi = std::min(upper, max);
        if (hi <= lo) return lo;
        const double within = (rank - static_cast<double>(seen)) /
                              static_cast<double>(counts[bucket]);
        return lo + within * (hi - lo);
      }
      seen += counts[bucket];
    }
    lower = bounds[bucket];
  }
  return max;
}

}  // namespace

std::vector<double> BucketBoundsFor(const HistogramOptions& options) {
  const size_t num_exponents = NumExponents(options);
  const double sub = static_cast<double>(options.sub_buckets);
  std::vector<double> bounds;
  bounds.reserve(NumBucketsFor(options));
  bounds.push_back(1.0);  // underflow bucket covers [0, 1)
  for (size_t e = 0; e < num_exponents; ++e) {
    const double base = std::ldexp(1.0, static_cast<int>(e));  // 2^e
    for (size_t s = 0; s < options.sub_buckets; ++s) {
      bounds.push_back(base * (1.0 + static_cast<double>(s + 1) / sub));
    }
  }
  bounds.push_back(std::numeric_limits<double>::infinity());
  return bounds;
}

// ---- Counter / Gauge --------------------------------------------------------

void Counter::Increment(double delta) {
  FKD_DCHECK(delta >= 0.0);
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      num_exponents_(NumExponents(options)),
      counts_(NumBucketsFor(options)) {
  FKD_CHECK_GT(options_.max_value, 1.0);
  FKD_CHECK_GT(options_.sub_buckets, 0u);
}

size_t Histogram::BucketIndex(double value) const {
  if (!(value >= 1.0)) return 0;  // underflow; also catches NaN/negative
  int exp2 = 0;
  const double mantissa = std::frexp(value, &exp2);  // value = m * 2^e, m in [0.5,1)
  const size_t exponent = static_cast<size_t>(exp2 - 1);
  if (exponent >= num_exponents_) return counts_.size() - 1;  // overflow
  // mantissa*2 - 1 maps [2^e, 2^{e+1}) onto [0, 1) linearly.
  size_t sub = static_cast<size_t>((mantissa * 2.0 - 1.0) *
                                   static_cast<double>(options_.sub_buckets));
  sub = std::min(sub, options_.sub_buckets - 1);
  return 1 + exponent * options_.sub_buckets + sub;
}

void Histogram::Observe(double value) {
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
  // min_/max_ start at +/-infinity, so the first observation wins the
  // check like any other; the common steady-state case is a relaxed load
  // plus a failed comparison, no RMW. Plain CAS races are fine because the
  // extremes only move monotonically.
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo &&
         !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi &&
         !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  return Snapshot().Percentile(p);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.options = options_;
  snapshot.counts.resize(counts_.size());
  // Read buckets first, then the summary stats: a concurrent Observe may
  // land between the two reads, so count >= sum(buckets) — never the
  // reverse, which keeps percentile ranks conservative.
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
    bucket_total += snapshot.counts[i];
  }
  snapshot.count = bucket_total;
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  if (bucket_total > 0) {
    snapshot.min = min_.load(std::memory_order_relaxed);
    snapshot.max = max_.load(std::memory_order_relaxed);
  }
  return snapshot;
}

std::vector<double> Histogram::BucketBounds() const {
  return BucketBoundsFor(options_);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  return PercentileImpl(options, counts, count, min, max, p);
}

HistogramSnapshot SnapshotDelta(const HistogramSnapshot& current,
                                const HistogramSnapshot& previous) {
  FKD_CHECK_EQ(current.counts.size(), previous.counts.size())
      << "snapshot delta across different bucket layouts";
  HistogramSnapshot delta;
  delta.options = current.options;
  delta.counts.resize(current.counts.size());
  uint64_t total = 0;
  for (size_t i = 0; i < current.counts.size(); ++i) {
    const uint64_t cur = current.counts[i];
    const uint64_t prev = previous.counts[i];
    delta.counts[i] = cur > prev ? cur - prev : 0;
    total += delta.counts[i];
  }
  delta.count = total;
  delta.sum = current.sum - previous.sum;
  if (total == 0) return delta;
  // Exact window extremes are not tracked; approximate them from the
  // outermost non-empty delta buckets so interpolation stays bounded.
  const std::vector<double> bounds = BucketBoundsFor(delta.options);
  size_t first = 0;
  while (delta.counts[first] == 0) ++first;
  size_t last = delta.counts.size() - 1;
  while (delta.counts[last] == 0) --last;
  delta.min = first == 0 ? std::max(0.0, current.min) : bounds[first - 1];
  delta.max = std::isinf(bounds[last]) ? current.max : bounds[last];
  if (delta.max < delta.min) delta.max = delta.min;
  return delta;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const Labels& labels) {
  Labels canonical = Canonicalize(labels);
  std::string key = Identity(name, canonical);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.name = name;
    instrument.labels = std::move(canonical);
    it = instruments_.emplace(std::move(key), std::move(instrument)).first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument* instrument = FindOrCreate(name, labels);
  FKD_CHECK(instrument->gauge == nullptr && instrument->histogram == nullptr)
      << name << " already registered as a different instrument kind";
  if (instrument->counter == nullptr) {
    instrument->counter = std::make_unique<Counter>();
  }
  return instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument* instrument = FindOrCreate(name, labels);
  FKD_CHECK(instrument->counter == nullptr && instrument->histogram == nullptr)
      << name << " already registered as a different instrument kind";
  if (instrument->gauge == nullptr) {
    instrument->gauge = std::make_unique<Gauge>();
  }
  return instrument->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument* instrument = FindOrCreate(name, labels);
  FKD_CHECK(instrument->counter == nullptr && instrument->gauge == nullptr)
      << name << " already registered as a different instrument kind";
  if (instrument->histogram == nullptr) {
    instrument->histogram = std::make_unique<Histogram>(options);
  }
  return instrument->histogram.get();
}

std::vector<InstrumentView> MetricsRegistry::Views() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<InstrumentView> views;
  views.reserve(instruments_.size());
  for (const auto& [key, instrument] : instruments_) {
    InstrumentView view;
    view.identity = key;
    view.name = instrument.name;
    view.labels = instrument.labels;
    if (instrument.counter != nullptr) {
      view.kind = InstrumentKind::kCounter;
      view.counter = instrument.counter.get();
    } else if (instrument.gauge != nullptr) {
      view.kind = InstrumentKind::kGauge;
      view.gauge = instrument.gauge.get();
    } else if (instrument.histogram != nullptr) {
      view.kind = InstrumentKind::kHistogram;
      view.histogram = instrument.histogram.get();
    } else {
      continue;  // placeholder created but never typed; skip
    }
    views.push_back(std::move(view));
  }
  return views;
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [key, instrument] : instruments_) {
    out << key << " ";
    if (instrument.counter != nullptr) {
      out << "counter " << FormatNumber(instrument.counter->Value());
    } else if (instrument.gauge != nullptr) {
      out << "gauge " << FormatNumber(instrument.gauge->Value());
    } else if (instrument.histogram != nullptr) {
      const HistogramSnapshot h = instrument.histogram->Snapshot();
      out << "histogram count=" << h.count << " sum=" << FormatNumber(h.sum)
          << " min=" << FormatNumber(h.min) << " max=" << FormatNumber(h.max)
          << " mean=" << FormatNumber(h.Mean())
          << " p50=" << FormatNumber(h.Percentile(0.5))
          << " p95=" << FormatNumber(h.Percentile(0.95))
          << " p99=" << FormatNumber(h.Percentile(0.99))
          << " p999=" << FormatNumber(h.Percentile(0.999));
    }
    out << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ExportJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [key, instrument] : instruments_) {
    out << "{\"name\":\"" << JsonEscape(instrument.name) << "\",\"labels\":"
        << LabelsJson(instrument.labels) << ",";
    if (instrument.counter != nullptr) {
      out << "\"type\":\"counter\",\"value\":"
          << FormatNumber(instrument.counter->Value());
    } else if (instrument.gauge != nullptr) {
      out << "\"type\":\"gauge\",\"value\":"
          << FormatNumber(instrument.gauge->Value());
    } else if (instrument.histogram != nullptr) {
      const HistogramSnapshot h = instrument.histogram->Snapshot();
      out << "\"type\":\"histogram\",\"count\":" << h.count
          << ",\"sum\":" << FormatNumber(h.sum)
          << ",\"min\":" << FormatNumber(h.min)
          << ",\"max\":" << FormatNumber(h.max)
          << ",\"mean\":" << FormatNumber(h.Mean())
          << ",\"p50\":" << FormatNumber(h.Percentile(0.5))
          << ",\"p95\":" << FormatNumber(h.Percentile(0.95))
          << ",\"p99\":" << FormatNumber(h.Percentile(0.99))
          << ",\"p999\":" << FormatNumber(h.Percentile(0.999))
          << ",\"buckets\":[";
      const auto bounds = BucketBoundsFor(h.options);
      bool first = true;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;  // Sparse: empty buckets are implicit.
        if (!first) out << ",";
        first = false;
        out << "[" << (std::isinf(bounds[i]) ? std::string("\"inf\"")
                                             : FormatNumber(bounds[i]))
            << "," << h.counts[i] << "]";
      }
      out << "]";
    }
    out << "}\n";
  }
  return out.str();
}

Status MetricsRegistry::WriteJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << ExportJsonl();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, instrument] : instruments_) {
    if (instrument.counter != nullptr) instrument.counter->Reset();
    if (instrument.gauge != nullptr) instrument.gauge->Set(0.0);
    if (instrument.histogram != nullptr) instrument.histogram->Reset();
  }
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instruments_.size();
}

// ---- JSONL re-parse ---------------------------------------------------------

namespace {

/// Extracts the raw token after "key": in a flat JSON object line.
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t start = pos + needle.size();
  if (start >= line.size()) return false;
  if (line[start] == '"') {
    const size_t end = line.find('"', start + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(start + 1, end - start - 1);
    return true;
  }
  size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(start, end - start);
  return true;
}

}  // namespace

Result<MetricRecord> ParseMetricJsonl(const std::string& line) {
  MetricRecord record;
  if (!ExtractField(line, "name", &record.name)) {
    return Status::Corruption("metric line missing name: " + line);
  }
  if (!ExtractField(line, "type", &record.type)) {
    return Status::Corruption("metric line missing type: " + line);
  }
  // Labels object: parse "k":"v" pairs between the braces after "labels":.
  const size_t labels_pos = line.find("\"labels\":{");
  if (labels_pos != std::string::npos) {
    size_t cursor = labels_pos + 10;
    const size_t close = line.find('}', cursor);
    while (cursor < close) {
      const size_t k0 = line.find('"', cursor);
      if (k0 == std::string::npos || k0 >= close) break;
      const size_t k1 = line.find('"', k0 + 1);
      const size_t v0 = line.find('"', k1 + 1);
      const size_t v1 = line.find('"', v0 + 1);
      if (k1 == std::string::npos || v0 == std::string::npos ||
          v1 == std::string::npos || v1 > close) {
        break;
      }
      record.labels.emplace_back(line.substr(k0 + 1, k1 - k0 - 1),
                                 line.substr(v0 + 1, v1 - v0 - 1));
      cursor = v1 + 1;
    }
  }
  std::string token;
  if (record.type == "histogram") {
    uint64_t count = 0;
    if (!ExtractField(line, "count", &token) || !ParseUint64(token, &count)) {
      return Status::Corruption("histogram line missing count: " + line);
    }
    record.count = count;
    double sum = 0.0;
    if (!ExtractField(line, "sum", &token) || !ParseDouble(token, &sum)) {
      return Status::Corruption("histogram line missing sum: " + line);
    }
    record.sum = sum;
  } else {
    double value = 0.0;
    if (!ExtractField(line, "value", &token) || !ParseDouble(token, &value)) {
      return Status::Corruption("metric line missing value: " + line);
    }
    record.value = value;
  }
  return record;
}

}  // namespace obs
}  // namespace fkd
