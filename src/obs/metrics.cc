#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace obs {

namespace {

/// Minimal JSON string escaping: instrument names and label values are
/// plain identifiers in practice, but quotes/backslashes must not break
/// the exporter output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "null";
  // %.17g round-trips doubles; trim the common integer case for readability.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string Identity(const std::string& name, const Labels& canonical) {
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (i > 0) key += ',';
    key += canonical[i].first;
    key += '=';
    key += canonical[i].second;
  }
  key += '}';
  return key;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(labels[i].first);
    out += "\":\"";
    out += JsonEscape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

// ---- Counter / Gauge --------------------------------------------------------

void Counter::Increment(double delta) {
  FKD_DCHECK(delta >= 0.0);
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(HistogramOptions options) : options_(options) {
  FKD_CHECK_GT(options_.first_bound, 0.0);
  FKD_CHECK_GT(options_.growth, 1.0);
  FKD_CHECK_GT(options_.num_buckets, 0u);
  counts_.assign(options_.num_buckets + 1, 0);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bucket = 0;
  double bound = options_.first_bound;
  while (bucket < options_.num_buckets && value > bound) {
    bound *= options_.growth;
    ++bucket;
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(count_);
  uint64_t seen = 0;
  double lower = 0.0;
  double bound = options_.first_bound;
  for (size_t bucket = 0; bucket < counts_.size(); ++bucket) {
    const bool overflow = bucket == counts_.size() - 1;
    const double upper =
        overflow ? std::max(max_, bound / options_.growth) : bound;
    if (counts_[bucket] > 0) {
      if (static_cast<double>(seen + counts_[bucket]) >= rank) {
        // Clamp interpolation to the observed range.
        const double lo = std::max(lower, min_);
        const double hi = std::min(upper, max_);
        if (hi <= lo) return lo;
        const double within =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(counts_[bucket]);
        return lo + within * (hi - lo);
      }
      seen += counts_[bucket];
    }
    lower = bound;
    bound *= options_.growth;
  }
  return max_;
}

std::vector<double> Histogram::BucketBounds() const {
  std::vector<double> bounds;
  bounds.reserve(options_.num_buckets + 1);
  double bound = options_.first_bound;
  for (size_t i = 0; i < options_.num_buckets; ++i) {
    bounds.push_back(bound);
    bound *= options_.growth;
  }
  bounds.push_back(std::numeric_limits<double>::infinity());
  return bounds;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const Labels& labels) {
  Labels canonical = Canonicalize(labels);
  std::string key = Identity(name, canonical);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.name = name;
    instrument.labels = std::move(canonical);
    it = instruments_.emplace(std::move(key), std::move(instrument)).first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument* instrument = FindOrCreate(name, labels);
  FKD_CHECK(instrument->gauge == nullptr && instrument->histogram == nullptr)
      << name << " already registered as a different instrument kind";
  if (instrument->counter == nullptr) {
    instrument->counter = std::make_unique<Counter>();
  }
  return instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument* instrument = FindOrCreate(name, labels);
  FKD_CHECK(instrument->counter == nullptr && instrument->histogram == nullptr)
      << name << " already registered as a different instrument kind";
  if (instrument->gauge == nullptr) {
    instrument->gauge = std::make_unique<Gauge>();
  }
  return instrument->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument* instrument = FindOrCreate(name, labels);
  FKD_CHECK(instrument->counter == nullptr && instrument->gauge == nullptr)
      << name << " already registered as a different instrument kind";
  if (instrument->histogram == nullptr) {
    instrument->histogram = std::make_unique<Histogram>(options);
  }
  return instrument->histogram.get();
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [key, instrument] : instruments_) {
    out << key << " ";
    if (instrument.counter != nullptr) {
      out << "counter " << FormatNumber(instrument.counter->Value());
    } else if (instrument.gauge != nullptr) {
      out << "gauge " << FormatNumber(instrument.gauge->Value());
    } else if (instrument.histogram != nullptr) {
      const Histogram& h = *instrument.histogram;
      out << "histogram count=" << h.Count() << " sum=" << FormatNumber(h.Sum())
          << " min=" << FormatNumber(h.Min()) << " max=" << FormatNumber(h.Max())
          << " mean=" << FormatNumber(h.Mean())
          << " p50=" << FormatNumber(h.Percentile(0.5))
          << " p95=" << FormatNumber(h.Percentile(0.95));
    }
    out << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ExportJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [key, instrument] : instruments_) {
    out << "{\"name\":\"" << JsonEscape(instrument.name) << "\",\"labels\":"
        << LabelsJson(instrument.labels) << ",";
    if (instrument.counter != nullptr) {
      out << "\"type\":\"counter\",\"value\":"
          << FormatNumber(instrument.counter->Value());
    } else if (instrument.gauge != nullptr) {
      out << "\"type\":\"gauge\",\"value\":"
          << FormatNumber(instrument.gauge->Value());
    } else if (instrument.histogram != nullptr) {
      const Histogram& h = *instrument.histogram;
      out << "\"type\":\"histogram\",\"count\":" << h.Count()
          << ",\"sum\":" << FormatNumber(h.Sum())
          << ",\"min\":" << FormatNumber(h.Min())
          << ",\"max\":" << FormatNumber(h.Max())
          << ",\"mean\":" << FormatNumber(h.Mean())
          << ",\"p50\":" << FormatNumber(h.Percentile(0.5))
          << ",\"p95\":" << FormatNumber(h.Percentile(0.95))
          << ",\"buckets\":[";
      const auto bounds = h.BucketBounds();
      const auto counts = h.BucketCounts();
      bool first = true;
      for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;  // Sparse: empty buckets are implicit.
        if (!first) out << ",";
        first = false;
        out << "[" << (std::isinf(bounds[i]) ? std::string("\"inf\"")
                                             : FormatNumber(bounds[i]))
            << "," << counts[i] << "]";
      }
      out << "]";
    }
    out << "}\n";
  }
  return out.str();
}

Status MetricsRegistry::WriteJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << ExportJsonl();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, instrument] : instruments_) {
    if (instrument.counter != nullptr) instrument.counter->Reset();
    if (instrument.gauge != nullptr) instrument.gauge->Set(0.0);
    if (instrument.histogram != nullptr) instrument.histogram->Reset();
  }
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instruments_.size();
}

// ---- JSONL re-parse ---------------------------------------------------------

namespace {

/// Extracts the raw token after "key": in a flat JSON object line.
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t start = pos + needle.size();
  if (start >= line.size()) return false;
  if (line[start] == '"') {
    const size_t end = line.find('"', start + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(start + 1, end - start - 1);
    return true;
  }
  size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(start, end - start);
  return true;
}

}  // namespace

Result<MetricRecord> ParseMetricJsonl(const std::string& line) {
  MetricRecord record;
  if (!ExtractField(line, "name", &record.name)) {
    return Status::Corruption("metric line missing name: " + line);
  }
  if (!ExtractField(line, "type", &record.type)) {
    return Status::Corruption("metric line missing type: " + line);
  }
  // Labels object: parse "k":"v" pairs between the braces after "labels":.
  const size_t labels_pos = line.find("\"labels\":{");
  if (labels_pos != std::string::npos) {
    size_t cursor = labels_pos + 10;
    const size_t close = line.find('}', cursor);
    while (cursor < close) {
      const size_t k0 = line.find('"', cursor);
      if (k0 == std::string::npos || k0 >= close) break;
      const size_t k1 = line.find('"', k0 + 1);
      const size_t v0 = line.find('"', k1 + 1);
      const size_t v1 = line.find('"', v0 + 1);
      if (k1 == std::string::npos || v0 == std::string::npos ||
          v1 == std::string::npos || v1 > close) {
        break;
      }
      record.labels.emplace_back(line.substr(k0 + 1, k1 - k0 - 1),
                                 line.substr(v0 + 1, v1 - v0 - 1));
      cursor = v1 + 1;
    }
  }
  std::string token;
  if (record.type == "histogram") {
    uint64_t count = 0;
    if (!ExtractField(line, "count", &token) || !ParseUint64(token, &count)) {
      return Status::Corruption("histogram line missing count: " + line);
    }
    record.count = count;
    double sum = 0.0;
    if (!ExtractField(line, "sum", &token) || !ParseDouble(token, &sum)) {
      return Status::Corruption("histogram line missing sum: " + line);
    }
    record.sum = sum;
  } else {
    double value = 0.0;
    if (!ExtractField(line, "value", &token) || !ParseDouble(token, &value)) {
      return Status::Corruption("metric line missing value: " + line);
    }
    record.value = value;
  }
  return record;
}

}  // namespace obs
}  // namespace fkd
