#ifndef FKD_OBS_FLIGHT_RECORDER_H_
#define FKD_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fkd {
namespace obs {

/// What happened. Values are stable (they appear in dump files); append
/// only.
enum class FlightEventType : uint32_t {
  kNone = 0,
  // Request lifecycle (a = request id, b = detail).
  kRequestSubmit = 1,    ///< b = deadline budget in us (0 = none)
  kCacheHit = 2,         ///< b = model version
  kCacheMiss = 3,
  kEngineEnqueue = 4,    ///< b = queue depth after enqueue
  kEngineReject = 5,     ///< b = queue depth at rejection
  kEngineShed = 6,       ///< b = breaker state
  kRequestComplete = 7,  ///< b = total latency us
  kRequestDeadline = 8,  ///< b = total latency us
  kRequestFailed = 9,    ///< b = total latency us
  kRequestUnavailable = 10,  ///< engine stopped with request still queued
  // Batch / engine (a = batch size, b = detail).
  kBatchStart = 20,      ///< b = model version
  kBatchEnd = 21,        ///< b = compute us
  kBatchRetry = 22,      ///< b = attempt number
  kBatchFailed = 23,     ///< b = model version
  kBreakerOpen = 24,     ///< a = consecutive failures
  kBreakerClose = 25,
  kEngineStart = 26,     ///< a = worker count
  kEngineStop = 27,      ///< a = drained queue depth
  // Model / swap lifecycle (a = version, b = detail).
  kModelPublish = 40,
  kModelRetire = 41,
  kSwapBegin = 42,
  kSwapEnd = 43,         ///< b = new active version
  kCanaryStart = 44,     ///< b = permille
  kCanaryStop = 45,      ///< b = 1 if promoted
  kModelDemote = 46,     ///< b = bytes released to the disk tier
  kModelPromote = 47,    ///< b = bytes re-charged on promotion
  // Faults (a = site hash, b = action).
  kFault = 60,
  // Network front end (src/net).
  kConnAccept = 70,        ///< a = connection id, b = event-loop index
  kConnClose = 71,         ///< a = connection id, b = 1 if idle-swept
  kNetShed = 72,           ///< a = request id, b = depth/inflight at shed
  kNetProtocolError = 73,  ///< a = connection id, b = frame type (0 = framing)
  kServerStart = 74,       ///< a = bound port, b = event loops
  kServerStop = 75,        ///< a = responses dropped on dead connections
  // Fault tolerance on the wire (quarantine, deadline shed, accept pause).
  kNetAcceptPause = 80,    ///< a = consecutive failures, b = pause ms
  kNetDeadlineShed = 81,   ///< a = request id, b = us past the deadline
  kReplicaQuarantine = 82, ///< a = engine index, b = failure permille
  kReplicaReinstate = 83,  ///< a = engine index, b = probe successes
  kReplicaProbe = 84,      ///< a = engine index, b = 1 on probe success
};

/// Human-readable tag for a dump line, e.g. "request_submit".
const char* FlightEventTypeName(FlightEventType type);

/// One decoded event as returned by FlightRecorder::Snapshot().
struct FlightEvent {
  int64_t ts_us = 0;  ///< steady-clock microseconds (Tracer epoch)
  uint64_t thread_id = 0;
  FlightEventType type = FlightEventType::kNone;
  uint64_t a = 0;
  uint64_t b = 0;
};

/// Always-on, lock-free ring of recent process events — the "black box"
/// consulted after a crash. Each thread claims a private fixed-size ring
/// on first Record(), so the hot path is five relaxed atomic stores and a
/// relaxed counter bump (~O(ns), no locks, no allocation); threads beyond
/// the slot table share one spillover ring. Readers (Snapshot/Dump*) walk
/// every ring with relaxed loads, so an event being written concurrently
/// may decode torn — acceptable for diagnostics and invisible to TSan
/// because every slot field is an atomic.
///
/// The recorder registers itself with FaultInjector (crash hook) and can
/// install a SIGTERM handler, so fatal fault-injection sites and external
/// terminations leave a dump at FKD_FLIGHT_RECORDER_PATH (default
/// "fkd_flight_recorder.dump" in the working directory).
class FlightRecorder {
 public:
  /// Process-wide recorder. First call wires the FaultInjector crash hook.
  static FlightRecorder& Get();

  /// Appends one event to the calling thread's ring. Safe from any thread
  /// at any time; a no-op when disabled.
  void Record(FlightEventType type, uint64_t a = 0, uint64_t b = 0);

  /// Master switch (default on). Used by the overhead benchmark to measure
  /// the recorder's cost against a recorder-free baseline.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All live events across every ring, sorted by timestamp.
  std::vector<FlightEvent> Snapshot() const;

  /// Total Record() calls (including overwritten ones).
  uint64_t NumRecorded() const;

  /// Writes a readable dump (header + one line per event, oldest first).
  /// Returns false if the file cannot be written.
  bool DumpToFile(const std::string& path) const;

  /// Async-signal-tolerant dump to an open descriptor: formats into stack
  /// buffers and uses plain write(), no allocation or locks. Used by the
  /// crash hook and the SIGTERM handler.
  void DumpToFd(int fd) const;

  /// Dump path: FKD_FLIGHT_RECORDER_PATH or the built-in default.
  static std::string DumpPath();

  /// Installs a SIGTERM handler that dumps and then re-raises with the
  /// default disposition. Idempotent.
  static void InstallSigtermHandler();

  /// Zeroes every ring (test isolation; not thread-safe vs concurrent
  /// Record on other threads beyond the torn-event guarantee above).
  void Clear();

  static constexpr size_t kRingSlots = 2048;    ///< per-thread events kept
  static constexpr size_t kMaxThreadRings = 64; ///< beyond this: shared ring

 private:
  struct Slot {
    std::atomic<int64_t> ts_us{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint64_t> thread_id{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  struct ThreadRing {
    std::atomic<uint64_t> next{0};  ///< monotone write cursor
    Slot slots[kRingSlots];
  };

  FlightRecorder();
  ~FlightRecorder() = delete;  // intentionally leaked singleton

  ThreadRing* RingForThisThread();
  void CollectRing(const ThreadRing& ring, std::vector<FlightEvent>* out) const;

  std::atomic<bool> enabled_{true};
  std::atomic<ThreadRing*> rings_[kMaxThreadRings];
  ThreadRing shared_ring_;  ///< spillover once the slot table is full
  std::atomic<size_t> num_rings_{0};
};

}  // namespace obs
}  // namespace fkd

#endif  // FKD_OBS_FLIGHT_RECORDER_H_
