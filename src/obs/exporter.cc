#include "obs/exporter.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace obs {

namespace {

std::string Num(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

std::string EscapeKey(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void AppendHistogramStats(const HistogramSnapshot& h, std::string* out) {
  *out += "\"count\":" + Num(static_cast<double>(h.count));
  *out += ",\"mean\":" + Num(h.Mean());
  *out += ",\"p50\":" + Num(h.Percentile(0.5));
  *out += ",\"p99\":" + Num(h.Percentile(0.99));
  *out += ",\"p999\":" + Num(h.Percentile(0.999));
}

}  // namespace

StatsExporter::StatsExporter(StatsExporterOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Default();
  }
  if (options_.interval_ms <= 0) options_.interval_ms = 1000;
}

StatsExporter::~StatsExporter() { Stop(); }

Status StatsExporter::Start() {
  if (started_) return Status::FailedPrecondition("exporter already started");
  out_.open(options_.path, std::ios::app);
  if (!out_.is_open()) {
    return Status::IoError("cannot open stats path " + options_.path);
  }
  start_time_ = last_tick_time_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  started_ = true;
  thread_ = std::thread(&StatsExporter::Loop, this);
  return Status::OK();
}

void StatsExporter::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  TickOnce();  // final flush so short runs still leave at least one line
  out_.close();
  started_ = false;
}

void StatsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    TickOnce();
    lock.lock();
  }
}

void StatsExporter::TickOnce() {
  std::lock_guard<std::mutex> tick_lock(tick_mutex_);
  const auto now = std::chrono::steady_clock::now();
  double interval_seconds =
      std::chrono::duration<double>(now - last_tick_time_).count();
  if (interval_seconds <= 0) {
    interval_seconds = options_.interval_ms / 1000.0;
  }
  last_tick_time_ = now;
  const std::string line = BuildLine(interval_seconds);
  if (out_.is_open()) {
    out_ << line << "\n";
    out_.flush();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++ticks_;
}

std::string StatsExporter::BuildLine(double interval_seconds) {
  const auto now = std::chrono::steady_clock::now();
  const int64_t uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_time_)
          .count();
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = ticks_ + 1;
  }
  std::string counters, gauges, histograms;
  for (const InstrumentView& view : options_.registry->Views()) {
    const std::string key = "\"" + EscapeKey(view.identity) + "\":";
    switch (view.kind) {
      case InstrumentKind::kCounter: {
        const double total = view.counter->Value();
        const double prev = prev_counters_.count(view.identity)
                                ? prev_counters_[view.identity]
                                : 0.0;
        const double rate =
            interval_seconds > 0 ? (total - prev) / interval_seconds : 0.0;
        prev_counters_[view.identity] = total;
        if (!counters.empty()) counters += ',';
        counters += key + "{\"total\":" + Num(total) +
                    ",\"rate\":" + Num(std::max(0.0, rate)) + "}";
        break;
      }
      case InstrumentKind::kGauge: {
        if (!gauges.empty()) gauges += ',';
        gauges += key + Num(view.gauge->Value());
        break;
      }
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot current = view.histogram->Snapshot();
        std::string entry = "{";
        AppendHistogramStats(current, &entry);
        auto it = prev_histograms_.find(view.identity);
        if (it != prev_histograms_.end() &&
            it->second.counts.size() == current.counts.size()) {
          const HistogramSnapshot window = SnapshotDelta(current, it->second);
          entry += ",\"window\":{";
          AppendHistogramStats(window, &entry);
          entry += "}";
        }
        entry += "}";
        prev_histograms_[view.identity] = current;
        if (!histograms.empty()) histograms += ',';
        histograms += key + entry;
        break;
      }
    }
  }
  std::string line = "{\"type\":\"fkd_stats\",\"seq\":" + Num(double(seq)) +
                     ",\"uptime_ms\":" + Num(double(uptime_ms)) +
                     ",\"interval_ms\":" + Num(double(options_.interval_ms)) +
                     ",\"counters\":{" + counters + "},\"gauges\":{" + gauges +
                     "},\"histograms\":{" + histograms + "}}";
  return line;
}

uint64_t StatsExporter::NumTicks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

StatsExporter* StatsExporter::MaybeStartFromEnvironment() {
  static StatsExporter* exporter = [] () -> StatsExporter* {
    const char* interval_env = std::getenv("FKD_STATS_INTERVAL_MS");
    if (interval_env == nullptr || interval_env[0] == '\0') return nullptr;
    int interval_ms = std::atoi(interval_env);
    if (interval_ms <= 0) return nullptr;
    StatsExporterOptions options;
    options.interval_ms = interval_ms;
    if (const char* path = std::getenv("FKD_STATS_PATH")) {
      if (path[0] != '\0') options.path = path;
    }
    auto* created = new StatsExporter(std::move(options));
    const Status status = created->Start();
    if (!status.ok()) {
      FKD_LOG(Warning) << "stats exporter disabled: " << status.ToString();
      delete created;
      return nullptr;
    }
    FKD_LOG(Info) << "stats exporter writing " << created->options().path
                  << " every " << created->options().interval_ms << "ms";
    return created;
  }();
  return exporter;
}

}  // namespace obs
}  // namespace fkd
