#ifndef FKD_OBS_EXPORTER_H_
#define FKD_OBS_EXPORTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace fkd {
namespace obs {

struct StatsExporterOptions {
  /// JSONL output, appended to (one object per tick).
  std::string path = "fkd_stats.jsonl";
  /// Tick period. The exporter wakes, snapshots the registry, and writes
  /// one line; windowed histogram stats cover exactly the last interval.
  int interval_ms = 1000;
  /// Registry to export; defaults to the process-wide one.
  MetricsRegistry* registry = nullptr;
};

/// Background thread that periodically snapshots a MetricsRegistry and
/// appends one self-contained JSON object per tick:
///
///   {"type":"fkd_stats","seq":3,"uptime_ms":3021,"interval_ms":1000,
///    "counters":{"fkd.serve.requests{result=ok}":{"total":812,"rate":270.1}},
///    "gauges":{"fkd.serve.queue_depth{}":2},
///    "histograms":{"fkd.serve.latency_us{}":{"count":812,"p50":410,
///       "p99":1810,"p999":2474,
///       "window":{"count":271,"mean":501.2,"p50":405,"p99":1754,"p999":2390}}}}
///
/// `rate` is the counter delta divided by the measured tick duration;
/// `window` is the histogram delta since the previous tick (SnapshotDelta),
/// i.e. true last-N-seconds percentiles rather than since-process-start.
/// `fkd_obstop` tails this file to render a live dashboard.
class StatsExporter {
 public:
  explicit StatsExporter(StatsExporterOptions options);
  ~StatsExporter();

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  /// Opens the output for append and spawns the tick thread.
  Status Start();

  /// Stops the thread after flushing one final tick. Idempotent.
  void Stop();

  /// One synchronous tick (snapshot + write + flush). Used by tests and by
  /// Stop() for the final flush; safe to call whether or not Start() ran,
  /// as long as the output was opened.
  void TickOnce();

  uint64_t NumTicks() const;
  const StatsExporterOptions& options() const { return options_; }

  /// If FKD_STATS_INTERVAL_MS is set (and > 0), starts a process-wide
  /// exporter writing to FKD_STATS_PATH (or the default path) on first
  /// call and returns it; otherwise returns nullptr. Idempotent — callers
  /// sprinkle this at serving entry points (Router::Start, benches).
  static StatsExporter* MaybeStartFromEnvironment();

 private:
  void Loop();
  std::string BuildLine(double interval_seconds);

  StatsExporterOptions options_;
  std::ofstream out_;
  std::thread thread_;
  bool started_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  uint64_t ticks_ = 0;

  /// Serialises whole ticks (loop thread vs TickOnce from tests/Stop).
  std::mutex tick_mutex_;

  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_tick_time_;
  /// Previous-tick state keyed by instrument identity.
  std::map<std::string, double> prev_counters_;
  std::map<std::string, HistogramSnapshot> prev_histograms_;
};

}  // namespace obs
}  // namespace fkd

#endif  // FKD_OBS_EXPORTER_H_
