#include "obs/trace.h"

#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

namespace fkd {
namespace obs {

namespace {

/// Per-thread span nesting depth (for the depth field of TraceEvent).
thread_local int32_t t_span_depth = 0;

uint64_t CurrentThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetCapacity(size_t max_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_events;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t Tracer::NumDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(const TraceEvent& event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

std::string Tracer::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out << ",";
    // Complete events ("ph":"X") need name/cat/ts/dur/pid/tid.
    out << "\n{\"name\":\"" << JsonEscape(e.name)
        << "\",\"cat\":\"fkd\",\"ph\":\"X\",\"ts\":" << e.start_us
        << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":"
        << (e.thread_id % 1000000) << ",\"args\":{\"depth\":" << e.depth;
    if (e.id != 0) out << ",\"request_id\":" << e.id;
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << ExportChromeJson();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name), active_(Tracer::Get().enabled()) {
  if (!active_) return;
  start_us_ = Tracer::Get().NowMicros();
  depth_ = t_span_depth++;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.thread_id = CurrentThreadId();
  event.start_us = start_us_;
  event.duration_us = Tracer::Get().NowMicros() - start_us_;
  event.depth = depth_;
  Tracer::Get().Record(event);
}

}  // namespace obs
}  // namespace fkd
