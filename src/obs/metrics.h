#ifndef FKD_OBS_METRICS_H_
#define FKD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fkd {
namespace obs {

/// Metric labels as key=value pairs. Order does not matter: the registry
/// canonicalises (sorts by key) before building the instrument identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter. Thread-safe; increments from multiple
/// threads never lose updates.
class Counter {
 public:
  Counter() : value_(0.0) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(double delta = 1.0);
  double Value() const { return value_.load(std::memory_order_relaxed); }

  /// Back to zero; only MetricsRegistry::Reset() and tests should call this
  /// (a counter is otherwise monotone).
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_;
};

/// Last-write-wins instantaneous value. Thread-safe.
class Gauge {
 public:
  Gauge() : value_(0.0) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_;
};

/// Bucket layout of a Histogram: HDR-style log-linear buckets. Every power
/// of two in [1, max_value] is split into `sub_buckets` linear sub-buckets,
/// so any recorded value is bucketed with bounded *relative* error
/// <= 1/sub_buckets across the whole range — accurate p50 and p999 from
/// the same instrument, unlike fixed exponential buckets whose error grows
/// with the growth factor. Values below 1 share one underflow bucket and
/// values above max_value one overflow bucket.
struct HistogramOptions {
  double max_value = 1e9;   ///< Upper edge of the finest-grained range.
  size_t sub_buckets = 64;  ///< Linear sub-buckets per power of two.
};

/// A point-in-time copy of a histogram's buckets and summary stats.
/// Snapshots subtract (`Delta`) to give windowed views — the distribution
/// of only the observations recorded between two snapshots — which is how
/// the StatsExporter derives last-interval p50/p99/p999.
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty.
  double max = 0.0;  ///< 0 when empty.

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Same interpolation rules as Histogram::Percentile.
  double Percentile(double p) const;
};

/// Windowed difference `current - previous` (elementwise on buckets).
/// `previous` must come from the same instrument (same layout); min/max of
/// the delta are approximated from the outermost non-empty delta buckets.
HistogramSnapshot SnapshotDelta(const HistogramSnapshot& current,
                                const HistogramSnapshot& previous);

/// Distribution of observed values: lock-free log-linear buckets plus
/// count/sum/min/max summary stats. Observe() is wait-free on the bucket
/// counter (one relaxed fetch_add) with short CAS loops only for the
/// sum/min/max extremes — safe to call from every serving worker on every
/// request. Thread-safe.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Total observations: the sum over bucket counters. O(num_buckets), but
  /// reads happen at export cadence (~1/s) while Observe() runs on every
  /// request — keeping a separate total counter would add a hot-path RMW
  /// to subsidise a cold read.
  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;  ///< 0 when empty.
  double Max() const;  ///< 0 when empty.
  double Mean() const;

  /// Percentile (0 < p < 1) by linear interpolation within the owning
  /// bucket; relative error is bounded by the sub-bucket resolution
  /// (~1/sub_buckets). Exact at the min/max boundaries.
  double Percentile(double p) const;

  /// Consistent-enough copy for export and windowed views. Buckets are
  /// read individually (relaxed) while writers proceed, so a snapshot
  /// taken mid-Observe may be off by the in-flight observation — fine for
  /// monitoring, never torn within a field.
  HistogramSnapshot Snapshot() const;

  /// Upper bounds, one per bucket (the overflow bucket has bound +inf).
  std::vector<double> BucketBounds() const;
  std::vector<uint64_t> BucketCounts() const;

  size_t num_buckets() const { return counts_.size(); }
  const HistogramOptions& options() const { return options_; }

  /// Resets every count and summary stat (bucket layout is kept).
  void Reset();

 private:
  size_t BucketIndex(double value) const;

  HistogramOptions options_;
  size_t num_exponents_ = 0;
  std::vector<std::atomic<uint64_t>> counts_;  // underflow + log-linear + overflow
  std::atomic<double> sum_{0.0};
  // Seeded at the identity extremes so the first Observe() needs no
  // special case: any real value beats +/-infinity in the CAS check.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Upper bucket bounds for a layout (shared by Histogram and snapshots).
std::vector<double> BucketBoundsFor(const HistogramOptions& options);

/// What kind of instrument an InstrumentView points at.
enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// A read-only view of one registered instrument, as returned by
/// MetricsRegistry::Views(). The pointers stay valid for the registry's
/// lifetime (instruments are never destroyed).
struct InstrumentView {
  std::string identity;  ///< name{k=v,...} — stable export key.
  std::string name;
  Labels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

/// Thread-safe registry of named instruments. Instruments are identified by
/// name + labels and are created on first access; the returned pointers
/// stay valid for the lifetime of the registry (Reset() zeroes values but
/// never destroys instruments, so cached pointers survive).
///
/// Naming scheme: dot-separated lowercase, unit suffix where applicable —
/// e.g. "fkd.train.loss", "fkd.gdu.forward_us", "fkd.experiment.run_seconds".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (what FKD-internal instrumentation and
  /// MetricsObserver use unless given an explicit registry).
  static MetricsRegistry& Default();

  /// Fetch-or-create. Aborts (FKD_CHECK) if the same name+labels was
  /// previously registered as a different instrument kind.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const HistogramOptions& options = {});

  /// Stable views of every registered instrument, sorted by identity —
  /// what the StatsExporter iterates every tick.
  std::vector<InstrumentView> Views() const;

  /// Human-readable dump, one instrument per line, sorted by identity.
  std::string ExportText() const;

  /// Machine-readable dump: one JSON object per line, e.g.
  ///   {"name":"fkd.train.loss","labels":{"method":"rnn"},
  ///    "type":"gauge","value":0.693}
  /// Histogram lines carry count/sum/min/max/mean/p50/p95/p99/p999 and the
  /// bucket arrays.
  std::string ExportJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  /// Zeroes every instrument without destroying it (cached pointers stay
  /// valid). Intended for tests and between bench repetitions.
  void Reset();

  size_t NumInstruments() const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;  // canonical (sorted by key)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindOrCreate(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;  // key = identity string
};

/// One record parsed back from a line of MetricsRegistry::ExportJsonl —
/// enough for round-trip tests and for bench scripts that aggregate runs.
/// Only understands the exporter's own output format.
struct MetricRecord {
  std::string name;
  Labels labels;
  std::string type;      // "counter" | "gauge" | "histogram"
  double value = 0.0;    // counter/gauge
  uint64_t count = 0;    // histogram
  double sum = 0.0;      // histogram
};

Result<MetricRecord> ParseMetricJsonl(const std::string& line);

}  // namespace obs
}  // namespace fkd

#endif  // FKD_OBS_METRICS_H_
