#ifndef FKD_OBS_METRICS_H_
#define FKD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fkd {
namespace obs {

/// Metric labels as key=value pairs. Order does not matter: the registry
/// canonicalises (sorts by key) before building the instrument identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter. Thread-safe; increments from multiple
/// threads never lose updates.
class Counter {
 public:
  Counter() : value_(0.0) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(double delta = 1.0);
  double Value() const { return value_.load(std::memory_order_relaxed); }

  /// Back to zero; only MetricsRegistry::Reset() and tests should call this
  /// (a counter is otherwise monotone).
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_;
};

/// Last-write-wins instantaneous value. Thread-safe.
class Gauge {
 public:
  Gauge() : value_(0.0) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_;
};

/// Bucket layout of a Histogram: fixed exponential bounds
/// first_bound * growth^i for i in [0, num_buckets), plus an overflow
/// bucket. The defaults cover 1us .. ~10^9us, the range of every duration
/// metric in this codebase.
struct HistogramOptions {
  double first_bound = 1.0;
  double growth = 4.0;
  size_t num_buckets = 16;
};

/// Distribution of observed values: exponential buckets plus exact
/// count/sum/min/max summary stats. Thread-safe.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  double Min() const;  ///< 0 when empty.
  double Max() const;  ///< 0 when empty.
  double Mean() const;

  /// Approximate percentile (0 < p < 1) by linear interpolation within the
  /// owning bucket. Exact for min/max queries at p=0/1 boundaries.
  double Percentile(double p) const;

  /// Upper bounds, one per bucket (the overflow bucket has bound +inf).
  std::vector<double> BucketBounds() const;
  std::vector<uint64_t> BucketCounts() const;

  /// Resets every count and summary stat (bucket layout is kept).
  void Reset();

 private:
  HistogramOptions options_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> counts_;  // num_buckets + 1 (overflow)
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Thread-safe registry of named instruments. Instruments are identified by
/// name + labels and are created on first access; the returned pointers
/// stay valid for the lifetime of the registry (Reset() zeroes values but
/// never destroys instruments, so cached pointers survive).
///
/// Naming scheme: dot-separated lowercase, unit suffix where applicable —
/// e.g. "fkd.train.loss", "fkd.gdu.forward_us", "fkd.experiment.run_seconds".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (what FKD-internal instrumentation and
  /// MetricsObserver use unless given an explicit registry).
  static MetricsRegistry& Default();

  /// Fetch-or-create. Aborts (FKD_CHECK) if the same name+labels was
  /// previously registered as a different instrument kind.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const HistogramOptions& options = {});

  /// Human-readable dump, one instrument per line, sorted by identity.
  std::string ExportText() const;

  /// Machine-readable dump: one JSON object per line, e.g.
  ///   {"name":"fkd.train.loss","labels":{"method":"rnn"},
  ///    "type":"gauge","value":0.693}
  /// Histogram lines carry count/sum/min/max/mean/p50/p95 and the bucket
  /// arrays.
  std::string ExportJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  /// Zeroes every instrument without destroying it (cached pointers stay
  /// valid). Intended for tests and between bench repetitions.
  void Reset();

  size_t NumInstruments() const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;  // canonical (sorted by key)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindOrCreate(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;  // key = identity string
};

/// One record parsed back from a line of MetricsRegistry::ExportJsonl —
/// enough for round-trip tests and for bench scripts that aggregate runs.
/// Only understands the exporter's own output format.
struct MetricRecord {
  std::string name;
  Labels labels;
  std::string type;      // "counter" | "gauge" | "histogram"
  double value = 0.0;    // counter/gauge
  uint64_t count = 0;    // histogram
  double sum = 0.0;      // histogram
};

Result<MetricRecord> ParseMetricJsonl(const std::string& line);

}  // namespace obs
}  // namespace fkd

#endif  // FKD_OBS_METRICS_H_
