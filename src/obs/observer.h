#ifndef FKD_OBS_OBSERVER_H_
#define FKD_OBS_OBSERVER_H_

#include <cstddef>
#include <limits>
#include <string>

#include "obs/metrics.h"

namespace fkd {
namespace obs {

/// Per-epoch snapshot delivered to TrainObserver::OnEpochEnd. Fields a
/// trainer cannot provide stay NaN (e.g. validation loss without a holdout,
/// grad norm for SGD-free methods).
struct EpochStats {
  size_t epoch = 0;  ///< 0-based epoch index.
  float loss = std::numeric_limits<float>::quiet_NaN();
  float validation_loss = std::numeric_limits<float>::quiet_NaN();
  /// Pre-clipping global gradient L2 norm.
  float grad_norm = std::numeric_limits<float>::quiet_NaN();
  double seconds = 0.0;        ///< Wall time of this epoch.
  double total_seconds = 0.0;  ///< Wall time since OnTrainBegin (monotone).
};

/// Callback interface observing one training run. `method` names the
/// training phase — "FakeDetector", "gcn", "rnn/articles",
/// "deepwalk/skipgram", "line" — so one observer can watch a whole sweep.
/// Trainers invoke callbacks from the training thread, in order:
/// OnTrainBegin, then one OnEpochEnd per epoch, then OnTrainEnd.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;

  /// `planned_epochs` is an upper bound when early stopping may fire.
  virtual void OnTrainBegin(const std::string& method, size_t planned_epochs) {
    (void)method;
    (void)planned_epochs;
  }

  virtual void OnEpochEnd(const std::string& method, const EpochStats& stats) {
    (void)method;
    (void)stats;
  }

  virtual void OnTrainEnd(const std::string& method, size_t epochs_run,
                          double seconds) {
    (void)method;
    (void)epochs_run;
    (void)seconds;
  }
};

/// Null-safe notification helpers: trainers hold a possibly-null observer
/// pointer and call these unconditionally.
inline void NotifyTrainBegin(TrainObserver* observer, const std::string& method,
                             size_t planned_epochs) {
  if (observer != nullptr) observer->OnTrainBegin(method, planned_epochs);
}
inline void NotifyEpochEnd(TrainObserver* observer, const std::string& method,
                           const EpochStats& stats) {
  if (observer != nullptr) observer->OnEpochEnd(method, stats);
}
inline void NotifyTrainEnd(TrainObserver* observer, const std::string& method,
                           size_t epochs_run, double seconds) {
  if (observer != nullptr) observer->OnTrainEnd(method, epochs_run, seconds);
}

/// Logs one INFO line per `log_every` epochs (plus the final epoch) and a
/// summary line at train end — the human-readable telemetry quickstart and
/// the benches attach.
class LoggingObserver : public TrainObserver {
 public:
  explicit LoggingObserver(size_t log_every = 1) : log_every_(log_every) {}

  void OnTrainBegin(const std::string& method, size_t planned_epochs) override;
  void OnEpochEnd(const std::string& method, const EpochStats& stats) override;
  void OnTrainEnd(const std::string& method, size_t epochs_run,
                  double seconds) override;

 private:
  size_t log_every_;
  size_t planned_epochs_ = 0;
};

/// Records every callback into a MetricsRegistry under the method label:
///   fkd.train.loss / fkd.train.validation_loss / fkd.train.grad_norm  gauge
///   fkd.train.epochs / fkd.train.runs                                 counter
///   fkd.train.epoch_us                                                histogram
///   fkd.train.wall_s                                                  gauge
class MetricsObserver : public TrainObserver {
 public:
  /// `registry` null means MetricsRegistry::Default(). The registry must
  /// outlive the observer.
  explicit MetricsObserver(MetricsRegistry* registry = nullptr);

  void OnEpochEnd(const std::string& method, const EpochStats& stats) override;
  void OnTrainEnd(const std::string& method, size_t epochs_run,
                  double seconds) override;

  MetricsRegistry* registry() const { return registry_; }

 private:
  MetricsRegistry* registry_;
};

/// Fans one training run out to two observers (e.g. logging + metrics).
/// Either may be null.
class TeeObserver : public TrainObserver {
 public:
  TeeObserver(TrainObserver* first, TrainObserver* second)
      : first_(first), second_(second) {}

  void OnTrainBegin(const std::string& method, size_t planned_epochs) override {
    NotifyTrainBegin(first_, method, planned_epochs);
    NotifyTrainBegin(second_, method, planned_epochs);
  }
  void OnEpochEnd(const std::string& method, const EpochStats& stats) override {
    NotifyEpochEnd(first_, method, stats);
    NotifyEpochEnd(second_, method, stats);
  }
  void OnTrainEnd(const std::string& method, size_t epochs_run,
                  double seconds) override {
    NotifyTrainEnd(first_, method, epochs_run, seconds);
    NotifyTrainEnd(second_, method, epochs_run, seconds);
  }

 private:
  TrainObserver* first_;
  TrainObserver* second_;
};

}  // namespace obs
}  // namespace fkd

#endif  // FKD_OBS_OBSERVER_H_
