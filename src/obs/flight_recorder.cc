#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace fkd {
namespace obs {

namespace {

constexpr char kDefaultDumpPath[] = "fkd_flight_recorder.dump";

/// Dump path cached in a fixed buffer at first use so the SIGTERM handler
/// never has to allocate.
char g_dump_path[512] = {0};

const char* CachedDumpPath() {
  if (g_dump_path[0] == '\0') {
    const char* env = std::getenv("FKD_FLIGHT_RECORDER_PATH");
    const char* path = (env != nullptr && env[0] != '\0') ? env : kDefaultDumpPath;
    std::strncpy(g_dump_path, path, sizeof(g_dump_path) - 1);
  }
  return g_dump_path;
}

uint64_t ThisThreadId() {
  // Hashed once per thread: Record() is on the per-request hot path.
  thread_local const uint64_t t_id = static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return t_id;
}

/// Signal-safe unsigned decimal formatting; returns chars written.
size_t FormatU64(uint64_t v, char* out) {
  char tmp[24];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

size_t FormatI64(int64_t v, char* out) {
  if (v < 0) {
    out[0] = '-';
    return 1 + FormatU64(static_cast<uint64_t>(-v), out + 1);
  }
  return FormatU64(static_cast<uint64_t>(v), out);
}

size_t Append(const char* s, char* out) {
  size_t n = std::strlen(s);
  std::memcpy(out, s, n);
  return n;
}

void WriteAll(int fd, const char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, buf + off, n - off);
    if (w <= 0) return;  // best effort: we are on the way down
    off += static_cast<size_t>(w);
  }
}

/// FaultInjector crash hook: record the fault itself, then dump. Runs in a
/// normal (non-signal) context right before _exit/abort.
void DumpOnFault(const char* site, int action) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Record(FlightEventType::kFault,
                  std::hash<std::string_view>{}(site),
                  static_cast<uint64_t>(action));
  const int fd =
      ::open(CachedDumpPath(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  char line[600];
  size_t n = Append("fault_site=", line);
  n += Append(site, line + n);
  line[n++] = '\n';
  WriteAll(fd, line, n);
  recorder.DumpToFd(fd);
  ::close(fd);
}

void SigtermHandler(int signo) {
  const int fd =
      ::open(CachedDumpPath(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    FlightRecorder::Get().DumpToFd(fd);
    ::close(fd);
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone: return "none";
    case FlightEventType::kRequestSubmit: return "request_submit";
    case FlightEventType::kCacheHit: return "cache_hit";
    case FlightEventType::kCacheMiss: return "cache_miss";
    case FlightEventType::kEngineEnqueue: return "engine_enqueue";
    case FlightEventType::kEngineReject: return "engine_reject";
    case FlightEventType::kEngineShed: return "engine_shed";
    case FlightEventType::kRequestComplete: return "request_complete";
    case FlightEventType::kRequestDeadline: return "request_deadline";
    case FlightEventType::kRequestFailed: return "request_failed";
    case FlightEventType::kRequestUnavailable: return "request_unavailable";
    case FlightEventType::kBatchStart: return "batch_start";
    case FlightEventType::kBatchEnd: return "batch_end";
    case FlightEventType::kBatchRetry: return "batch_retry";
    case FlightEventType::kBatchFailed: return "batch_failed";
    case FlightEventType::kBreakerOpen: return "breaker_open";
    case FlightEventType::kBreakerClose: return "breaker_close";
    case FlightEventType::kEngineStart: return "engine_start";
    case FlightEventType::kEngineStop: return "engine_stop";
    case FlightEventType::kModelPublish: return "model_publish";
    case FlightEventType::kModelRetire: return "model_retire";
    case FlightEventType::kSwapBegin: return "swap_begin";
    case FlightEventType::kSwapEnd: return "swap_end";
    case FlightEventType::kCanaryStart: return "canary_start";
    case FlightEventType::kCanaryStop: return "canary_stop";
    case FlightEventType::kModelDemote: return "model_demote";
    case FlightEventType::kModelPromote: return "model_promote";
    case FlightEventType::kFault: return "fault";
    case FlightEventType::kConnAccept: return "conn_accept";
    case FlightEventType::kConnClose: return "conn_close";
    case FlightEventType::kNetShed: return "net_shed";
    case FlightEventType::kNetProtocolError: return "net_protocol_error";
    case FlightEventType::kServerStart: return "server_start";
    case FlightEventType::kServerStop: return "server_stop";
    case FlightEventType::kNetAcceptPause: return "net_accept_pause";
    case FlightEventType::kNetDeadlineShed: return "net_deadline_shed";
    case FlightEventType::kReplicaQuarantine: return "replica_quarantine";
    case FlightEventType::kReplicaReinstate: return "replica_reinstate";
    case FlightEventType::kReplicaProbe: return "replica_probe";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() {
  for (auto& slot : rings_) slot.store(nullptr, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* recorder = [] {
    auto* created = new FlightRecorder();
    CachedDumpPath();  // cache before any signal can need it
    FaultInjector::Global().SetCrashHook(&DumpOnFault);
    return created;
  }();
  return *recorder;
}

FlightRecorder::ThreadRing* FlightRecorder::RingForThisThread() {
  thread_local ThreadRing* t_ring = nullptr;
  if (t_ring != nullptr) return t_ring;
  for (size_t i = 0; i < kMaxThreadRings; ++i) {
    if (rings_[i].load(std::memory_order_acquire) == nullptr) {
      auto* fresh = new ThreadRing();  // leaked with the singleton by design
      ThreadRing* expected = nullptr;
      if (rings_[i].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
        num_rings_.fetch_add(1, std::memory_order_relaxed);
        t_ring = fresh;
        return t_ring;
      }
      delete fresh;  // another thread claimed slot i; try the next one
    }
  }
  t_ring = &shared_ring_;  // slot table exhausted: spill to the shared ring
  return t_ring;
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b) {
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  const uint64_t seq = ring->next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[seq % kRingSlots];
  // type is stored last so a reader that sees it set usually sees the rest;
  // a torn event (reader between stores) is acceptable for diagnostics.
  slot.ts_us.store(Tracer::Get().NowMicros(), std::memory_order_relaxed);
  slot.thread_id.store(ThisThreadId(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.type.store(static_cast<uint32_t>(type), std::memory_order_release);
}

void FlightRecorder::CollectRing(const ThreadRing& ring,
                                 std::vector<FlightEvent>* out) const {
  const uint64_t next = ring.next.load(std::memory_order_relaxed);
  const uint64_t live = std::min<uint64_t>(next, kRingSlots);
  for (uint64_t i = 0; i < live; ++i) {
    const Slot& slot = ring.slots[i];
    const uint32_t type = slot.type.load(std::memory_order_acquire);
    if (type == 0) continue;
    FlightEvent event;
    event.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    event.thread_id = slot.thread_id.load(std::memory_order_relaxed);
    event.type = static_cast<FlightEventType>(type);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    out->push_back(event);
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  for (size_t i = 0; i < kMaxThreadRings; ++i) {
    const ThreadRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) CollectRing(*ring, &events);
  }
  CollectRing(shared_ring_, &events);
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.ts_us < y.ts_us;
            });
  return events;
}

uint64_t FlightRecorder::NumRecorded() const {
  uint64_t total = shared_ring_.next.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxThreadRings; ++i) {
    const ThreadRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->next.load(std::memory_order_relaxed);
  }
  return total;
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpToFd(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::DumpToFd(int fd) const {
  char line[256];
  size_t n = Append("=== fkd flight recorder ===\nevents_recorded=", line);
  n += FormatU64(NumRecorded(), line + n);
  line[n++] = '\n';
  WriteAll(fd, line, n);
  // Per-ring, oldest slot first: sorted merge would need allocation, which
  // a crash/signal path must not do. Consumers sort on ts_us if they care.
  const auto dump_ring = [&](const ThreadRing& ring) {
    const uint64_t next = ring.next.load(std::memory_order_relaxed);
    const uint64_t live = std::min<uint64_t>(next, kRingSlots);
    const uint64_t start = next > kRingSlots ? next - kRingSlots : 0;
    for (uint64_t s = 0; s < live; ++s) {
      const Slot& slot = ring.slots[(start + s) % kRingSlots];
      const uint32_t type = slot.type.load(std::memory_order_acquire);
      if (type == 0) continue;
      size_t k = 0;
      line[k++] = '[';
      k += FormatI64(slot.ts_us.load(std::memory_order_relaxed), line + k);
      k += Append("us] tid=", line + k);
      k += FormatU64(slot.thread_id.load(std::memory_order_relaxed) % 100000,
                     line + k);
      line[k++] = ' ';
      k += Append(FlightEventTypeName(static_cast<FlightEventType>(type)),
                  line + k);
      k += Append(" a=", line + k);
      k += FormatU64(slot.a.load(std::memory_order_relaxed), line + k);
      k += Append(" b=", line + k);
      k += FormatU64(slot.b.load(std::memory_order_relaxed), line + k);
      line[k++] = '\n';
      WriteAll(fd, line, k);
    }
  };
  for (size_t i = 0; i < kMaxThreadRings; ++i) {
    const ThreadRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) dump_ring(*ring);
  }
  dump_ring(shared_ring_);
  n = Append("=== end of dump ===\n", line);
  WriteAll(fd, line, n);
}

std::string FlightRecorder::DumpPath() { return CachedDumpPath(); }

void FlightRecorder::InstallSigtermHandler() {
  Get();  // ensure the recorder and cached path exist
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &SigtermHandler;
  ::sigaction(SIGTERM, &action, nullptr);
}

void FlightRecorder::Clear() {
  const auto clear_ring = [](ThreadRing& ring) {
    for (auto& slot : ring.slots) {
      slot.type.store(0, std::memory_order_relaxed);
      slot.ts_us.store(0, std::memory_order_relaxed);
      slot.thread_id.store(0, std::memory_order_relaxed);
      slot.a.store(0, std::memory_order_relaxed);
      slot.b.store(0, std::memory_order_relaxed);
    }
    ring.next.store(0, std::memory_order_relaxed);
  };
  for (size_t i = 0; i < kMaxThreadRings; ++i) {
    ThreadRing* ring = rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) clear_ring(*ring);
  }
  clear_ring(shared_ring_);
}

}  // namespace obs
}  // namespace fkd
