#ifndef FKD_OBS_TRACE_H_
#define FKD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

// FKD_TRACING_ENABLED is normally injected by CMake (option
// FKD_ENABLE_TRACING: default ON in Debug builds, OFF in Release). When the
// flag is 0, FKD_TRACE_SCOPE compiles to nothing; the Tracer/ScopedSpan
// classes themselves are always available (tests and tools use them
// directly).
#ifndef FKD_TRACING_ENABLED
#define FKD_TRACING_ENABLED 0
#endif

namespace fkd {
namespace obs {

/// One completed span in the in-process trace buffer. Times are
/// microseconds on the steady clock, relative to the tracer epoch (process
/// start), which is what the Chrome trace format expects.
struct TraceEvent {
  const char* name = "";  ///< Static string (span names are literals).
  uint64_t thread_id = 0;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  int32_t depth = 0;  ///< Nesting depth within the thread at span begin.
  uint64_t id = 0;    ///< Correlation id (request id); 0 = none.
};

/// Process-wide trace collector: a bounded in-memory buffer of completed
/// spans, exportable as Chrome trace-viewer JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev). Collection is off by
/// default; Enable(true) turns it on. Thread-safe.
class Tracer {
 public:
  static Tracer& Get();

  void Enable(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Maximum buffered spans; further spans are counted as dropped.
  void SetCapacity(size_t max_events);

  void Clear();

  std::vector<TraceEvent> Snapshot() const;
  size_t NumEvents() const;
  size_t NumDropped() const;

  /// Microseconds since the tracer epoch (steady clock).
  int64_t NowMicros() const;

  /// {"traceEvents":[...]} with one complete ("ph":"X") event per span.
  std::string ExportChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// Called by ScopedSpan; records one completed span if enabled.
  void Record(const TraceEvent& event);

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  size_t capacity_ = 1 << 16;
  size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: measures from construction to destruction and records into
/// Tracer::Get() when tracing is runtime-enabled. `name` must outlive the
/// span — pass a string literal like "gdu/forward".
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  int64_t start_us_ = 0;
  int32_t depth_ = 0;
};

}  // namespace obs
}  // namespace fkd

#define FKD_TRACE_CONCAT_INNER(a, b) a##b
#define FKD_TRACE_CONCAT(a, b) FKD_TRACE_CONCAT_INNER(a, b)

/// Compile-time-gated RAII trace span for hot paths:
///   FKD_TRACE_SCOPE("gdu/forward");
/// Costs nothing when FKD_ENABLE_TRACING=OFF (the default in Release), and
/// a single enabled-flag load when built in but runtime-disabled.
#if FKD_TRACING_ENABLED
#define FKD_TRACE_SCOPE(name) \
  ::fkd::obs::ScopedSpan FKD_TRACE_CONCAT(fkd_trace_span_, __LINE__)(name)
#else
#define FKD_TRACE_SCOPE(name) \
  do {                        \
  } while (false)
#endif

#endif  // FKD_OBS_TRACE_H_
