#include "obs/observer.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace fkd {
namespace obs {

void LoggingObserver::OnTrainBegin(const std::string& method,
                                   size_t planned_epochs) {
  planned_epochs_ = planned_epochs;
  FKD_LOG(Info) << method << ": training for " << planned_epochs << " epochs";
}

void LoggingObserver::OnEpochEnd(const std::string& method,
                                 const EpochStats& stats) {
  if (log_every_ == 0) return;
  const bool last = planned_epochs_ > 0 && stats.epoch + 1 == planned_epochs_;
  if (stats.epoch % log_every_ != 0 && !last) return;
  std::string line = StrFormat("%s epoch %zu", method.c_str(), stats.epoch);
  if (!std::isnan(stats.loss)) {
    line += StrFormat(" loss %.4f", static_cast<double>(stats.loss));
  }
  if (!std::isnan(stats.validation_loss)) {
    line += StrFormat(" val_loss %.4f",
                      static_cast<double>(stats.validation_loss));
  }
  if (!std::isnan(stats.grad_norm)) {
    line += StrFormat(" grad_norm %.3f", static_cast<double>(stats.grad_norm));
  }
  line += StrFormat(" (%.1f ms)", stats.seconds * 1e3);
  FKD_LOG(Info) << line;
}

void LoggingObserver::OnTrainEnd(const std::string& method, size_t epochs_run,
                                 double seconds) {
  FKD_LOG(Info) << method << ": " << epochs_run << " epochs in "
                << StrFormat("%.2f", seconds) << "s";
}

MetricsObserver::MetricsObserver(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Default()) {}

void MetricsObserver::OnEpochEnd(const std::string& method,
                                 const EpochStats& stats) {
  const Labels labels = {{"method", method}};
  registry_->GetCounter("fkd.train.epochs", labels)->Increment();
  registry_->GetHistogram("fkd.train.epoch_us", labels)
      ->Observe(stats.seconds * 1e6);
  if (!std::isnan(stats.loss)) {
    registry_->GetGauge("fkd.train.loss", labels)->Set(stats.loss);
  }
  if (!std::isnan(stats.validation_loss)) {
    registry_->GetGauge("fkd.train.validation_loss", labels)
        ->Set(stats.validation_loss);
  }
  if (!std::isnan(stats.grad_norm)) {
    registry_->GetGauge("fkd.train.grad_norm", labels)->Set(stats.grad_norm);
  }
}

void MetricsObserver::OnTrainEnd(const std::string& method, size_t epochs_run,
                                 double seconds) {
  (void)epochs_run;
  const Labels labels = {{"method", method}};
  registry_->GetCounter("fkd.train.runs", labels)->Increment();
  registry_->GetGauge("fkd.train.wall_s", labels)->Set(seconds);
}

}  // namespace obs
}  // namespace fkd
