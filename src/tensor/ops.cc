#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace fkd {

namespace {

// Dimensions of op(X) for the GEMM contract.
struct OpDims {
  size_t rows;
  size_t cols;
};

OpDims DimsOf(const Tensor& t, bool transposed) {
  if (transposed) return {t.cols(), t.rows()};
  return {t.rows(), t.cols()};
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  FKD_CHECK(c != nullptr);
  const OpDims da = DimsOf(a, trans_a);
  const OpDims db = DimsOf(b, trans_b);
  FKD_CHECK_EQ(da.cols, db.rows);
  FKD_CHECK_EQ(c->rows(), da.rows);
  FKD_CHECK_EQ(c->cols(), db.cols);

  const size_t m = da.rows;
  const size_t k = da.cols;
  const size_t n = db.cols;

  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    ScaleInPlace(beta, c);
  }

  // The four transpose layouts share an ikj ordering so that the innermost
  // loop streams over contiguous memory of C (and of B when not transposed).
  float* cd = c->data();
  const float* ad = a.data();
  const float* bd = b.data();
  const size_t lda = a.cols();
  const size_t ldb = b.cols();

  for (size_t i = 0; i < m; ++i) {
    float* c_row = cd + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = trans_a ? ad[p * lda + i] : ad[i * lda + p];
      if (a_ip == 0.0f) continue;
      const float scaled = alpha * a_ip;
      if (!trans_b) {
        const float* b_row = bd + p * ldb;
        for (size_t j = 0; j < n; ++j) c_row[j] += scaled * b_row[j];
      } else {
        // op(B)[p, j] = B[j, p]: strided column walk.
        for (size_t j = 0; j < n; ++j) c_row[j] += scaled * bd[j * ldb + p];
      }
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Gemv(bool trans_a, float alpha, const Tensor& a, const Tensor& x,
          float beta, Tensor* y) {
  FKD_CHECK(y != nullptr);
  FKD_CHECK_EQ(x.rank(), 1u);
  FKD_CHECK_EQ(y->rank(), 1u);
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  FKD_CHECK_EQ(x.size(), k);
  FKD_CHECK_EQ(y->size(), m);

  if (beta == 0.0f) {
    y->SetZero();
  } else if (beta != 1.0f) {
    ScaleInPlace(beta, y);
  }
  float* yd = y->data();
  const float* xd = x.data();
  if (!trans_a) {
    for (size_t i = 0; i < m; ++i) {
      const float* row = a.Row(i);
      double total = 0.0;
      for (size_t j = 0; j < k; ++j) total += row[j] * xd[j];
      yd[i] += alpha * static_cast<float>(total);
    }
  } else {
    // y += alpha * A^T x: stream over A's rows, scatter into y.
    for (size_t r = 0; r < k; ++r) {
      const float* row = a.Row(r);
      const float scaled = alpha * xd[r];
      if (scaled == 0.0f) continue;
      for (size_t i = 0; i < m; ++i) yd[i] += scaled * row[i];
    }
  }
}

void AxpyInPlace(float alpha, const Tensor& x, Tensor* y) {
  FKD_CHECK(y != nullptr);
  FKD_CHECK(x.shape() == y->shape());
  float* yd = y->data();
  const float* xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

void ScaleInPlace(float scale, Tensor* y) {
  FKD_CHECK(y != nullptr);
  float* yd = y->data();
  for (size_t i = 0; i < y->size(); ++i) yd[i] *= scale;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  for (size_t i = 0; i < a.size(); ++i) out[i] = f(a[i]);
  return out;
}

Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& f) {
  FKD_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  for (size_t i = 0; i < a.size(); ++i) out[i] = f(a[i], b[i]);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  FKD_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  FKD_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  FKD_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row) {
  const size_t d = matrix.cols();
  FKD_CHECK_EQ(row.size(), d);
  Tensor out = matrix;
  const float* rd = row.data();
  for (size_t r = 0; r < matrix.rows(); ++r) {
    float* out_row = out.Row(r);
    for (size_t c = 0; c < d; ++c) out_row[c] += rd[c];
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  return Map(a, [](float x) {
    if (x >= 0.0f) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}

Tensor TanhT(const Tensor& a) {
  return Map(a, [](float x) { return std::tanh(x); });
}

Tensor Relu(const Tensor& a) {
  return Map(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor SoftmaxRows(const Tensor& logits) {
  Tensor out(logits.rows(), logits.cols());
  const size_t k = logits.cols();
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* in_row = logits.Row(r);
    float* out_row = out.Row(r);
    float max_logit = in_row[0];
    for (size_t c = 1; c < k; ++c) max_logit = std::max(max_logit, in_row[c]);
    double total = 0.0;
    for (size_t c = 0; c < k; ++c) {
      out_row[c] = std::exp(in_row[c] - max_logit);
      total += out_row[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t c = 0; c < k; ++c) out_row[c] *= inv;
  }
  return out;
}

Tensor SumRowsTo(const Tensor& matrix) {
  Tensor out(1, matrix.cols());
  float* od = out.data();
  for (size_t r = 0; r < matrix.rows(); ++r) {
    const float* row = matrix.Row(r);
    for (size_t c = 0; c < matrix.cols(); ++c) od[c] += row[c];
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  FKD_CHECK(!parts.empty());
  const size_t n = parts[0].rows();
  size_t total_cols = 0;
  for (const Tensor& part : parts) {
    FKD_CHECK_EQ(part.rows(), n);
    total_cols += part.cols();
  }
  Tensor out(n, total_cols);
  for (size_t r = 0; r < n; ++r) {
    float* out_row = out.Row(r);
    size_t offset = 0;
    for (const Tensor& part : parts) {
      const float* in_row = part.Row(r);
      std::copy(in_row, in_row + part.cols(), out_row + offset);
      offset += part.cols();
    }
  }
  return out;
}

}  // namespace fkd
