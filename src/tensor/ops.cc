#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/compute.h"

namespace fkd {

namespace {

// Dimensions of op(X) for the GEMM contract.
struct OpDims {
  size_t rows;
  size_t cols;
};

OpDims DimsOf(const Tensor& t, bool transposed) {
  if (transposed) return {t.cols(), t.rows()};
  return {t.rows(), t.cols()};
}

/// Grain choices. Deterministic chunking only requires that grains are pure
/// functions of problem size (never of thread count). Everything except the
/// compute-bound GEMM derives its grain from ThreadPool::CostAwareGrain with
/// a per-element cost hint in bytes of equivalent memory traffic: the old
/// fixed element/row grains ignored how little each element cost, splitting
/// cheap streaming ops into hundreds of ~10 us chunks whose claim + wakeup
/// overhead is what regressed softmax to 0.69x of serial at 4 threads.
constexpr size_t kGemmChunkFlops = 1 << 21;     ///< ~2M mul-adds per row chunk
constexpr size_t kCopyCost = 2 * sizeof(float); ///< stream read + write
constexpr size_t kEltwiseCost = 3 * sizeof(float);  ///< 2 reads + 1 write
constexpr size_t kCallCost = 48;  ///< indirect call per element (Map/ZipMap)
constexpr size_t kExpCost = 64;   ///< transcendental per element

size_t EltwiseGrain(size_t bytes_per_element) {
  return ThreadPool::CostAwareGrain(bytes_per_element);
}

size_t RowGrain(size_t bytes_per_row) {
  return ThreadPool::CostAwareGrain(bytes_per_row);
}

/// GEMM micro-kernel tile: kMR C-rows by kNR C-columns accumulate in
/// registers across the whole k loop, so the inner loop issues one packed-B
/// load and kMR fused multiply-adds per accumulator column instead of a
/// load/add/store round trip through the C row. kNR = 16 floats is one
/// AVX-512 register (two AVX2 registers); the SSE2 fallback spills some
/// accumulators but stays correct.
constexpr size_t kMR = 4;
constexpr size_t kNR = 16;

/// The row-chunk driver below is function-multiversioned: the portable
/// binary carries AVX-512, AVX2+FMA and baseline clones of the blocked
/// kernel and the dynamic loader picks the widest one the host supports.
/// Clone choice is a pure function of the machine, never of thread count or
/// run, so bitwise determinism across pool widths is unaffected. This is
/// what lets a default (non -march=native) build beat the auto-vectorised
/// SSE2 baseline on AVX hosts.
/// Sanitizer builds skip multiversioning: the ifunc resolver runs before
/// the sanitizer runtime is initialised and crashes at load time, and
/// sanitizer jobs measure races, not GFLOPs.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FKD_GEMM_NO_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FKD_GEMM_NO_CLONES 1
#endif
#endif
#if !defined(FKD_GEMM_NO_CLONES) && defined(__x86_64__) && \
    defined(__has_attribute)
#if __has_attribute(target_clones)
#define FKD_GEMM_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#endif
#endif
#ifndef FKD_GEMM_CLONES
#define FKD_GEMM_CLONES
#endif

/// The tile kernels must be forced inline into the multiversioned driver:
/// left out-of-line they would compile once for the default ISA and every
/// clone would call the same narrow code.
#if defined(__GNUC__)
#define FKD_GEMM_INLINE inline __attribute__((always_inline))
#else
#define FKD_GEMM_INLINE inline
#endif

/// Full-tile kernel with constexpr bounds: the compiler fully unrolls the
/// kMR x kNR accumulator block into registers and vectorises the kNR loop.
/// `bp` is one packed B panel: k rows of kNR contiguous floats (zero-padded
/// past column jn). Writes C rows [i0,i0+kMR) x cols [j0,j0+jn).
FKD_GEMM_INLINE void GemmMicroTile(const float* a, const float* bp, float* c,
                                   size_t k, size_t n, size_t i0, size_t j0,
                                   size_t jn, float alpha) {
  float acc[kMR][kNR] = {};
  const float* a0 = a + (i0 + 0) * k;
  const float* a1 = a + (i0 + 1) * k;
  const float* a2 = a + (i0 + 2) * k;
  const float* a3 = a + (i0 + 3) * k;
  for (size_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * kNR;
    const float av0 = a0[p];
    const float av1 = a1[p];
    const float av2 = a2[p];
    const float av3 = a3[p];
    for (size_t j = 0; j < kNR; ++j) {
      const float bv = b_row[j];
      acc[0][j] += av0 * bv;
      acc[1][j] += av1 * bv;
      acc[2][j] += av2 * bv;
      acc[3][j] += av3 * bv;
    }
  }
  for (size_t r = 0; r < kMR; ++r) {
    float* c_row = c + (i0 + r) * n + j0;
    for (size_t j = 0; j < jn; ++j) c_row[j] += alpha * acc[r][j];
  }
}

/// Row-remainder tile (mr < kMR rows). Accumulation order over p is
/// identical to the full tile, so which kernel computes an element never
/// changes its bits between runs.
FKD_GEMM_INLINE void GemmEdgeTile(const float* a, const float* bp, float* c,
                                  size_t k, size_t n, size_t i0, size_t mr,
                                  size_t j0, size_t jn, float alpha) {
  float acc[kMR][kNR] = {};
  for (size_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * kNR;
    for (size_t r = 0; r < mr; ++r) {
      const float av = a[(i0 + r) * k + p];
      for (size_t j = 0; j < kNR; ++j) acc[r][j] += av * b_row[j];
    }
  }
  for (size_t r = 0; r < mr; ++r) {
    float* c_row = c + (i0 + r) * n + j0;
    for (size_t j = 0; j < jn; ++j) c_row[j] += alpha * acc[r][j];
  }
}

/// Computes C rows [i0, i1) of C = beta*C + alpha * A * B. A is row-major
/// m x k (lda == k); `bp` is panel-packed B (see PackBPanels). Looping
/// panels outermost keeps one contiguous k x kNR panel of B hot in L1 while
/// every row tile of the chunk streams through it.
FKD_GEMM_CLONES
void GemmRowChunk(const float* a, const float* bp, float* c, size_t k,
                  size_t n, size_t i0, size_t i1, float alpha, float beta) {
  for (size_t i = i0; i < i1; ++i) {
    float* c_row = c + i * n;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (size_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  const size_t num_panels = (n + kNR - 1) / kNR;
  for (size_t q = 0; q < num_panels; ++q) {
    const size_t j0 = q * kNR;
    const size_t jn = std::min(kNR, n - j0);
    const float* panel = bp + q * k * kNR;
    size_t i = i0;
    for (; i + kMR <= i1; i += kMR) {
      GemmMicroTile(a, panel, c, k, n, i, j0, jn, alpha);
    }
    if (i < i1) GemmEdgeTile(a, panel, c, k, n, i, i1 - i, j0, jn, alpha);
  }
}

/// Packs B (logically k x n, optionally stored transposed) into column
/// panels of width kNR: panel q holds k rows of kNR contiguous floats
/// covering columns [q*kNR, q*kNR+jn), zero-padded past jn. One pass over B
/// per Gemm call (1/(2m) of the multiply work) turns every inner-loop B
/// access into a contiguous L1-resident stream — including the old
/// `bd[j * ldb + p]` strided column walk of the trans_b path.
std::vector<float> PackBPanels(const float* b, size_t k, size_t n,
                               bool trans) {
  const size_t num_panels = (n + kNR - 1) / kNR;
  std::vector<float> packed(num_panels * k * kNR, 0.0f);
  float* dst = packed.data();
  ParallelKernel("tensor/pack_b", 0, num_panels, RowGrain(k * kNR * kCopyCost),
                 [&](size_t begin, size_t end) {
                   for (size_t q = begin; q < end; ++q) {
                     const size_t j0 = q * kNR;
                     const size_t jn = std::min(kNR, n - j0);
                     float* panel = dst + q * k * kNR;
                     if (!trans) {
                       for (size_t p = 0; p < k; ++p) {
                         const float* src = b + p * n + j0;
                         float* out = panel + p * kNR;
                         for (size_t j = 0; j < jn; ++j) out[j] = src[j];
                       }
                     } else {
                       // Stored transposed: logical B(p, j) = b[j * k + p],
                       // so each panel column is a contiguous source row.
                       for (size_t j = 0; j < jn; ++j) {
                         const float* src = b + (j0 + j) * k;
                         for (size_t p = 0; p < k; ++p) {
                           panel[p * kNR + j] = src[p];
                         }
                       }
                     }
                   }
                 });
  return packed;
}

/// Materialises the transpose of a row-major src_rows x src_cols matrix
/// (row-parallel over the transposed rows). Packing once per call turns the
/// strided column walks of transposed GEMM operands into the contiguous
/// streams the blocked kernel wants.
std::vector<float> PackTransposed(const float* src, size_t src_rows,
                                  size_t src_cols) {
  std::vector<float> packed(src_rows * src_cols);
  float* dst = packed.data();
  ParallelKernel("tensor/pack_b", 0, src_cols, RowGrain(src_rows * kCopyCost),
                 [&](size_t begin, size_t end) {
                   for (size_t r = begin; r < end; ++r) {
                     float* out_row = dst + r * src_rows;
                     const float* in_col = src + r;
                     for (size_t c = 0; c < src_rows; ++c) {
                       out_row[c] = in_col[c * src_cols];
                     }
                   }
                 });
  return packed;
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  FKD_CHECK(c != nullptr);
  const OpDims da = DimsOf(a, trans_a);
  const OpDims db = DimsOf(b, trans_b);
  FKD_CHECK_EQ(da.cols, db.rows);
  FKD_CHECK_EQ(c->rows(), da.rows);
  FKD_CHECK_EQ(c->cols(), db.cols);

  const size_t m = da.rows;
  const size_t k = da.cols;
  const size_t n = db.cols;
  if (m == 0 || n == 0) return;

  // A is packed to row-major m x k when stored transposed; B is always
  // packed into contiguous kNR-wide column panels (either storage order
  // feeds the same packing pass), so the blocked kernel never takes a
  // strided walk through either operand.
  std::vector<float> packed_a;
  const float* ad = a.data();
  if (trans_a) {
    packed_a = PackTransposed(a.data(), a.rows(), a.cols());
    ad = packed_a.data();
  }
  const std::vector<float> packed_b = PackBPanels(b.data(), k, n, trans_b);
  const float* bd = packed_b.data();

  float* cd = c->data();
  const size_t row_grain =
      std::max<size_t>(1, kGemmChunkFlops / std::max<size_t>(1, n * std::max<size_t>(1, k)));
  ParallelKernel("tensor/gemm", 0, m, row_grain,
                 [&](size_t begin, size_t end) {
                   GemmRowChunk(ad, bd, cd, k, n, begin, end, alpha, beta);
                 });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Gemv(bool trans_a, float alpha, const Tensor& a, const Tensor& x,
          float beta, Tensor* y) {
  FKD_CHECK(y != nullptr);
  FKD_CHECK_EQ(x.rank(), 1u);
  FKD_CHECK_EQ(y->rank(), 1u);
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  FKD_CHECK_EQ(x.size(), k);
  FKD_CHECK_EQ(y->size(), m);

  if (beta == 0.0f) {
    y->SetZero();
  } else if (beta != 1.0f) {
    ScaleInPlace(beta, y);
  }
  float* yd = y->data();
  const float* xd = x.data();
  if (!trans_a) {
    // Each output element owns its dot product: row-parallel, disjoint.
    ParallelKernel("tensor/gemv", 0, m, RowGrain(k * kCopyCost),
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       const float* row = a.Row(i);
                       double total = 0.0;
                       for (size_t j = 0; j < k; ++j) total += row[j] * xd[j];
                       yd[i] += alpha * static_cast<float>(total);
                     }
                   });
  } else {
    // y += alpha * A^T x scatters across all of y per input row; the
    // r-ordered accumulation is the determinism contract, so this path
    // stays serial (it is never a training hot spot).
    for (size_t r = 0; r < k; ++r) {
      const float* row = a.Row(r);
      const float scaled = alpha * xd[r];
      if (scaled == 0.0f) continue;
      for (size_t i = 0; i < m; ++i) yd[i] += scaled * row[i];
    }
  }
}

void AxpyInPlace(float alpha, const Tensor& x, Tensor* y) {
  FKD_CHECK(y != nullptr);
  FKD_CHECK(x.shape() == y->shape());
  float* yd = y->data();
  const float* xd = x.data();
  ParallelKernel("tensor/axpy", 0, x.size(), EltwiseGrain(kEltwiseCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) yd[i] += alpha * xd[i];
                 });
}

void ScaleInPlace(float scale, Tensor* y) {
  FKD_CHECK(y != nullptr);
  float* yd = y->data();
  ParallelKernel("tensor/scale", 0, y->size(), EltwiseGrain(kCopyCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) yd[i] *= scale;
                 });
}

Tensor Map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const float* ad = a.data();
  float* od = out.data();
  ParallelKernel("tensor/map", 0, a.size(), EltwiseGrain(kCallCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) od[i] = f(ad[i]);
                 });
  return out;
}

Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& f) {
  FKD_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  ParallelKernel("tensor/zip_map", 0, a.size(), EltwiseGrain(kCallCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) od[i] = f(ad[i], bd[i]);
                 });
  return out;
}

namespace {

/// Shared shape check + parallel elementwise binary loop (direct loop body,
/// no per-element indirect call).
template <typename Fn>
Tensor BinaryEltwise(const Tensor& a, const Tensor& b, const char* name,
                     Fn fn) {
  FKD_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  ParallelKernel(name, 0, a.size(), EltwiseGrain(kEltwiseCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) od[i] = fn(ad[i], bd[i]);
                 });
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryEltwise(a, b, "tensor/add",
                       [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryEltwise(a, b, "tensor/sub",
                       [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryEltwise(a, b, "tensor/mul",
                       [](float x, float y) { return x * y; });
}

Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row) {
  const size_t d = matrix.cols();
  FKD_CHECK_EQ(row.size(), d);
  Tensor out = matrix;
  const float* rd = row.data();
  ParallelKernel("tensor/add_row", 0, matrix.rows(),
                 RowGrain(d * kEltwiseCost),
                 [&](size_t begin, size_t end) {
                   for (size_t r = begin; r < end; ++r) {
                     float* out_row = out.Row(r);
                     for (size_t c = 0; c < d; ++c) out_row[c] += rd[c];
                   }
                 });
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out(a.shape());
  const float* ad = a.data();
  float* od = out.data();
  ParallelKernel("tensor/sigmoid", 0, a.size(), EltwiseGrain(kExpCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     const float x = ad[i];
                     if (x >= 0.0f) {
                       const float z = std::exp(-x);
                       od[i] = 1.0f / (1.0f + z);
                     } else {
                       const float z = std::exp(x);
                       od[i] = z / (1.0f + z);
                     }
                   }
                 });
  return out;
}

Tensor TanhT(const Tensor& a) {
  Tensor out(a.shape());
  const float* ad = a.data();
  float* od = out.data();
  ParallelKernel("tensor/tanh", 0, a.size(), EltwiseGrain(kExpCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) od[i] = std::tanh(ad[i]);
                 });
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out(a.shape());
  const float* ad = a.data();
  float* od = out.data();
  ParallelKernel("tensor/relu", 0, a.size(), EltwiseGrain(kEltwiseCost),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     od[i] = ad[i] > 0.0f ? ad[i] : 0.0f;
                   }
                 });
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  Tensor out(logits.rows(), logits.cols());
  const size_t k = logits.cols();
  // The row cost is exp-dominated (three passes, one transcendental per
  // element); the old grain priced rows as k "units" and cut an 8192x256
  // softmax into 128 tiny chunks — the dispatch overhead regressed the
  // kernel below serial at 4 threads.
  ParallelKernel("tensor/softmax", 0, logits.rows(), RowGrain(k * kExpCost),
                 [&](size_t begin, size_t end) {
                   for (size_t r = begin; r < end; ++r) {
                     const float* in_row = logits.Row(r);
                     float* out_row = out.Row(r);
                     float max_logit = in_row[0];
                     for (size_t c = 1; c < k; ++c) {
                       max_logit = std::max(max_logit, in_row[c]);
                     }
                     double total = 0.0;
                     for (size_t c = 0; c < k; ++c) {
                       out_row[c] = std::exp(in_row[c] - max_logit);
                       total += out_row[c];
                     }
                     const float inv = static_cast<float>(1.0 / total);
                     for (size_t c = 0; c < k; ++c) out_row[c] *= inv;
                   }
                 });
  return out;
}

Tensor SumRowsTo(const Tensor& matrix) {
  Tensor out(1, matrix.cols());
  float* od = out.data();
  const size_t rows = matrix.rows();
  const size_t cols = matrix.cols();
  // Column-partitioned: each chunk owns a disjoint column slab and sums it
  // over all rows in fixed row order, so the reduction order per output
  // element never depends on the chunking (and always equals the serial
  // order — per-thread row partials would change the summation order and
  // break the golden-run bit locks). Every chunk re-walks all rows, so
  // slabs must be wide: the old per-column grain produced 2-column slabs
  // for tall matrices — 128 strided passes over the same memory, with
  // adjacent chunks false-sharing cache lines of the output row. Slab
  // bounds are rounded to 16 floats (one cache line) so no two chunks
  // ever write the same line of `od`.
  constexpr size_t kSlabAlign = 16;
  size_t grain = ThreadPool::CostAwareGrain(rows * sizeof(float), kSlabAlign);
  grain = (grain + kSlabAlign - 1) & ~(kSlabAlign - 1);
  ParallelKernel("tensor/sum_rows", 0, cols, grain,
                 [&](size_t begin, size_t end) {
                   for (size_t r = 0; r < rows; ++r) {
                     const float* row = matrix.Row(r);
                     for (size_t c = begin; c < end; ++c) od[c] += row[c];
                   }
                 });
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  FKD_CHECK(!parts.empty());
  const size_t n = parts[0].rows();
  size_t total_cols = 0;
  for (const Tensor& part : parts) {
    FKD_CHECK_EQ(part.rows(), n);
    total_cols += part.cols();
  }
  Tensor out(n, total_cols);
  ParallelKernel("tensor/concat_cols", 0, n, RowGrain(total_cols * kCopyCost),
                 [&](size_t begin, size_t end) {
                   for (size_t r = begin; r < end; ++r) {
                     float* out_row = out.Row(r);
                     size_t offset = 0;
                     for (const Tensor& part : parts) {
                       const float* in_row = part.Row(r);
                       std::copy(in_row, in_row + part.cols(),
                                 out_row + offset);
                       offset += part.cols();
                     }
                   }
                 });
  return out;
}

namespace {

/// Fused epilogue over C rows [i0, i1): bias row add, then activation, per
/// element in place. The formulas are copied verbatim from AddRowBroadcast /
/// Sigmoid / TanhT / Relu above — elementwise ops commute across the chunking,
/// so fused output is bitwise-identical to the unfused three-pass chain.
void ApplyBiasActRows(float* c, const float* bias, EpilogueAct act, size_t n,
                      size_t i0, size_t i1) {
  for (size_t i = i0; i < i1; ++i) {
    float* row = c + i * n;
    if (bias != nullptr) {
      for (size_t j = 0; j < n; ++j) row[j] += bias[j];
    }
    switch (act) {
      case EpilogueAct::kNone:
        break;
      case EpilogueAct::kSigmoid:
        for (size_t j = 0; j < n; ++j) {
          const float x = row[j];
          if (x >= 0.0f) {
            const float z = std::exp(-x);
            row[j] = 1.0f / (1.0f + z);
          } else {
            const float z = std::exp(x);
            row[j] = z / (1.0f + z);
          }
        }
        break;
      case EpilogueAct::kTanh:
        for (size_t j = 0; j < n; ++j) row[j] = std::tanh(row[j]);
        break;
      case EpilogueAct::kRelu:
        for (size_t j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        break;
    }
  }
}

}  // namespace

PackedBPanels PackGemmB(const Tensor& b, bool trans_b) {
  const OpDims db = DimsOf(b, trans_b);
  PackedBPanels packed;
  packed.k_ = db.rows;
  packed.n_ = db.cols;
  packed.data_ = PackBPanels(b.data(), db.rows, db.cols, trans_b);
  return packed;
}

void GemmBiasAct(const Tensor& a, const PackedBPanels& b, const Tensor* bias,
                 EpilogueAct act, Tensor* c) {
  FKD_CHECK(c != nullptr);
  FKD_CHECK_EQ(a.cols(), b.k());
  FKD_CHECK_EQ(c->rows(), a.rows());
  FKD_CHECK_EQ(c->cols(), b.n());
  if (bias != nullptr) FKD_CHECK_EQ(bias->size(), b.n());

  const size_t m = a.rows();
  const size_t k = b.k();
  const size_t n = b.n();
  if (m == 0 || n == 0) return;

  const float* ad = a.data();
  const float* bd = b.data_.data();
  const float* biasd = bias != nullptr ? bias->data() : nullptr;
  float* cd = c->data();
  const size_t row_grain = std::max<size_t>(
      1, kGemmChunkFlops / std::max<size_t>(1, n * std::max<size_t>(1, k)));
  ParallelKernel("tensor/gemm_bias_act", 0, m, row_grain,
                 [&](size_t begin, size_t end) {
                   GemmRowChunk(ad, bd, cd, k, n, begin, end, 1.0f, 0.0f);
                   ApplyBiasActRows(cd, biasd, act, n, begin, end);
                 });
}

void GemmBiasAct(const Tensor& a, const Tensor& b, const Tensor* bias,
                 EpilogueAct act, Tensor* c) {
  GemmBiasAct(a, PackGemmB(b, false), bias, act, c);
}

}  // namespace fkd
