#ifndef FKD_TENSOR_COMPUTE_H_
#define FKD_TENSOR_COMPUTE_H_

#include <cstddef>
#include <functional>
#include <utility>

#include "common/thread_pool.h"

namespace fkd {

/// Instrumented front door to ThreadPool::Global() for the tensor kernels
/// (and any layer above them): per-region trace spans behind
/// FKD_ENABLE_TRACING plus the fkd.compute.* metrics, with a zero-erasure
/// serial fast path so small tensors pay one predictable branch and no
/// std::function allocation.
///
/// Determinism contract (see common/thread_pool.h): chunk boundaries depend
/// only on (end - begin, grain). Kernels keep per-element reduction order
/// fixed regardless of chunking, so outputs are bitwise-identical at any
/// thread count — including the serial fast path.

namespace detail {

/// True when [begin, end) at `grain` would be dispatched to the pool
/// (more than one chunk, spare threads, not nested in a pool worker).
bool ShouldParallelize(size_t begin, size_t end, size_t grain);

/// Slow path: trace span + metrics + pool dispatch.
void ParallelKernelImpl(const char* name, size_t begin, size_t end,
                        size_t grain,
                        const std::function<void(size_t, size_t)>& fn);

}  // namespace detail

/// Runs `fn(sub_begin, sub_end)` over disjoint subranges covering
/// [begin, end), in parallel when worthwhile. `name` labels the trace span
/// of the region and must be a string literal. `fn` must be thread-safe on
/// disjoint ranges and must not care about chunk order.
template <typename Fn>
inline void ParallelKernel(const char* name, size_t begin, size_t end,
                           size_t grain, Fn&& fn) {
  if (!detail::ShouldParallelize(begin, end, grain)) {
    if (end > begin) fn(begin, end);
    return;
  }
  detail::ParallelKernelImpl(name, begin, end, grain,
                             std::function<void(size_t, size_t)>(
                                 std::forward<Fn>(fn)));
}

}  // namespace fkd

#endif  // FKD_TENSOR_COMPUTE_H_
