#include "tensor/compute.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fkd {
namespace detail {

namespace {

struct ComputeInstruments {
  obs::Gauge* pool_threads;
  obs::Counter* tasks;
};

ComputeInstruments& Instruments() {
  static ComputeInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return ComputeInstruments{
        registry.GetGauge("fkd.compute.pool_threads"),
        registry.GetCounter("fkd.compute.tasks"),
    };
  }();
  return instruments;
}

}  // namespace

bool ShouldParallelize(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return false;
  if (ThreadPool::NumChunks(end - begin, grain) <= 1) return false;
  if (ThreadPool::InWorker()) return false;
  return ThreadPool::Global().num_threads() > 1;
}

void ParallelKernelImpl(const char* name, size_t begin, size_t end,
                        size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
#if FKD_TRACING_ENABLED
  obs::ScopedSpan span(name);
#else
  (void)name;
#endif
  ThreadPool& pool = ThreadPool::Global();
  ComputeInstruments& instruments = Instruments();
  instruments.pool_threads->Set(static_cast<double>(pool.num_threads()));
  instruments.tasks->Increment(
      static_cast<double>(ThreadPool::NumChunks(end - begin, grain)));
  pool.ParallelFor(begin, end, grain, fn);
}

}  // namespace detail
}  // namespace fkd
