#ifndef FKD_TENSOR_TENSOR_H_
#define FKD_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace fkd {

/// Dense row-major float32 tensor.
///
/// The library uses rank-1 (vectors) and rank-2 (matrices) tensors
/// exclusively; rank-2 is the hot path (all neural-network math is batched
/// matrix algebra, see `tensor/ops.h`). `Tensor` is a value type: copyable,
/// movable, equality-comparable; all shape violations are programmer errors
/// and abort via FKD_CHECK.
class Tensor {
 public:
  /// Empty scalar-less tensor (rank 0, zero elements).
  Tensor() = default;

  /// Uninitialised-to-zero tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);

  /// Convenience rank-2 constructor.
  Tensor(size_t rows, size_t cols) : Tensor(std::vector<size_t>{rows, cols}) {}

  /// Factory helpers -----------------------------------------------------

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }
  static Tensor Full(size_t rows, size_t cols, float value);
  static Tensor Ones(size_t rows, size_t cols) { return Full(rows, cols, 1.0f); }
  /// Rank-1 tensor from explicit values.
  static Tensor FromVector(const std::vector<float>& values);
  /// Rank-2 tensor from a row-major initializer, e.g. {{1,2},{3,4}}.
  static Tensor FromRows(std::initializer_list<std::initializer_list<float>> rows);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor Randn(size_t rows, size_t cols, Rng* rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(size_t rows, size_t cols, Rng* rng, float lo, float hi);

  /// Shape ----------------------------------------------------------------

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Rank-2 accessors (FKD_CHECK rank).
  size_t rows() const;
  size_t cols() const;

  /// Element access --------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](size_t i) {
    FKD_DCHECK(i < data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    FKD_DCHECK(i < data_.size());
    return data_[i];
  }

  /// Rank-2 element access.
  float& At(size_t r, size_t c) {
    FKD_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float At(size_t r, size_t c) const {
    FKD_DCHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// Pointer to the start of row `r` (rank-2).
  float* Row(size_t r) { return data_.data() + r * cols(); }
  const float* Row(size_t r) const { return data_.data() + r * cols(); }

  /// Mutators ---------------------------------------------------------------

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// Returns a reshaped copy sharing no storage; total size must match.
  Tensor Reshape(std::vector<size_t> new_shape) const;

  /// Materialised transpose of a rank-2 tensor.
  Tensor Transposed() const;

  /// Reductions --------------------------------------------------------------

  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  /// Frobenius / L2 norm of all entries.
  float Norm() const;

  /// True when shapes match and all entries are within `tolerance`.
  bool AllClose(const Tensor& other, float tolerance = 1e-5f) const;

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

  /// Compact debug rendering, e.g. "[2x3]{1, 2, 3; 4, 5, 6}" (elided when
  /// large).
  std::string ToString(size_t max_entries = 24) const;

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

}  // namespace fkd

#endif  // FKD_TENSOR_TENSOR_H_
