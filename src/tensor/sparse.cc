#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/compute.h"

#if defined(__GNUC__)
#define FKD_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define FKD_PREFETCH(addr) ((void)0)
#endif

namespace fkd {

namespace {

/// Output column slabs are multiples of 16 floats (one cache line) so
/// concurrent chunks never write the same line.
constexpr size_t kColAlign = 16;

/// Upper bound on BalancedMatMulPlan chunks. Constant (never derived from
/// thread count) so the plan — and therefore the bench-visible chunking —
/// is a pure function of the matrix.
constexpr size_t kMaxPlanChunks = 64;

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    FKD_CHECK_GE(t.row, 0);
    FKD_CHECK_LT(static_cast<size_t>(t.row), rows);
    FKD_CHECK_GE(t.col, 0);
    FKD_CHECK_LT(static_cast<size_t>(t.col), cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix csr;
  csr.rows_ = rows;
  csr.cols_ = cols;
  csr.offsets_.assign(rows + 1, 0);
  csr.indices_.reserve(triplets.size());
  csr.values_.reserve(triplets.size());

  size_t i = 0;
  while (i < triplets.size()) {
    // Sum duplicates.
    const int32_t row = triplets[i].row;
    const int32_t col = triplets[i].col;
    float value = 0.0f;
    while (i < triplets.size() && triplets[i].row == row &&
           triplets[i].col == col) {
      value += triplets[i].value;
      ++i;
    }
    if (value != 0.0f) {
      csr.indices_.push_back(col);
      csr.values_.push_back(value);
      ++csr.offsets_[row + 1];
    }
  }
  for (size_t r = 1; r <= rows; ++r) csr.offsets_[r] += csr.offsets_[r - 1];
  return csr;
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, float epsilon) {
  CsrMatrix csr;
  csr.rows_ = dense.rows();
  csr.cols_ = dense.cols();
  csr.offsets_.assign(csr.rows_ + 1, 0);
  for (size_t r = 0; r < csr.rows_; ++r) {
    const float* row = dense.Row(r);
    for (size_t c = 0; c < csr.cols_; ++c) {
      if (std::fabs(row[c]) > epsilon) {
        csr.indices_.push_back(static_cast<int32_t>(c));
        csr.values_.push_back(row[c]);
        ++csr.offsets_[r + 1];
      }
    }
  }
  for (size_t r = 1; r <= csr.rows_; ++r) {
    csr.offsets_[r] += csr.offsets_[r - 1];
  }
  return csr;
}

Tensor CsrMatrix::ToDense() const {
  Tensor dense(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const auto indices = RowIndices(r);
    const auto values = RowValues(r);
    float* row = dense.Row(r);
    for (size_t k = 0; k < indices.size(); ++k) row[indices[k]] = values[k];
  }
  return dense;
}

std::vector<CsrMatrix::MatMulChunk> CsrMatrix::BalancedMatMulPlan(
    size_t dense_cols) const {
  std::vector<MatMulChunk> plan;
  if (rows_ == 0 || dense_cols == 0) return plan;
  // Target nonzeros per chunk. Each nonzero streams a dense_cols-float
  // slice of the dense operand and accumulates into a dense_cols-float
  // output slice, so its cost hint is ~3 float accesses per output column.
  // The cost-derived ceiling keeps chunks ~100 us; the nnz/kMaxPlanChunks
  // term pulls the target down for mid-size matrices so a pool has enough
  // chunks to balance; the /64 floor stops tiny matrices from shattering
  // into overhead-dominated slivers.
  const size_t per_nnz_bytes = dense_cols * 3 * sizeof(float);
  const size_t ceiling = ThreadPool::CostAwareGrain(per_nnz_bytes);
  const size_t floor = std::max<size_t>(1, ceiling / 64);
  const size_t balanced =
      std::max<size_t>(1, (nnz() + kMaxPlanChunks - 1) / kMaxPlanChunks);
  const size_t target_nnz = std::clamp(balanced, floor, ceiling);

  size_t chunk_row_begin = 0;
  size_t chunk_nnz = 0;
  for (size_t r = 0; r < rows_; ++r) {
    const size_t row_nnz = static_cast<size_t>(offsets_[r + 1] - offsets_[r]);
    if (row_nnz >= 2 * target_nnz && dense_cols > kColAlign) {
      // This one row dominates a whole chunk: flush the light rows pending
      // before it, then split the row itself into column slabs. Splitting
      // along columns (not nonzeros) keeps each output element's
      // accumulation chain intact, so bits never change.
      if (r > chunk_row_begin) {
        plan.push_back({chunk_row_begin, r, 0, dense_cols});
      }
      const size_t pieces_by_work = (row_nnz + target_nnz - 1) / target_nnz;
      const size_t max_pieces = (dense_cols + kColAlign - 1) / kColAlign;
      const size_t pieces = std::min(pieces_by_work, max_pieces);
      const size_t slab =
          (((dense_cols + pieces - 1) / pieces) + kColAlign - 1) &
          ~(kColAlign - 1);
      for (size_t j0 = 0; j0 < dense_cols; j0 += slab) {
        plan.push_back({r, r + 1, j0, std::min(dense_cols, j0 + slab)});
      }
      chunk_row_begin = r + 1;
      chunk_nnz = 0;
      continue;
    }
    chunk_nnz += row_nnz;
    if (chunk_nnz >= target_nnz) {
      plan.push_back({chunk_row_begin, r + 1, 0, dense_cols});
      chunk_row_begin = r + 1;
      chunk_nnz = 0;
    }
  }
  if (chunk_row_begin < rows_) {
    plan.push_back({chunk_row_begin, rows_, 0, dense_cols});
  }
  return plan;
}

Tensor CsrMatrix::MatMul(const Tensor& dense) const {
  FKD_CHECK_EQ(dense.rows(), cols_);
  const size_t n = dense.cols();
  Tensor out(rows_, n);
  // Executes the nonzero-balanced plan: chunks tile the output disjointly
  // (row ranges, or column slabs of one heavy row) and per output element
  // the accumulation stays in CSR nonzero order, so any chunk schedule
  // reproduces the serial loop bit for bit. Balancing by nonzeros rather
  // than row count is what lets one pathological dense row among thousands
  // of empty ones actually parallelise.
  const std::vector<MatMulChunk> plan = BalancedMatMulPlan(n);
  ParallelKernel(
      "sparse/matmul", 0, plan.size(), 1, [&](size_t begin, size_t end) {
        for (size_t ci = begin; ci < end; ++ci) {
          const MatMulChunk& chunk = plan[ci];
          for (size_t r = chunk.row_begin; r < chunk.row_end; ++r) {
            const auto indices = RowIndices(r);
            const auto values = RowValues(r);
            float* out_row = out.Row(r);
            for (size_t k = 0; k < indices.size(); ++k) {
              if (k + 1 < indices.size()) {
                // The gathered dense rows are the one irregular access
                // stream here; ask for the next one a beat early.
                FKD_PREFETCH(dense.Row(indices[k + 1]) + chunk.col_begin);
              }
              const float* dense_row = dense.Row(indices[k]);
              const float v = values[k];
              for (size_t j = chunk.col_begin; j < chunk.col_end; ++j) {
                out_row[j] += v * dense_row[j];
              }
            }
          }
        }
      });
  return out;
}

Tensor CsrMatrix::TransposedMatMul(const Tensor& dense) const {
  FKD_CHECK_EQ(dense.rows(), rows_);
  const size_t n = dense.cols();
  Tensor out(cols_, n);
  // Scatter formulation: input row r writes to output rows indexed by its
  // column ids, so output rows are shared across input rows and the fixed r
  // order is the bit-exactness contract. Parallelism therefore comes from
  // column blocking: every chunk walks ALL input rows in the same r order
  // but touches only its own 16-aligned slab [begin, end) of the dense and
  // output columns — each output element keeps the exact serial
  // accumulation chain while chunks write disjoint cache lines. Each chunk
  // re-reads the whole CSR structure, so the per-column cost hint (one
  // float read + one accumulate per nonzero) errs coarse: narrow outputs
  // (training backward, hidden_dim-wide) stay a single serial chunk.
  size_t grain = ThreadPool::CostAwareGrain(
      std::max<size_t>(1, nnz()) * 2 * sizeof(float), kColAlign);
  grain = (grain + kColAlign - 1) & ~(kColAlign - 1);
  ParallelKernel("sparse/matmul_t", 0, n, grain,
                 [&](size_t begin, size_t end) {
                   for (size_t r = 0; r < rows_; ++r) {
                     const auto indices = RowIndices(r);
                     const auto values = RowValues(r);
                     const float* dense_row = dense.Row(r);
                     for (size_t k = 0; k < indices.size(); ++k) {
                       if (k + 1 < indices.size()) {
                         FKD_PREFETCH(out.Row(indices[k + 1]) + begin);
                       }
                       float* out_row = out.Row(indices[k]);
                       const float v = values[k];
                       for (size_t j = begin; j < end; ++j) {
                         out_row[j] += v * dense_row[j];
                       }
                     }
                   }
                 });
  return out;
}

autograd::Variable SparseMatMul(const CsrMatrix& sparse,
                                const autograd::Variable& dense) {
  Tensor out = sparse.MatMul(dense.value());
  auto dense_node = dense.node();
  // The sparse operand is constant; only the dense side receives gradient:
  // dL/dx = S^T * dL/dy.
  return autograd::MakeCustomOp(
      std::move(out), {dense}, "sparse_matmul",
      [sparse, dense_node](autograd::Node& node) {
        if (dense_node->requires_grad()) {
          dense_node->AccumulateGrad(sparse.TransposedMatMul(node.grad()));
        }
      });
}

}  // namespace fkd
