#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/autograd.h"
#include "tensor/compute.h"

namespace fkd {

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    FKD_CHECK_GE(t.row, 0);
    FKD_CHECK_LT(static_cast<size_t>(t.row), rows);
    FKD_CHECK_GE(t.col, 0);
    FKD_CHECK_LT(static_cast<size_t>(t.col), cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix csr;
  csr.rows_ = rows;
  csr.cols_ = cols;
  csr.offsets_.assign(rows + 1, 0);
  csr.indices_.reserve(triplets.size());
  csr.values_.reserve(triplets.size());

  size_t i = 0;
  while (i < triplets.size()) {
    // Sum duplicates.
    const int32_t row = triplets[i].row;
    const int32_t col = triplets[i].col;
    float value = 0.0f;
    while (i < triplets.size() && triplets[i].row == row &&
           triplets[i].col == col) {
      value += triplets[i].value;
      ++i;
    }
    if (value != 0.0f) {
      csr.indices_.push_back(col);
      csr.values_.push_back(value);
      ++csr.offsets_[row + 1];
    }
  }
  for (size_t r = 1; r <= rows; ++r) csr.offsets_[r] += csr.offsets_[r - 1];
  return csr;
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, float epsilon) {
  CsrMatrix csr;
  csr.rows_ = dense.rows();
  csr.cols_ = dense.cols();
  csr.offsets_.assign(csr.rows_ + 1, 0);
  for (size_t r = 0; r < csr.rows_; ++r) {
    const float* row = dense.Row(r);
    for (size_t c = 0; c < csr.cols_; ++c) {
      if (std::fabs(row[c]) > epsilon) {
        csr.indices_.push_back(static_cast<int32_t>(c));
        csr.values_.push_back(row[c]);
        ++csr.offsets_[r + 1];
      }
    }
  }
  for (size_t r = 1; r <= csr.rows_; ++r) {
    csr.offsets_[r] += csr.offsets_[r - 1];
  }
  return csr;
}

Tensor CsrMatrix::ToDense() const {
  Tensor dense(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const auto indices = RowIndices(r);
    const auto values = RowValues(r);
    float* row = dense.Row(r);
    for (size_t k = 0; k < indices.size(); ++k) row[indices[k]] = values[k];
  }
  return dense;
}

Tensor CsrMatrix::MatMul(const Tensor& dense) const {
  FKD_CHECK_EQ(dense.rows(), cols_);
  const size_t n = dense.cols();
  Tensor out(rows_, n);
  // Row-parallel: each output row is a gather over that row's nonzeros, so
  // chunks write disjoint rows and per-row accumulation order is fixed by
  // the CSR layout regardless of chunking. Grain scales with the average
  // per-row cost (nnz/rows * n) so sparse and near-dense matrices both get
  // sensible chunk sizes.
  const size_t avg_row_cost =
      rows_ == 0 ? 1 : std::max<size_t>(1, nnz() * n / rows_);
  const size_t grain = std::max<size_t>(1, (1 << 15) / avg_row_cost);
  ParallelKernel("sparse/matmul", 0, rows_, grain,
                 [&](size_t begin, size_t end) {
                   for (size_t r = begin; r < end; ++r) {
                     const auto indices = RowIndices(r);
                     const auto values = RowValues(r);
                     float* out_row = out.Row(r);
                     for (size_t k = 0; k < indices.size(); ++k) {
                       const float* dense_row = dense.Row(indices[k]);
                       const float v = values[k];
                       for (size_t j = 0; j < n; ++j) out_row[j] += v * dense_row[j];
                     }
                   }
                 });
  return out;
}

Tensor CsrMatrix::TransposedMatMul(const Tensor& dense) const {
  FKD_CHECK_EQ(dense.rows(), rows_);
  const size_t n = dense.cols();
  Tensor out(cols_, n);
  // Scatter formulation: input row r writes to output rows indexed by its
  // column ids, so rows of `out` are shared across input rows. Kept serial —
  // the fixed r order is the determinism contract, and parallelising would
  // need either atomics (non-deterministic order) or a CSC transpose.
  for (size_t r = 0; r < rows_; ++r) {
    const auto indices = RowIndices(r);
    const auto values = RowValues(r);
    const float* dense_row = dense.Row(r);
    for (size_t k = 0; k < indices.size(); ++k) {
      float* out_row = out.Row(indices[k]);
      const float v = values[k];
      for (size_t j = 0; j < n; ++j) out_row[j] += v * dense_row[j];
    }
  }
  return out;
}

autograd::Variable SparseMatMul(const CsrMatrix& sparse,
                                const autograd::Variable& dense) {
  Tensor out = sparse.MatMul(dense.value());
  auto dense_node = dense.node();
  // The sparse operand is constant; only the dense side receives gradient:
  // dL/dx = S^T * dL/dy.
  return autograd::MakeCustomOp(
      std::move(out), {dense}, "sparse_matmul",
      [sparse, dense_node](autograd::Node& node) {
        if (dense_node->requires_grad()) {
          dense_node->AccumulateGrad(sparse.TransposedMatMul(node.grad()));
        }
      });
}

}  // namespace fkd
