#ifndef FKD_TENSOR_SPARSE_H_
#define FKD_TENSOR_SPARSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fkd {

/// Compressed-sparse-row float32 matrix.
///
/// Bag-of-words feature matrices are extremely sparse (a 20-word statement
/// touches at most 20 of the explicit dimensions); CSR storage plus SpMM
/// keeps the explicit-feature path proportional to the number of nonzeros
/// rather than n x d. Immutable after construction.
class CsrMatrix {
 public:
  /// Empty 0 x 0 matrix.
  CsrMatrix() = default;

  /// From triplets (row, col, value). Duplicate coordinates are summed;
  /// explicit zeros are dropped. Coordinates are FKD_CHECKed against the
  /// shape.
  struct Triplet {
    int32_t row;
    int32_t col;
    float value;
  };
  static CsrMatrix FromTriplets(size_t rows, size_t cols,
                                std::vector<Triplet> triplets);

  /// Compresses a dense matrix (entries with |v| <= epsilon dropped).
  static CsrMatrix FromDense(const Tensor& dense, float epsilon = 0.0f);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Density in [0, 1].
  double Density() const {
    return rows_ * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) / static_cast<double>(rows_ * cols_);
  }

  /// Row r's column indices / values (parallel spans).
  std::span<const int32_t> RowIndices(size_t r) const {
    return {indices_.data() + offsets_[r],
            static_cast<size_t>(offsets_[r + 1] - offsets_[r])};
  }
  std::span<const float> RowValues(size_t r) const {
    return {values_.data() + offsets_[r],
            static_cast<size_t>(offsets_[r + 1] - offsets_[r])};
  }

  /// Materialises the dense equivalent.
  Tensor ToDense() const;

  /// C = this [m x k] * B [k x n], dense output. O(nnz * n). Parallelised
  /// over the nonzero-balanced plan below; bitwise-identical to the serial
  /// row loop at any thread count.
  Tensor MatMul(const Tensor& dense) const;

  /// One chunk of the MatMul work plan: output rows [row_begin, row_end)
  /// restricted to output/dense columns [col_begin, col_end). Chunks tile
  /// the output disjointly, and each output element's accumulation stays in
  /// CSR nonzero order, so executing the plan in any chunk order (or
  /// concurrently) reproduces the serial kernel bit for bit.
  struct MatMulChunk {
    size_t row_begin;
    size_t row_end;
    size_t col_begin;
    size_t col_end;
  };

  /// The nonzero-balanced 2D partition MatMul executes. Row ranges are cut
  /// by cumulative nonzero count (prefix sums in the CSR offsets), not row
  /// count, so skewed graphs split evenly; a single row heavy enough to
  /// dominate a chunk is further split along columns into 16-aligned slabs.
  /// Pure function of the matrix and `dense_cols` — never of thread count —
  /// and exposed so tests can assert balance directly.
  std::vector<MatMulChunk> BalancedMatMulPlan(size_t dense_cols) const;

  /// C = this^T [k x m] * B [m x n], dense output (scatter formulation,
  /// column-blocked parallel; every chunk preserves the serial row-walk
  /// accumulation order per output element).
  Tensor TransposedMatMul(const Tensor& dense) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int64_t> offsets_ = {0};
  std::vector<int32_t> indices_;
  std::vector<float> values_;
};

namespace autograd {
class Variable;
}  // namespace autograd

/// Differentiable y = S * x for a constant sparse matrix S and a dense
/// Variable x (the explicit-feature projection path): the gradient
/// dL/dx = S^T * dL/dy uses TransposedMatMul, never densifying S.
autograd::Variable SparseMatMul(const CsrMatrix& sparse,
                                const autograd::Variable& dense);

}  // namespace fkd

#endif  // FKD_TENSOR_SPARSE_H_
